// Package monitor implements RITM's consistency-checking machinery (§III
// "Consistency Checking", §V "Misbehaving CA"): parties exchange their
// latest signed roots, and any two validly signed roots of the same size
// with different hashes constitute transferable, cryptographic proof that
// the CA equivocated.
//
// The package provides:
//
//   - Auditor: accumulates observed roots per CA and dictionary size,
//     detecting equivocation and (given an issuance log) append-only
//     violations;
//   - MapServer: the RA/edge registry proposed in §III so that parties can
//     find each other and compare views directly;
//   - CrossCheck / Gossip: the comparison procedures run over the map
//     server's membership or between two peers.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// Errors returned by monitoring operations.
var (
	// ErrUnknownSource reports a lookup of an unregistered source.
	ErrUnknownSource = errors.New("monitor: unknown source")
	// ErrUntrustedCA reports a root from a CA outside the trust pool.
	ErrUntrustedCA = errors.New("monitor: no trust anchor for CA")
)

// RootSource provides the latest signed root for a CA. It is implemented
// by cdn.DistributionPoint, cdn.EdgeServer, cdn.HTTPClient, and ra.Store —
// every party that holds dictionary state.
type RootSource interface {
	LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error)
}

// Auditor accumulates signed roots and detects CA misbehavior. An honest
// CA signs exactly one root per dictionary size n (dictionaries are
// append-only with consecutive revocation numbers), so two different roots
// at the same n prove equivocation. The auditor is safe for concurrent use.
type Auditor struct {
	pool   *cert.Pool
	layout dictionary.LayoutKind

	mu     sync.Mutex
	seen   map[dictionary.CAID]map[uint64]*dictionary.SignedRoot
	proofs []*dictionary.MisbehaviorProof
}

// NewAuditor creates an auditor trusting the CA keys in pool, auditing
// dictionaries of the default sorted layout.
func NewAuditor(pool *cert.Pool) *Auditor {
	return NewAuditorWithLayout(pool, dictionary.LayoutSorted)
}

// NewAuditorWithLayout creates an auditor for deployments whose CAs sign
// with the given commitment layout. Equivocation detection (Observe) is
// layout-independent — two signed roots at one size — but append-only
// checking replays the issuance log, and roots are layout-specific, so an
// auditor with the wrong layout would report honest CAs as misbehaving.
func NewAuditorWithLayout(pool *cert.Pool, layout dictionary.LayoutKind) *Auditor {
	return &Auditor{
		pool:   pool,
		layout: layout,
		seen:   make(map[dictionary.CAID]map[uint64]*dictionary.SignedRoot),
	}
}

// Observe records one signed root. It returns a misbehavior proof if the
// root equivocates against a previously observed root of the same size,
// and an error if the root itself does not verify. Equivocation is not an
// error: the proof is the (successful) detection result.
func (a *Auditor) Observe(root *dictionary.SignedRoot) (*dictionary.MisbehaviorProof, error) {
	if root == nil {
		return nil, fmt.Errorf("monitor: nil signed root")
	}
	pub, ok := a.pool.CAKey(root.CA)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUntrustedCA, root.CA)
	}
	if err := root.VerifySignature(pub); err != nil {
		return nil, err
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	byN, ok := a.seen[root.CA]
	if !ok {
		byN = make(map[uint64]*dictionary.SignedRoot)
		a.seen[root.CA] = byN
	}
	prev, ok := byN[root.N]
	if !ok {
		byN[root.N] = root
		return nil, nil
	}
	proof, err := dictionary.CheckEquivocation(prev, root, pub)
	if errors.Is(err, dictionary.ErrNoMisbehavior) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	a.proofs = append(a.proofs, proof)
	return proof, nil
}

// CheckAppendOnly verifies that two observed roots are prefix-consistent
// under the full issuance log held by some replica: failing means the CA
// rewrote history between the two versions (§V: revocation reordering or
// deletion). A nil return means the log explains both roots.
func (a *Auditor) CheckAppendOnly(log []serial.Number, older, newer *dictionary.SignedRoot) error {
	if older == nil || newer == nil {
		return fmt.Errorf("monitor: nil signed root")
	}
	pub, ok := a.pool.CAKey(older.CA)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUntrustedCA, older.CA)
	}
	return dictionary.VerifyPrefixWithLayout(log, older, newer, pub, a.layout)
}

// Proofs returns a copy of every misbehavior proof collected so far.
func (a *Auditor) Proofs() []*dictionary.MisbehaviorProof {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*dictionary.MisbehaviorProof, len(a.proofs))
	copy(out, a.proofs)
	return out
}

// MapServer is the registry of §III: it stores the parties (RAs, edge
// servers) willing to exchange their dictionary views, so that consistency
// checking is not limited to the handful of edge servers DNS happens to
// return. It is safe for concurrent use.
type MapServer struct {
	mu      sync.RWMutex
	sources map[string]RootSource
}

// NewMapServer creates an empty registry.
func NewMapServer() *MapServer {
	return &MapServer{sources: make(map[string]RootSource)}
}

// Register adds (or replaces) a named source.
func (m *MapServer) Register(id string, src RootSource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sources[id] = src
}

// Source returns a registered source.
func (m *MapServer) Source(id string) (RootSource, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	src, ok := m.sources[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSource, id)
	}
	return src, nil
}

// IDs lists the registered source names, sorted.
func (m *MapServer) IDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.sources))
	for id := range m.sources {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CrossCheckResult reports one consistency-checking pass.
type CrossCheckResult struct {
	// RootsCompared counts the roots successfully fetched and observed.
	RootsCompared int
	// Proofs are the equivocations detected during this pass.
	Proofs []*dictionary.MisbehaviorProof
	// Errors are per-source fetch or verification failures (the pass
	// continues past them: an unreachable RA must not stop auditing).
	Errors []error
}

// CrossCheck fetches the latest root for ca from every source registered
// with the map server and feeds them to the auditor. This is the
// "periodically request a random edge server for its copy of the signed
// root" procedure of §III, run across the full membership.
func CrossCheck(m *MapServer, a *Auditor, ca dictionary.CAID) *CrossCheckResult {
	res := &CrossCheckResult{}
	for _, id := range m.IDs() {
		src, err := m.Source(id)
		if err != nil {
			res.Errors = append(res.Errors, err)
			continue
		}
		root, err := src.LatestRoot(ca)
		if err != nil {
			res.Errors = append(res.Errors, fmt.Errorf("source %s: %w", id, err))
			continue
		}
		proof, err := a.Observe(root)
		if err != nil {
			res.Errors = append(res.Errors, fmt.Errorf("source %s: %w", id, err))
			continue
		}
		res.RootsCompared++
		if proof != nil {
			res.Proofs = append(res.Proofs, proof)
		}
	}
	return res
}

// Gossip compares the views of two peers directly (the client-gossip
// alternative of §III): both roots for ca are observed by the auditor, and
// any equivocation between them surfaces as a proof.
func Gossip(a *Auditor, ca dictionary.CAID, peerA, peerB RootSource) (*dictionary.MisbehaviorProof, error) {
	rootA, err := peerA.LatestRoot(ca)
	if err != nil {
		return nil, fmt.Errorf("monitor: gossip peer A: %w", err)
	}
	rootB, err := peerB.LatestRoot(ca)
	if err != nil {
		return nil, fmt.Errorf("monitor: gossip peer B: %w", err)
	}
	if _, err := a.Observe(rootA); err != nil {
		return nil, err
	}
	return a.Observe(rootB)
}
