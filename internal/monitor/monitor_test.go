package monitor

import (
	"errors"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/ra"
	"ritm/internal/serial"
)

// world is a deployment with one (possibly equivocating) CA feeding two
// separate distribution points, each with its own RA.
type world struct {
	honest *ca.CA
	fork   *ca.CA // same identity and key, diverging dictionary
	dpA    *cdn.DistributionPoint
	dpB    *cdn.DistributionPoint
	raA    *ra.RA
	raB    *ra.RA
	pool   *cert.Pool
}

func newWorld(t *testing.T) *world {
	t.Helper()
	dpA := cdn.NewDistributionPoint(nil)
	honest, err := ca.New(ca.Config{ID: "CA1", Delta: 10 * time.Second, Publisher: dpA})
	if err != nil {
		t.Fatal(err)
	}
	fork, err := honest.Fork()
	if err != nil {
		t.Fatal(err)
	}
	dpB := cdn.NewDistributionPoint(nil)

	for _, reg := range []struct {
		dp *cdn.DistributionPoint
		c  *ca.CA
	}{{dpA, honest}, {dpB, fork}} {
		if err := reg.dp.RegisterCA("CA1", reg.c.PublicKey()); err != nil {
			t.Fatal(err)
		}
	}
	// The fork publishes to dpB.
	if err := honest.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	if err := dpB.PublishIssuance(&dictionary.IssuanceMessage{Root: fork.Authority().SignedRoot()}); err != nil {
		t.Fatal(err)
	}

	pool, err := cert.NewPool(honest.RootCertificate())
	if err != nil {
		t.Fatal(err)
	}
	raA, err := ra.New(ra.Config{
		Roots:  []*cert.Certificate{honest.RootCertificate()},
		Origin: dpA,
		Delta:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	raB, err := ra.New(ra.Config{
		Roots:  []*cert.Certificate{honest.RootCertificate()},
		Origin: dpB,
		Delta:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, agent := range []*ra.RA{raA, raB} {
		if err := agent.SyncOnce(); err != nil {
			t.Fatal(err)
		}
	}
	return &world{honest: honest, fork: fork, dpA: dpA, dpB: dpB, raA: raA, raB: raB, pool: pool}
}

// revokeOnFork publishes a fork-side revocation to dpB directly (the fork
// CA was created without a publisher).
func (w *world) revokeOnFork(t *testing.T, serials ...serial.Number) {
	t.Helper()
	msg, err := w.fork.Revoke(serials...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.dpB.PublishIssuance(msg); err != nil {
		t.Fatal(err)
	}
}

func TestHonestDeploymentShowsNoMisbehavior(t *testing.T) {
	w := newWorld(t)
	// Both RAs follow the honest CA through dpA's content: point raB's view
	// at the same history by re-syncing dpB with the honest messages.
	gen := serial.NewGenerator(1, nil)
	msg, err := w.honest.Revoke(gen.NextN(3)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.dpB.PublishIssuance(msg); err != nil {
		t.Fatal(err)
	}
	for _, agent := range []*ra.RA{w.raA, w.raB} {
		if err := agent.SyncOnce(); err != nil {
			t.Fatal(err)
		}
	}

	auditor := NewAuditor(w.pool)
	ms := NewMapServer()
	ms.Register("ra-A", w.raA.Store())
	ms.Register("ra-B", w.raB.Store())
	ms.Register("dp-A", w.dpA)
	ms.Register("dp-B", w.dpB)

	res := CrossCheck(ms, auditor, "CA1")
	if len(res.Proofs) != 0 {
		t.Fatalf("honest deployment produced %d misbehavior proofs", len(res.Proofs))
	}
	if res.RootsCompared != 4 {
		t.Errorf("compared %d roots, want 4", res.RootsCompared)
	}
	if len(res.Errors) != 0 {
		t.Errorf("cross-check errors: %v", res.Errors)
	}
}

func TestEquivocationDetectedAndProvable(t *testing.T) {
	w := newWorld(t)
	gen := serial.NewGenerator(2, nil)

	// The CA shows different size-2 dictionaries to the two halves of the
	// system: serials {a,b} to dpA, serials {c,d} to dpB.
	if _, err := w.honest.Revoke(gen.NextN(2)...); err != nil {
		t.Fatal(err)
	}
	w.revokeOnFork(t, gen.NextN(2)...)
	for _, agent := range []*ra.RA{w.raA, w.raB} {
		if err := agent.SyncOnce(); err != nil {
			t.Fatal(err)
		}
	}

	auditor := NewAuditor(w.pool)
	ms := NewMapServer()
	ms.Register("ra-A", w.raA.Store())
	ms.Register("ra-B", w.raB.Store())
	res := CrossCheck(ms, auditor, "CA1")
	if len(res.Proofs) == 0 {
		t.Fatal("equivocation not detected")
	}

	// The proof is transferable: a third party verifies it with only the
	// CA's public key.
	proof := res.Proofs[0]
	if err := proof.Verify(w.honest.PublicKey()); err != nil {
		t.Errorf("proof does not verify independently: %v", err)
	}

	// And it survives serialization (reporting to a software vendor, §III).
	decoded, err := dictionary.DecodeMisbehaviorProof(proof.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Verify(w.honest.PublicKey()); err != nil {
		t.Errorf("decoded proof does not verify: %v", err)
	}
	if len(auditor.Proofs()) == 0 {
		t.Error("auditor did not retain the proof")
	}
}

func TestGossipBetweenTwoPeersDetectsEquivocation(t *testing.T) {
	w := newWorld(t)
	gen := serial.NewGenerator(3, nil)
	if _, err := w.honest.Revoke(gen.NextN(1)...); err != nil {
		t.Fatal(err)
	}
	w.revokeOnFork(t, gen.NextN(1)...)
	for _, agent := range []*ra.RA{w.raA, w.raB} {
		if err := agent.SyncOnce(); err != nil {
			t.Fatal(err)
		}
	}

	auditor := NewAuditor(w.pool)
	proof, err := Gossip(auditor, "CA1", w.raA.Store(), w.raB.Store())
	if err != nil {
		t.Fatal(err)
	}
	if proof == nil {
		t.Fatal("gossip missed the equivocation")
	}
}

func TestAppendOnlyViolationDetected(t *testing.T) {
	w := newWorld(t)
	gen := serial.NewGenerator(4, nil)

	// Honest history: two batches; capture the intermediate root.
	if _, err := w.honest.Revoke(gen.NextN(2)...); err != nil {
		t.Fatal(err)
	}
	if err := w.raA.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	olderRoot := w.honest.Authority().SignedRoot()
	if _, err := w.honest.Revoke(gen.NextN(2)...); err != nil {
		t.Fatal(err)
	}
	if err := w.raA.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	newerRoot := w.honest.Authority().SignedRoot()

	replica, err := w.raA.Store().Replica("CA1")
	if err != nil {
		t.Fatal(err)
	}
	log := replica.Log()

	auditor := NewAuditor(w.pool)
	if err := auditor.CheckAppendOnly(log, olderRoot, newerRoot); err != nil {
		t.Errorf("honest history flagged: %v", err)
	}

	// A rewriting CA: the fork reaches size 4 with different history. Its
	// root cannot be explained by raA's log.
	w.revokeOnFork(t, gen.NextN(4)...)
	forkRoot := w.fork.Authority().SignedRoot()
	if err := auditor.CheckAppendOnly(log, olderRoot, forkRoot); err == nil {
		t.Error("history rewrite not detected")
	}
}

// TestAppendOnlyForestLayout pins the auditor's layout plumbing: an honest
// forest-layout history passes only through an auditor configured with the
// matching layout — a sorted-layout auditor replaying the same log cannot
// reproduce the forest roots and would flag the honest CA.
func TestAppendOnlyForestLayout(t *testing.T) {
	authority, err := ca.New(ca.Config{ID: "ForestCA", Delta: 10 * time.Second, Layout: dictionary.LayoutForest})
	if err != nil {
		t.Fatal(err)
	}
	gen := serial.NewGenerator(8, nil)
	if _, err := authority.Revoke(gen.NextN(3)...); err != nil {
		t.Fatal(err)
	}
	olderRoot := authority.Authority().SignedRoot()
	if _, err := authority.Revoke(gen.NextN(2)...); err != nil {
		t.Fatal(err)
	}
	newerRoot := authority.Authority().SignedRoot()
	log, err := authority.Authority().LogSuffix(0, authority.Authority().Count())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cert.NewPool(authority.RootCertificate())
	if err != nil {
		t.Fatal(err)
	}

	forestAuditor := NewAuditorWithLayout(pool, dictionary.LayoutForest)
	if err := forestAuditor.CheckAppendOnly(log, olderRoot, newerRoot); err != nil {
		t.Errorf("honest forest history flagged: %v", err)
	}
	sortedAuditor := NewAuditor(pool)
	if err := sortedAuditor.CheckAppendOnly(log, olderRoot, newerRoot); !errors.Is(err, dictionary.ErrRootMismatch) {
		t.Errorf("layout-mismatched auditor: err = %v, want ErrRootMismatch", err)
	}
}

func TestAuditorRejectsForgedRoots(t *testing.T) {
	w := newWorld(t)
	auditor := NewAuditor(w.pool)

	root := w.honest.Authority().SignedRoot()
	forged := *root
	forged.N = root.N + 7 // tamper with a signed field
	if _, err := auditor.Observe(&forged); err == nil {
		t.Error("tampered root accepted")
	}

	unknown := *root
	unknown.CA = "CA9"
	if _, err := auditor.Observe(&unknown); !errors.Is(err, ErrUntrustedCA) {
		t.Errorf("err = %v, want ErrUntrustedCA", err)
	}
}

func TestMapServerRegistry(t *testing.T) {
	ms := NewMapServer()
	if _, err := ms.Source("nope"); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("err = %v, want ErrUnknownSource", err)
	}
	w := newWorld(t)
	ms.Register("b", w.raB.Store())
	ms.Register("a", w.raA.Store())
	ids := ms.IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v", ids)
	}
	if _, err := ms.Source("a"); err != nil {
		t.Errorf("registered source not found: %v", err)
	}
}
