//go:build !unix

package mmap

import (
	"io"
	"os"
)

// mapFile reads f onto the heap: the portable fallback for platforms
// without a usable mmap. Readers still get a correct immutable view; they
// just do not share physical memory across processes.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

func unmap(data []byte) error { return nil }
