package mmap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte("ritm-mmap"), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data(), want) {
		t.Fatalf("mapped %d bytes, mismatch", len(m.Data()))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if m.Data() != nil {
		t.Fatal("Data after Close is non-nil")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data()) != 0 {
		t.Fatalf("empty file mapped %d bytes", len(m.Data()))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

// TestMappingSurvivesRename pins the property the checkpoint installer
// relies on: renaming a new file over a mapped one leaves the old mapping
// reading the old bytes.
func TestMappingSurvivesRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")
	old := bytes.Repeat([]byte{0xAA}, 4096)
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	next := filepath.Join(dir, "ckpt.tmp")
	if err := os.WriteFile(next, bytes.Repeat([]byte{0xBB}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(next, path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data(), old) {
		t.Fatal("mapping changed under an atomic rename")
	}
}
