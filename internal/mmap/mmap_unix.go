//go:build unix

package mmap

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. MAP_SHARED (not PRIVATE) so that every process
// mapping the same checkpoint file shares one page-cache copy.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems that refuse mmap still work through the heap fallback.
		buf, rerr := os.ReadFile(f.Name())
		if rerr != nil {
			return nil, false, err
		}
		return buf, false, nil
	}
	return data, true, nil
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}
