// Package mmap maps read-only files into memory so that checkpoint bytes
// can be shared between co-located processes through the page cache
// instead of being copied onto every heap.
//
// On unix platforms Open memory-maps the file (PROT_READ, MAP_SHARED): N
// processes mapping the same checkpoint file share one physical copy, and
// pages are faulted in lazily, so a mapped dictionary costs a process
// O(1) anonymous memory regardless of its size. Elsewhere Open falls back
// to reading the file onto the heap, which preserves the API (and the
// correctness of everything above it) at the cost of the sharing.
//
// A Mapping stays valid until Close. Because the storage tier installs
// checkpoints by atomic rename, a mapping of the OLD file keeps reading
// consistent old bytes after a new checkpoint lands — the inode survives
// until the last mapping is gone, which is exactly the read-copy-update
// discipline the dictionary's snapshot machinery relies on.
package mmap

import (
	"fmt"
	"os"
	"runtime"
	"sync"
)

// Mapping is a read-only view of a file's contents.
type Mapping struct {
	mu     sync.Mutex
	data   []byte
	mapped bool // true when data came from the platform mapper, not the heap
	closed bool
}

// Data returns the mapped bytes. The slice is valid until Close; callers
// must not modify it (on mapped platforms writes fault).
func (m *Mapping) Data() []byte {
	if m == nil {
		return nil
	}
	return m.data
}

// Mapped reports whether the bytes are an actual file mapping (as opposed
// to the portable heap fallback). Benchmarks use it to attribute memory.
func (m *Mapping) Mapped() bool {
	if m == nil {
		return false
	}
	return m.mapped
}

// Close releases the mapping. It is idempotent; the data slice must not be
// used after. A Mapping that is garbage-collected without Close is
// released by a finalizer, so a forgotten old-generation mapping cannot
// leak address space for the life of the process.
func (m *Mapping) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	runtime.SetFinalizer(m, nil)
	data := m.data
	m.data = nil
	if !m.mapped || len(data) == 0 {
		return nil
	}
	return unmap(data)
}

// Open maps the file at path read-only. An empty file yields an empty,
// valid mapping.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: %s: size %d overflows int", path, size)
	}
	data, mapped, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("mmap: %s: %w", path, err)
	}
	m := &Mapping{data: data, mapped: mapped}
	if mapped {
		runtime.SetFinalizer(m, func(m *Mapping) { m.Close() })
	}
	return m, nil
}
