// Package workload synthesizes the datasets the paper's evaluation
// consumes (§VII-A). The originals — the Internet Storm Center CRL
// collection, the CAcert CRL, and the MaxMind city database — are not
// redistributable, so this package generates deterministic substitutes
// whose aggregate statistics are pinned to the values the paper reports:
//
//   - 1,381,992 unique revocations across 254 CRLs, 5,440 per CRL on
//     average, largest CRL 339,557 entries / 7.5 MB;
//   - a revocation time series from January 2014 to June 2015 with the
//     Heartbleed burst peaking on 16–17 April 2014;
//   - 47,980 cities totalling 2.3 billion people for the RA population
//     model of §VII-C.
//
// Every generator is seeded, so experiments are reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Dataset constants reported in §VII-A.
const (
	// TotalRevocations is the number of unique revocations in the dataset.
	TotalRevocations = 1_381_992
	// NumCRLs is the number of distinct revocation lists (dictionaries).
	NumCRLs = 254
	// LargestCRLEntries is the entry count of the largest CRL (CAcert).
	LargestCRLEntries = 339_557
	// LargestCRLBytes is that CRL's reported size (7.5 MB).
	LargestCRLBytes = 7_500_000
	// AvgCRLEntries is the reported average entries per CRL.
	AvgCRLEntries = 5_440
)

// SeriesStart and SeriesEnd bound the revocation time series (Fig 4).
var (
	SeriesStart = time.Date(2014, time.January, 1, 0, 0, 0, 0, time.UTC)
	SeriesEnd   = time.Date(2015, time.July, 1, 0, 0, 0, 0, time.UTC) // exclusive
)

// heartbleedExtra maps days in April 2014 to their burst multiplier
// relative to a normal day. The disclosure was 7 April 2014; mass
// revocation peaked on the 16th and 17th (Fig 4, bottom).
var heartbleedExtra = map[int]float64{
	8: 1.5, 9: 2, 10: 2.5, 11: 3, 12: 2.5, 13: 2.5,
	14: 3, 15: 5, 16: 9, 17: 8, 18: 4, 19: 2, 20: 1.5,
}

// burstProfile shapes hours within a Heartbleed day: mass-revocation jobs
// run in batches, so a few hours carry most of the load (Fig 4 bottom).
var burstProfile = [24]float64{
	1, 1, 1, 1, 2, 3, 10, 4, 2, 2, 3, 8,
	3, 2, 2, 2, 6, 2, 1, 1, 1, 1, 1, 1,
}

// calmProfile shapes hours of a normal day: mildly diurnal.
var calmProfile = [24]float64{
	2, 1, 1, 1, 1, 2, 3, 4, 5, 6, 6, 6,
	6, 6, 6, 5, 5, 4, 4, 3, 3, 3, 2, 2,
}

// Series is the synthetic revocation time series: one count per day from
// SeriesStart (inclusive) to SeriesEnd (exclusive), totalling exactly
// TotalRevocations.
type Series struct {
	start time.Time
	daily []int
}

// NewSeries generates the series deterministically from seed.
func NewSeries(seed uint64) *Series {
	rng := rand.New(rand.NewPCG(seed, seed^0xda7a5e7))
	days := int(SeriesEnd.Sub(SeriesStart).Hours() / 24)
	weights := make([]float64, days)
	var sum float64
	for i := range weights {
		date := SeriesStart.AddDate(0, 0, i)
		// Baseline: unit weight with ±15 % noise.
		w := 1 + 0.15*(2*rng.Float64()-1)
		if date.Year() == 2014 && date.Month() == time.April {
			if extra, ok := heartbleedExtra[date.Day()]; ok {
				w *= 1 + extra
			}
		}
		weights[i] = w
		sum += w
	}
	// Scale to the pinned total, assigning the rounding remainder to the
	// peak day so that the total is exact.
	daily := make([]int, days)
	total := 0
	peak := 0
	for i, w := range weights {
		daily[i] = int(math.Floor(w / sum * TotalRevocations))
		total += daily[i]
		if daily[i] > daily[peak] {
			peak = i
		}
	}
	daily[peak] += TotalRevocations - total
	return &Series{start: SeriesStart, daily: daily}
}

// Days returns the number of days covered.
func (s *Series) Days() int { return len(s.daily) }

// Total returns the series total (always TotalRevocations).
func (s *Series) Total() int {
	total := 0
	for _, d := range s.daily {
		total += d
	}
	return total
}

// dayIndex converts a date to a daily index.
func (s *Series) dayIndex(date time.Time) (int, error) {
	idx := int(date.UTC().Truncate(24*time.Hour).Sub(s.start).Hours() / 24)
	if idx < 0 || idx >= len(s.daily) {
		return 0, fmt.Errorf("workload: %v outside series range", date)
	}
	return idx, nil
}

// Day returns the revocation count on a calendar day.
func (s *Series) Day(date time.Time) (int, error) {
	idx, err := s.dayIndex(date)
	if err != nil {
		return 0, err
	}
	return s.daily[idx], nil
}

// Daily returns a copy of all daily counts.
func (s *Series) Daily() []int {
	out := make([]int, len(s.daily))
	copy(out, s.daily)
	return out
}

// Weekly aggregates the series into calendar weeks of seven days from the
// start (the top plot of Fig 4). The final partial week is included.
func (s *Series) Weekly() []int {
	weeks := (len(s.daily) + 6) / 7
	out := make([]int, weeks)
	for i, d := range s.daily {
		out[i/7] += d
	}
	return out
}

// Monthly returns per-calendar-month totals in order, with labels.
type MonthCount struct {
	Year  int
	Month time.Month
	Count int
}

// Monthly aggregates the series into calendar months (the billing cycles
// of Fig 6).
func (s *Series) Monthly() []MonthCount {
	var out []MonthCount
	for i, d := range s.daily {
		date := s.start.AddDate(0, 0, i)
		if len(out) == 0 || out[len(out)-1].Year != date.Year() || out[len(out)-1].Month != date.Month() {
			out = append(out, MonthCount{Year: date.Year(), Month: date.Month()})
		}
		out[len(out)-1].Count += d
	}
	return out
}

// Hourly distributes a day's count over its 24 hours: bursty on Heartbleed
// days, mildly diurnal otherwise (Fig 4, bottom). The hourly counts sum
// exactly to the day's count.
func (s *Series) Hourly(date time.Time) ([24]int, error) {
	idx, err := s.dayIndex(date)
	if err != nil {
		return [24]int{}, err
	}
	profile := calmProfile
	if date.Year() == 2014 && date.Month() == time.April {
		if _, burst := heartbleedExtra[date.Day()]; burst {
			profile = burstProfile
		}
	}
	var profSum float64
	for _, p := range profile {
		profSum += p
	}
	var out [24]int
	day := s.daily[idx]
	assigned := 0
	maxH := 0
	for h := 0; h < 24; h++ {
		out[h] = int(float64(day) * profile[h] / profSum)
		assigned += out[h]
		if out[h] > out[maxH] {
			maxH = h
		}
	}
	out[maxH] += day - assigned
	return out, nil
}

// Bins aggregates the hours of [from, to) into bins of binHours hours,
// reproducing Fig 4's bottom plot at any granularity.
func (s *Series) Bins(from, to time.Time, binHours int) ([]int, error) {
	if binHours <= 0 {
		return nil, fmt.Errorf("workload: bin of %d hours", binHours)
	}
	var hours []int
	for day := from.UTC().Truncate(24 * time.Hour); day.Before(to); day = day.AddDate(0, 0, 1) {
		hourly, err := s.Hourly(day)
		if err != nil {
			return nil, err
		}
		for h := 0; h < 24; h++ {
			ts := day.Add(time.Duration(h) * time.Hour)
			if !ts.Before(from) && ts.Before(to) {
				hours = append(hours, hourly[h])
			}
		}
	}
	bins := make([]int, (len(hours)+binHours-1)/binHours)
	for i, h := range hours {
		bins[i/binHours] += h
	}
	return bins, nil
}

// Range sums the daily counts in [from, to).
func (s *Series) Range(from, to time.Time) (int, error) {
	total := 0
	for day := from.UTC().Truncate(24 * time.Hour); day.Before(to); day = day.AddDate(0, 0, 1) {
		n, err := s.Day(day)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// HeartbleedWeek returns the bounds of the burst week the bandwidth
// experiment uses (Fig 7: 14–20 April 2014).
func HeartbleedWeek() (from, to time.Time) {
	return time.Date(2014, time.April, 14, 0, 0, 0, 0, time.UTC),
		time.Date(2014, time.April, 21, 0, 0, 0, 0, time.UTC)
}
