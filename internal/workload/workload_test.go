package workload

import (
	"testing"
	"time"
)

func TestSeriesTotalPinned(t *testing.T) {
	s := NewSeries(1)
	if got := s.Total(); got != TotalRevocations {
		t.Fatalf("total = %d, want %d", got, TotalRevocations)
	}
	if got := s.Days(); got != 546 {
		t.Errorf("days = %d, want 546 (Jan 2014 – Jun 2015)", got)
	}
}

func TestSeriesDeterministic(t *testing.T) {
	a, b := NewSeries(7), NewSeries(7)
	da, db := a.Daily(), b.Daily()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("day %d differs: %d vs %d", i, da[i], db[i])
		}
	}
	c := NewSeries(8)
	diff := false
	for i, d := range c.Daily() {
		if d != da[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical series")
	}
}

func TestSeriesHeartbleedShape(t *testing.T) {
	s := NewSeries(1)
	weekly := s.Weekly()

	// Baseline weeks (before April 2014) sit in the ~16 k/week band.
	for w := 0; w < 13; w++ {
		if weekly[w] < 10_000 || weekly[w] > 25_000 {
			t.Errorf("baseline week %d = %d, want 10k–25k", w, weekly[w])
		}
	}

	// The Heartbleed week dominates every other week.
	hbFrom, hbTo := HeartbleedWeek()
	hbCount, err := s.Range(hbFrom, hbTo)
	if err != nil {
		t.Fatal(err)
	}
	if hbCount < 55_000 || hbCount > 100_000 {
		t.Errorf("Heartbleed week = %d, want 55k–100k (Fig 4 peak)", hbCount)
	}
	maxWeek := 0
	for _, w := range weekly {
		if w > maxWeek {
			maxWeek = w
		}
	}
	if hbCount < maxWeek*8/10 {
		t.Errorf("Heartbleed week (%d) is not the dominant peak (max %d)", hbCount, maxWeek)
	}

	// The peak day is April 16, 2014.
	peak, err := s.Day(time.Date(2014, time.April, 16, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Daily() {
		if d > peak {
			t.Fatalf("a day exceeds April 16 (%d > %d)", d, peak)
		}
	}
}

func TestSeriesHourlySumsToDay(t *testing.T) {
	s := NewSeries(1)
	for _, date := range []time.Time{
		time.Date(2014, time.February, 3, 0, 0, 0, 0, time.UTC),
		time.Date(2014, time.April, 16, 0, 0, 0, 0, time.UTC),
	} {
		day, err := s.Day(date)
		if err != nil {
			t.Fatal(err)
		}
		hourly, err := s.Hourly(date)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, h := range hourly {
			if h < 0 {
				t.Fatalf("negative hourly count on %v", date)
			}
			sum += h
		}
		if sum != day {
			t.Errorf("%v: hourly sum %d != day %d", date, sum, day)
		}
	}
}

func TestSeriesBinsMatchFig4Bottom(t *testing.T) {
	s := NewSeries(1)
	from := time.Date(2014, time.April, 16, 0, 0, 0, 0, time.UTC)
	to := time.Date(2014, time.April, 18, 0, 0, 0, 0, time.UTC)
	bins, err := s.Bins(from, to, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 16 {
		t.Fatalf("3-hour bins over two days = %d, want 16", len(bins))
	}
	peak := 0
	for _, b := range bins {
		if b > peak {
			peak = b
		}
	}
	// Fig 4 bottom: bursts reaching the 6k–10k band.
	if peak < 4_000 || peak > 12_000 {
		t.Errorf("peak 3-hour bin = %d, want 4k–12k", peak)
	}
}

func TestSeriesRangeErrors(t *testing.T) {
	s := NewSeries(1)
	if _, err := s.Day(time.Date(2013, time.December, 31, 0, 0, 0, 0, time.UTC)); err == nil {
		t.Error("date before series accepted")
	}
	if _, err := s.Day(SeriesEnd); err == nil {
		t.Error("date at series end accepted")
	}
}

func TestCorpusAggregates(t *testing.T) {
	c := NewCorpus(1)
	if c.Len() != NumCRLs {
		t.Fatalf("len = %d, want %d", c.Len(), NumCRLs)
	}
	if c.Size(0) != LargestCRLEntries {
		t.Errorf("largest = %d, want %d", c.Size(0), LargestCRLEntries)
	}
	// The ≥1-entry floor may add a handful of entries over the pinned
	// total; it must stay within NumCRLs of it.
	if diff := c.Total() - TotalRevocations; diff < 0 || diff > NumCRLs {
		t.Errorf("total = %d, want %d (+≤%d)", c.Total(), TotalRevocations, NumCRLs)
	}
	if avg := c.Average(); avg < 5_000 || avg > 6_000 {
		t.Errorf("average = %f, want ≈%d", avg, AvgCRLEntries)
	}
	// Sizes are descending-ish: the head dominates the tail.
	if c.Size(1) >= c.Size(0) {
		t.Error("second CRL not smaller than the largest")
	}
	if c.Size(NumCRLs-1) < 1 {
		t.Error("tail CRL is empty")
	}
}

func TestCorpusBytes(t *testing.T) {
	c := NewCorpus(1)
	if eb := EntryBytes(); eb < 20 || eb > 25 {
		t.Errorf("entry bytes = %f, want ≈22 (7.5 MB / 339,557)", eb)
	}
	if got := c.CRLBytes(0); got < 7_400_000 || got > 7_600_000 {
		t.Errorf("largest CRL bytes = %d, want ≈7.5 MB", got)
	}
}

func TestCorpusSerials(t *testing.T) {
	c := NewCorpus(1)
	i := c.Len() - 1 // smallest list: cheap to materialize
	serials := c.Serials(i)
	if len(serials) != c.Size(i) {
		t.Fatalf("materialized %d serials, want %d", len(serials), c.Size(i))
	}
	// Deterministic regeneration.
	again := c.Serials(i)
	for j := range serials {
		if !serials[j].Equal(again[j]) {
			t.Fatal("serial generation not deterministic")
		}
	}
	// Absent samples are really absent.
	absent := c.SampleAbsent(i, 10)
	seen := make(map[string]bool)
	for _, sn := range serials {
		seen[string(sn.Raw())] = true
	}
	for _, sn := range absent {
		if seen[string(sn.Raw())] {
			t.Fatalf("sampled 'absent' serial %v is present", sn)
		}
	}
}

func TestSerialSizeHistogramMode(t *testing.T) {
	hist := SerialSizeHistogram(1, 100_000)
	total := 0
	for _, n := range hist {
		total += n
	}
	mode3 := float64(hist[3]) / float64(total)
	if mode3 < 0.30 || mode3 > 0.34 {
		t.Errorf("3-byte share = %f, want ≈0.32 (§VII-A)", mode3)
	}
	for size, n := range hist {
		if n > hist[3] && size != 3 {
			t.Errorf("mode is %d bytes, want 3", size)
		}
	}
}

func TestCitiesAggregates(t *testing.T) {
	c := NewCities(1)
	if c.Len() != NumCities {
		t.Fatalf("cities = %d, want %d", c.Len(), NumCities)
	}
	if c.TotalPopulation() != TotalPopulation {
		t.Fatalf("population = %d, want %d", c.TotalPopulation(), TotalPopulation)
	}
	// §VII-C: 10 clients per RA → 230 M RAs.
	if ras := c.RAs(10); ras != 230_000_000 {
		t.Errorf("RAs at 10 clients each = %d, want 230,000,000", ras)
	}
	// Every pricing region is populated and shares roughly follow the
	// configured distribution.
	byRegion := c.RAsByRegion(10)
	var sum int64
	for _, r := range Regions() {
		if byRegion[r] <= 0 {
			t.Errorf("region %v has no RAs", r)
		}
		sum += byRegion[r]
	}
	if diff := sum - 230_000_000; diff > int64(numRegions) || diff < -230_000_000/100 {
		t.Errorf("regional RAs sum to %d", sum)
	}
	// MaxMind's coverage skew: US + Europe carry the majority.
	west := float64(c.RegionPopulation(RegionUnitedStates)+c.RegionPopulation(RegionEurope)) /
		float64(TotalPopulation)
	if west < 0.55 || west > 0.75 {
		t.Errorf("US+EU share = %f, want ≈0.65", west)
	}
}
