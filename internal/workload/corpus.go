package workload

import (
	"math"
	"math/rand/v2"

	"ritm/internal/serial"
)

// Corpus is the synthetic 254-CRL collection: per-CRL entry counts whose
// aggregate statistics match §VII-A exactly — NumCRLs lists, the largest
// with LargestCRLEntries entries, TotalRevocations in total (and therefore
// the reported per-CRL average). Sizes follow a Zipf-like distribution, as
// real CRL populations do (a few huge lists, a long tail of small ones).
type Corpus struct {
	sizes []int // descending; sizes[0] == LargestCRLEntries
	seed  uint64
}

// NewCorpus builds the corpus deterministically from seed.
func NewCorpus(seed uint64) *Corpus {
	// The largest CRL is pinned; distribute the remaining mass over the
	// other 253 lists with Zipf weights 1/rank^s.
	remaining := TotalRevocations - LargestCRLEntries
	const s = 0.82 // tuned so the tail stays plausibly heavy but non-empty
	weights := make([]float64, NumCRLs-1)
	var sum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+2), s)
		sum += weights[i]
	}
	sizes := make([]int, NumCRLs)
	sizes[0] = LargestCRLEntries
	assigned := 0
	for i, w := range weights {
		sizes[i+1] = int(float64(remaining) * w / sum)
		assigned += sizes[i+1]
	}
	// Rounding remainder goes to the second-largest list; every list keeps
	// at least one entry.
	sizes[1] += remaining - assigned
	for i := range sizes {
		if sizes[i] < 1 {
			sizes[i] = 1
		}
	}
	return &Corpus{sizes: sizes, seed: seed}
}

// Len returns the number of CRLs (NumCRLs).
func (c *Corpus) Len() int { return len(c.sizes) }

// Size returns CRL i's entry count (i = 0 is the largest).
func (c *Corpus) Size(i int) int { return c.sizes[i] }

// Sizes returns a copy of all entry counts, descending.
func (c *Corpus) Sizes() []int {
	out := make([]int, len(c.sizes))
	copy(out, c.sizes)
	return out
}

// Total returns the corpus total (TotalRevocations up to the ≥1-entry
// floor adjustment, which tests bound).
func (c *Corpus) Total() int {
	total := 0
	for _, n := range c.sizes {
		total += n
	}
	return total
}

// Average returns the mean entries per CRL.
func (c *Corpus) Average() float64 {
	return float64(c.Total()) / float64(c.Len())
}

// EntryBytes is the average bytes per CRL entry, derived from the largest
// CRL's reported size (7.5 MB / 339,557 entries ≈ 22 B: serial number,
// revocation date, and per-entry DER overhead).
func EntryBytes() float64 {
	return float64(LargestCRLBytes) / float64(LargestCRLEntries)
}

// CRLBytes estimates CRL i's size in bytes at the dataset's bytes/entry.
func (c *Corpus) CRLBytes(i int) int {
	return int(float64(c.sizes[i]) * EntryBytes())
}

// SerialGenerator returns the deterministic serial generator for CRL i
// (one CA's serial space), using the paper's serial-size distribution with
// its 3-byte mode.
func (c *Corpus) SerialGenerator(i int) *serial.Generator {
	return serial.NewGenerator(c.seed^uint64(i)*0x9e3779b97f4a7c15+uint64(i), nil)
}

// Serials materializes CRL i's entries. The largest list allocates ~340 k
// serials; callers that only need counts should use Size.
func (c *Corpus) Serials(i int) []serial.Number {
	return c.SerialGenerator(i).NextN(c.sizes[i])
}

// SampleAbsent returns count serials guaranteed absent from CRL i's
// generated entries (drawn from a disjoint seeded stream and filtered),
// used by lookup benchmarks that need misses.
func (c *Corpus) SampleAbsent(i, count int) []serial.Number {
	present := make(map[string]struct{}, c.sizes[i])
	for _, sn := range c.Serials(i) {
		present[string(sn.Raw())] = struct{}{}
	}
	gen := serial.NewGenerator(c.seed^0xABBA^uint64(i), nil)
	out := make([]serial.Number, 0, count)
	for len(out) < count {
		sn := gen.Next()
		if _, dup := present[string(sn.Raw())]; !dup {
			out = append(out, sn)
		}
	}
	return out
}

// SerialSizeHistogram draws n serials from the paper's distribution and
// returns the byte-length histogram — used to validate the 3-byte mode at
// 32 % (§VII-A).
func SerialSizeHistogram(seed uint64, n int) map[int]int {
	gen := serial.NewGenerator(seed, nil)
	hist := make(map[int]int)
	for i := 0; i < n; i++ {
		hist[gen.Next().Len()]++
	}
	return hist
}

// rngFor derives a sub-generator; shared helper for corpus consumers.
func rngFor(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream))
}
