package workload

import (
	"math"
)

// City-population model for the cost evaluation (§VII-C): the paper sizes
// the RA population proportionally to city populations from MaxMind —
// 47,980 cities, 2.3 billion people — and maps each city to the CDN
// pricing region serving it.

// Dataset constants reported in §VII-C.
const (
	// NumCities is the number of cities in the dataset.
	NumCities = 47_980
	// TotalPopulation is the dataset's total population.
	TotalPopulation = 2_300_000_000
)

// Region is a CDN pricing region (CloudFront's 2015 regional price list).
type Region int

// Pricing regions. Cities outside a listed region are served by the
// nearest one, as CloudFront does (Africa and the Middle East map to
// Europe, Canada to the United States rate).
const (
	RegionUnitedStates Region = iota + 1
	RegionEurope
	RegionAsia // Hong Kong, Singapore, South Korea, Taiwan
	RegionJapan
	RegionIndia
	RegionSouthAmerica
	RegionAustralia
	numRegions = int(RegionAustralia)
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionUnitedStates:
		return "United States"
	case RegionEurope:
		return "Europe"
	case RegionAsia:
		return "Asia"
	case RegionJapan:
		return "Japan"
	case RegionIndia:
		return "India"
	case RegionSouthAmerica:
		return "South America"
	case RegionAustralia:
		return "Australia"
	default:
		return "Region(?)"
	}
}

// Regions lists all pricing regions.
func Regions() []Region {
	out := make([]Region, numRegions)
	for i := range out {
		out[i] = Region(i + 1)
	}
	return out
}

// regionShare is each region's share of the dataset population. MaxMind's
// city database covers 2.3 B people — roughly a third of the world — with
// coverage heavily skewed toward North America and Europe, which the
// shares reflect (Canada and Mexico are served at the US rate; Africa and
// the Middle East from European edges, as CloudFront routes them).
var regionShare = map[Region]float64{
	RegionUnitedStates: 0.22,
	RegionEurope:       0.43,
	RegionAsia:         0.12,
	RegionJapan:        0.04,
	RegionIndia:        0.06,
	RegionSouthAmerica: 0.10,
	RegionAustralia:    0.03,
}

// City is one entry of the synthetic city dataset.
type City struct {
	Population int
	Region     Region
}

// Cities is the synthetic city-population dataset.
type Cities struct {
	list        []City
	byRegion    map[Region]int64
	totalPeople int64
}

// NewCities builds the dataset deterministically from seed: NumCities
// cities with Zipf-distributed populations summing to TotalPopulation,
// each assigned a pricing region with probability proportional to the
// region shares.
func NewCities(seed uint64) *Cities {
	rng := rngFor(seed, 0xC171E5)
	// Zipf weights over city ranks: population of rank-k city ∝ 1/k^s.
	// s ≈ 0.8 reproduces the heavy head (megacities) and long tail of real
	// city-size distributions without leaving the tail at zero.
	const s = 0.8
	weights := make([]float64, NumCities)
	var sum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		sum += weights[i]
	}
	c := &Cities{
		list:     make([]City, NumCities),
		byRegion: make(map[Region]int64, numRegions),
	}
	regions := Regions()
	assigned := int64(0)
	for i := range c.list {
		pop := int(float64(TotalPopulation) * weights[i] / sum)
		if pop < 1 {
			pop = 1
		}
		// Region sampled by share; independent of size so every region gets
		// its slice of megacities and villages.
		x := rng.Float64()
		region := regions[len(regions)-1]
		acc := 0.0
		for _, r := range regions {
			acc += regionShare[r]
			if x < acc {
				region = r
				break
			}
		}
		c.list[i] = City{Population: pop, Region: region}
		assigned += int64(pop)
	}
	// Pin the exact total on the largest city.
	c.list[0].Population += int(TotalPopulation - assigned)
	for _, city := range c.list {
		c.byRegion[city.Region] += int64(city.Population)
		c.totalPeople += int64(city.Population)
	}
	return c
}

// Len returns the number of cities.
func (c *Cities) Len() int { return len(c.list) }

// TotalPopulation returns the dataset total (pinned).
func (c *Cities) TotalPopulation() int64 { return c.totalPeople }

// RegionPopulation returns the population served by a pricing region.
func (c *Cities) RegionPopulation(r Region) int64 { return c.byRegion[r] }

// RAs returns the worldwide RA count at the given clients-per-RA ratio
// (§VII-C assumes every person is a client: 230 M RAs at 10 clients/RA).
func (c *Cities) RAs(clientsPerRA int) int64 {
	return c.totalPeople / int64(clientsPerRA)
}

// RAsByRegion distributes the RA population over pricing regions
// proportionally to city population.
func (c *Cities) RAsByRegion(clientsPerRA int) map[Region]int64 {
	out := make(map[Region]int64, numRegions)
	for r, pop := range c.byRegion {
		out[r] = pop / int64(clientsPerRA)
	}
	return out
}
