// Package cryptoutil provides the cryptographic primitives RITM builds on:
// the truncated hash used throughout the authenticated dictionary, hash
// chains for freshness statements, and Ed25519 signing identities for CAs.
//
// Following §VI of the paper, the hash function is SHA-256 truncated to its
// first 20 bytes, and the signature scheme is Ed25519 (64-byte signatures).
package cryptoutil

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// HashSize is the size in bytes of the truncated hash used by RITM
// (SHA-256 truncated to 20 bytes, §VI).
const HashSize = 20

// Hash is a truncated SHA-256 digest. It is a value type so that it can be
// used as a map key and compared with ==.
type Hash [HashSize]byte

// Errors returned by primitives in this package.
var (
	// ErrBadSignature reports a signature that does not verify.
	ErrBadSignature = errors.New("cryptoutil: invalid signature")
	// ErrBadHashSize reports a byte slice of the wrong length for a Hash.
	ErrBadHashSize = errors.New("cryptoutil: wrong hash size")
	// ErrChainTooLong reports a hash-chain offset beyond the chain length.
	ErrChainTooLong = errors.New("cryptoutil: offset exceeds chain length")
)

// HashBytes returns the truncated SHA-256 digest of data.
func HashBytes(data []byte) Hash {
	full := sha256.Sum256(data)
	var h Hash
	copy(h[:], full[:HashSize])
	return h
}

// HashConcat hashes the concatenation of the given byte slices without
// building the concatenation in memory.
func HashConcat(parts ...[]byte) Hash {
	st := sha256.New()
	for _, p := range parts {
		st.Write(p)
	}
	var full [sha256.Size]byte
	st.Sum(full[:0])
	var h Hash
	copy(h[:], full[:HashSize])
	return h
}

// HashFromBytes converts a 20-byte slice into a Hash.
func HashFromBytes(b []byte) (Hash, error) {
	var h Hash
	if len(b) != HashSize {
		return h, fmt.Errorf("%w: got %d bytes", ErrBadHashSize, len(b))
	}
	copy(h[:], b)
	return h, nil
}

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// String returns the hex encoding of the hash.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Equal compares two hashes in constant time. Use it whenever the comparison
// involves an attacker-supplied value.
func (h Hash) Equal(other Hash) bool {
	return subtle.ConstantTimeCompare(h[:], other[:]) == 1
}

// HashStep applies the chain hash function once: H(x). Hash chains use the
// same truncated hash as the dictionary but with a distinct domain-separator
// prefix so that chain values can never collide with tree nodes.
func HashStep(h Hash) Hash {
	return HashConcat([]byte{domainChain}, h[:])
}

// HashIter applies HashStep n times: Hⁿ(x). HashIter(h, 0) returns h.
func HashIter(h Hash, n int) Hash {
	for i := 0; i < n; i++ {
		h = HashStep(h)
	}
	return h
}

// Domain separators for the different uses of the hash function. Leaf and
// interior prefixes follow the standard second-preimage-resistant Merkle
// construction (RFC 6962 style); the chain prefix isolates freshness chains.
const (
	domainLeaf   = 0x00
	domainNode   = 0x01
	domainChain  = 0x02
	domainBucket = 0x03
	domainForest = 0x04
)

// HashLeaf computes the hash of a Merkle tree leaf with domain separation.
func HashLeaf(payload []byte) Hash {
	return HashConcat([]byte{domainLeaf}, payload)
}

// HashLeafSerial computes the dictionary leaf hash directly from the
// leaf's fields — byte-identical to HashLeaf over the leaf's wire payload
// (length-prefixed serial bytes, then the issuance counter as a uvarint)
// — assembling the preimage in a stack buffer. Leaf hashing dominates ∆
// rebuilds (every RA re-hashes every churned leaf every cycle), so this
// path must not allocate; HashLeaf + an encoder costs two heap objects
// per call.
func HashLeafSerial(serialRaw []byte, num uint64) Hash {
	var buf [1 + binary.MaxVarintLen64 + 40 + binary.MaxVarintLen64]byte
	b := append(buf[:0], domainLeaf)
	b = binary.AppendUvarint(b, uint64(len(serialRaw)))
	b = append(b, serialRaw...)
	b = binary.AppendUvarint(b, num)
	return HashBytes(b)
}

// HashNode computes the hash of an interior Merkle node from its children.
// Like HashLeafSerial it builds the fixed-size preimage on the stack:
// interior hashing is the other half of every rebuild's work.
func HashNode(left, right Hash) Hash {
	var buf [1 + 2*HashSize]byte
	buf[0] = domainNode
	copy(buf[1:], left[:])
	copy(buf[1+HashSize:], right[:])
	return HashBytes(buf[:])
}

// HashBucket commits one bucket of a forest-layout dictionary: its
// serial-range bounds (empty bytes = unbounded on that side), leaf count,
// and bucket tree root. The bounds and count are length-prefixed so the
// encoding is injective, and the domain byte separates bucket commitments
// from leaves, interior nodes, and chain values.
func HashBucket(lo, hi []byte, count uint64, root Hash) Hash {
	buf := make([]byte, 0, 1+2*(binary.MaxVarintLen64+20)+binary.MaxVarintLen64+HashSize)
	buf = append(buf, domainBucket)
	buf = binary.AppendUvarint(buf, uint64(len(lo)))
	buf = append(buf, lo...)
	buf = binary.AppendUvarint(buf, uint64(len(hi)))
	buf = append(buf, hi...)
	buf = binary.AppendUvarint(buf, count)
	buf = append(buf, root[:]...)
	return HashBytes(buf)
}

// HashForestRoot commits a forest-layout dictionary: the bucket count bound
// to the spine tree root. Binding the count here pins the spine's shape
// (the odd-promotion rule depends on it), the way a signed tree size does
// for a flat tree.
func HashForestRoot(numBuckets uint64, spineRoot Hash) Hash {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+HashSize)
	buf = append(buf, domainForest)
	buf = binary.AppendUvarint(buf, numBuckets)
	buf = append(buf, spineRoot[:]...)
	return HashBytes(buf)
}

// Chain is a finite hash chain v, H(v), …, Hᵐ(v) owned by a CA. The CA
// reveals values from the anchor Hᵐ(v) backwards: the statement for period p
// is H^{m−p}(v), so that anyone holding the anchor can verify a statement by
// hashing forward, while only the owner (who knows v) can produce the next
// one (§II, §III).
type Chain struct {
	seed   Hash
	length int
	// values[i] = Hⁱ(seed); values[length] is the anchor.
	values []Hash
}

// NewChain creates a chain of the given length from a random seed read from
// rng (crypto/rand.Reader in production, a deterministic reader in tests).
func NewChain(rng io.Reader, length int) (*Chain, error) {
	if length <= 0 {
		return nil, fmt.Errorf("cryptoutil: chain length %d, must be positive", length)
	}
	var seed Hash
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, fmt.Errorf("read chain seed: %w", err)
	}
	return NewChainFromSeed(seed, length), nil
}

// NewChainFromSeed creates a chain deterministically from a seed. The full
// chain is precomputed; for the chain lengths RITM uses (thousands of
// periods) this costs a few hundred kilobytes and makes Value O(1).
func NewChainFromSeed(seed Hash, length int) *Chain {
	values := make([]Hash, length+1)
	values[0] = seed
	for i := 1; i <= length; i++ {
		values[i] = HashStep(values[i-1])
	}
	return &Chain{seed: seed, length: length, values: values}
}

// Length returns m, the number of hash applications from seed to anchor.
func (c *Chain) Length() int { return c.length }

// Seed returns the chain's secret seed v. It is as sensitive as a signing
// key: anyone holding it can mint freshness statements for every period of
// this chain. The CA-side durable store persists it (in the CA's own trust
// domain, next to the signing key) so that a restarted authority resumes
// the exact chain — and therefore the exact signed root — it crashed with.
func (c *Chain) Seed() Hash { return c.seed }

// Anchor returns Hᵐ(v), the value committed to in a signed root.
func (c *Chain) Anchor() Hash { return c.values[c.length] }

// Value returns the freshness statement for period p, H^{m−p}(v).
// Value(0) is the anchor itself. It fails once p exceeds the chain length,
// at which point the CA must issue a new signed root with a fresh chain
// (Fig 2, refresh step 3).
func (c *Chain) Value(p int) (Hash, error) {
	if p < 0 || p > c.length {
		return Hash{}, fmt.Errorf("%w: period %d of %d", ErrChainTooLong, p, c.length)
	}
	return c.values[c.length-p], nil
}

// VerifyChainValue checks that statement is a valid freshness statement for
// period p against the anchor: H^p(statement) == anchor. It returns
// ErrBadSignature on mismatch so callers can treat forged statements
// uniformly with forged signatures.
func VerifyChainValue(anchor, statement Hash, p int) error {
	if p < 0 {
		return fmt.Errorf("cryptoutil: negative chain period %d", p)
	}
	if !HashIter(statement, p).Equal(anchor) {
		return fmt.Errorf("%w: freshness statement does not chain to anchor", ErrBadSignature)
	}
	return nil
}

// SignatureSize is the size of an Ed25519 signature in bytes.
const SignatureSize = ed25519.SignatureSize

// PublicKeySize is the size of an Ed25519 public key in bytes.
const PublicKeySize = ed25519.PublicKeySize

// Signer holds an Ed25519 signing identity (a CA, or a TLS-sim server).
type Signer struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewSigner generates a fresh Ed25519 key pair from rng. Pass nil to use
// crypto/rand.Reader.
func NewSigner(rng io.Reader) (*Signer, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("generate ed25519 key: %w", err)
	}
	return &Signer{pub: pub, priv: priv}, nil
}

// NewSignerFromSeed derives a signer deterministically from a 32-byte seed,
// used by workload generators to create reproducible CA populations.
func NewSignerFromSeed(seed [32]byte) *Signer {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Signer{pub: priv.Public().(ed25519.PublicKey), priv: priv}
}

// Public returns the public key.
func (s *Signer) Public() ed25519.PublicKey { return s.pub }

// Seed returns the 32-byte Ed25519 private-key seed, from which
// NewSignerFromSeed reconstructs the identity. CA operators persist it
// (mode 0600, CA trust domain) so a restarted CA keeps its identity.
func (s *Signer) Seed() [32]byte {
	var seed [32]byte
	copy(seed[:], s.priv.Seed())
	return seed
}

// Sign returns the Ed25519 signature over msg.
func (s *Signer) Sign(msg []byte) []byte {
	return ed25519.Sign(s.priv, msg)
}

// Verify checks sig over msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key size %d", ErrBadSignature, len(pub))
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// KeyID returns a short identifier for a public key (the truncated hash of
// the key bytes), used to select the right trust anchor for verification.
func KeyID(pub ed25519.PublicKey) Hash {
	return HashBytes(pub)
}
