package cryptoutil

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

func TestHashBytesIsTruncatedSHA256(t *testing.T) {
	data := []byte("ritm")
	full := sha256.Sum256(data)
	got := HashBytes(data)
	if !bytes.Equal(got[:], full[:HashSize]) {
		t.Errorf("HashBytes = %x, want first 20 bytes of %x", got, full)
	}
}

func TestHashConcatMatchesConcatenation(t *testing.T) {
	a, b := []byte("rev"), []byte("ocation")
	want := HashBytes([]byte("revocation"))
	got := HashConcat(a, b)
	if got != want {
		t.Errorf("HashConcat = %v, want %v", got, want)
	}
}

func TestHashFromBytes(t *testing.T) {
	h := HashBytes([]byte("x"))
	got, err := HashFromBytes(h[:])
	if err != nil {
		t.Fatalf("HashFromBytes: %v", err)
	}
	if got != h {
		t.Errorf("round trip mismatch: %v != %v", got, h)
	}
	if _, err := HashFromBytes(h[:10]); !errors.Is(err, ErrBadHashSize) {
		t.Errorf("short input: err = %v, want ErrBadHashSize", err)
	}
}

func TestDomainSeparation(t *testing.T) {
	// Leaf, node, chain, and plain hashes of identical payloads must all
	// differ; otherwise a leaf could be confused with an interior node
	// (the classic Merkle second-preimage attack).
	payload := make([]byte, 2*HashSize)
	var l, r Hash
	copy(l[:], payload[:HashSize])
	copy(r[:], payload[HashSize:])

	hashes := map[string]Hash{
		"plain": HashBytes(payload),
		"leaf":  HashLeaf(payload),
		"node":  HashNode(l, r),
		"chain": HashStep(l),
	}
	seen := make(map[Hash]string, len(hashes))
	for name, h := range hashes {
		if prev, dup := seen[h]; dup {
			t.Errorf("domain collision between %s and %s", prev, name)
		}
		seen[h] = name
	}
}

func TestChainValuesVerify(t *testing.T) {
	chain := NewChainFromSeed(HashBytes([]byte("seed")), 16)
	anchor := chain.Anchor()
	for p := 0; p <= chain.Length(); p++ {
		v, err := chain.Value(p)
		if err != nil {
			t.Fatalf("Value(%d): %v", p, err)
		}
		if err := VerifyChainValue(anchor, v, p); err != nil {
			t.Errorf("VerifyChainValue(p=%d): %v", p, err)
		}
	}
}

func TestChainValueOutOfRange(t *testing.T) {
	chain := NewChainFromSeed(HashBytes([]byte("seed")), 4)
	if _, err := chain.Value(5); !errors.Is(err, ErrChainTooLong) {
		t.Errorf("Value(5) err = %v, want ErrChainTooLong", err)
	}
	if _, err := chain.Value(-1); !errors.Is(err, ErrChainTooLong) {
		t.Errorf("Value(-1) err = %v, want ErrChainTooLong", err)
	}
}

func TestChainWrongPeriodRejected(t *testing.T) {
	chain := NewChainFromSeed(HashBytes([]byte("seed")), 16)
	v3, err := chain.Value(3)
	if err != nil {
		t.Fatal(err)
	}
	// A period-3 value claimed as period 2 must not verify: an attacker
	// cannot replay an older (more hashed) value as fresher.
	if err := VerifyChainValue(chain.Anchor(), v3, 2); err == nil {
		t.Error("stale chain value accepted at a fresher period")
	}
	// Claiming it as period 4 must also fail (cannot fabricate preimages).
	if err := VerifyChainValue(chain.Anchor(), v3, 4); err == nil {
		t.Error("chain value accepted at an older period than issued")
	}
}

func TestNewChainRejectsBadLength(t *testing.T) {
	if _, err := NewChain(nil, 0); err == nil {
		t.Error("NewChain(0) succeeded, want error")
	}
}

func TestNewChainRandomSeed(t *testing.T) {
	c1, err := NewChain(bytes.NewReader(bytes.Repeat([]byte{7}, 32)), 8)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewChainFromSeed(Hash{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, 8)
	if c1.Anchor() != c2.Anchor() {
		t.Error("NewChain with fixed reader differs from NewChainFromSeed")
	}
}

func TestSignVerify(t *testing.T) {
	s, err := NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("revocation issuance")
	sig := s.Sign(msg)
	if err := Verify(s.Public(), msg, sig); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Tampered message must fail.
	if err := Verify(s.Public(), []byte("revocation issuancE"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered message: err = %v, want ErrBadSignature", err)
	}
	// Tampered signature must fail.
	sig[0] ^= 1
	if err := Verify(s.Public(), msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered signature: err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyBadKeySize(t *testing.T) {
	if err := Verify([]byte{1, 2, 3}, []byte("m"), make([]byte, SignatureSize)); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestSignerFromSeedDeterministic(t *testing.T) {
	var seed [32]byte
	seed[0] = 42
	a := NewSignerFromSeed(seed)
	b := NewSignerFromSeed(seed)
	if !a.Public().Equal(b.Public()) {
		t.Error("same seed produced different keys")
	}
	if KeyID(a.Public()) != KeyID(b.Public()) {
		t.Error("same key produced different key IDs")
	}
}

func TestHashIterZero(t *testing.T) {
	h := HashBytes([]byte("v"))
	if HashIter(h, 0) != h {
		t.Error("HashIter(h, 0) != h")
	}
	if HashIter(h, 3) != HashStep(HashStep(HashStep(h))) {
		t.Error("HashIter(h, 3) != H(H(H(h)))")
	}
}

// Property: chain verification succeeds exactly for the issued period, for
// arbitrary seeds and periods (paper §II hash-chain property).
func TestQuickChainSoundness(t *testing.T) {
	f := func(seedBytes [32]byte, pRaw uint8) bool {
		const m = 32
		var seed Hash
		copy(seed[:], seedBytes[:HashSize])
		chain := NewChainFromSeed(seed, m)
		p := int(pRaw) % (m + 1)
		v, err := chain.Value(p)
		if err != nil {
			return false
		}
		return VerifyChainValue(chain.Anchor(), v, p) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an attacker without the seed cannot produce a statement for a
// strictly fresher (smaller) period from an observed one.
func TestQuickChainForgeryResists(t *testing.T) {
	f := func(seedBytes [32]byte, guess [HashSize]byte) bool {
		var seed Hash
		copy(seed[:], seedBytes[:HashSize])
		chain := NewChainFromSeed(seed, 8)
		real, _ := chain.Value(8) // the seed end of the chain
		if Hash(guess) == real {
			return true // astronomically unlikely; not a forgery
		}
		// The guess must not verify one step fresher than the anchor period
		// unless it is the genuine preimage.
		return VerifyChainValue(chain.Anchor(), Hash(guess), 8) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHashStep(b *testing.B) {
	h := HashBytes([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h = HashStep(h)
	}
	_ = h
}

func BenchmarkSign(b *testing.B) {
	s, err := NewSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	s, err := NewSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 100)
	sig := s.Sign(msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(s.Public(), msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
