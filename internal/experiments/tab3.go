package experiments

import (
	"fmt"
	"time"

	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/ra"
	"ritm/internal/serial"
	"ritm/internal/tlssim"
	"ritm/internal/workload"
)

// tab3Env is the shared fixture for the processing-time experiments: an
// RA replica of the largest-CRL dictionary, a 3-certificate chain, and the
// handshake bytes DPI operates on.
type tab3Env struct {
	replica     *dictionary.Replica
	pub         []byte
	present     []serial.Number // revoked serials (presence proofs)
	absent      []serial.Number // unrevoked serials (absence proofs)
	recordHdr   []byte
	chainBody   []byte // Certificate handshake body with a 3-cert chain
	baseEntries int
}

// Tab3 reproduces Table III: per-operation processing time in µs (max /
// min / avg over 500 runs) for the RA-side operations (TLS detection,
// certificate parsing, proof construction) and the client-side operations
// (proof validation, signature + freshness validation), against the
// largest-CRL dictionary.
func Tab3(quick bool) (*Table, error) {
	env, err := buildTab3Env(quick)
	if err != nil {
		return nil, err
	}
	iters := 500
	if quick {
		iters = 50
	}
	t := &Table{
		ID:      "tab3",
		Title:   "Processing time in µs, 500 runs (Tab III)",
		Columns: []string{"entity", "operation", "max", "min", "avg"},
	}
	for _, row := range tab3Rows(env, iters) {
		t.AddRow(row.entity, row.op, micros(row.t.Max), micros(row.t.Min), micros(row.t.Avg))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("dictionary size: %d revocations", env.replica.Count()))
	return t, nil
}

type tab3Row struct {
	entity, op string
	t          timing
}

// subjectStatus pairs a status with the serial it is about, for the
// client-side validation measurements.
type subjectStatus struct {
	sn     serial.Number
	status *dictionary.Status
}

// tab3Rows measures the five Table III operations.
func tab3Rows(env *tab3Env, iters int) []tab3Row {
	j := 0
	nextAbsent := func() serial.Number {
		s := env.absent[j%len(env.absent)]
		j++
		return s
	}

	detect := measure(iters, 512, func() {
		ra.DetectRecord(env.recordHdr)
	})
	parse := measure(iters, 8, func() {
		if _, err := ra.ParseCertificates(env.chainBody); err != nil {
			panic(err)
		}
	})
	prove := measure(iters, 4, func() {
		if _, err := env.replica.Prove(nextAbsent()); err != nil {
			panic(err)
		}
	})

	// Client-side: pre-build a mixed pool of presence and absence statuses.
	now := time.Now().Unix()
	statuses := make([]subjectStatus, 64)
	for k := range statuses {
		sn := env.present[k%len(env.present)]
		if k%2 == 0 {
			sn = nextAbsent()
		}
		st, err := env.replica.Prove(sn)
		if err != nil {
			panic(err)
		}
		statuses[k] = subjectStatus{sn: sn, status: st}
	}
	k := 0
	validate := measure(iters, 4, func() {
		ss := statuses[k%len(statuses)]
		k++
		if _, err := ss.status.Proof.Verify(ss.sn, ss.status.Root.Root, ss.status.Root.N); err != nil {
			panic(err)
		}
	})
	m := 0
	sigFresh := measure(iters, 4, func() {
		ss := statuses[m%len(statuses)]
		m++
		if err := ss.status.Root.VerifySignature(env.pub); err != nil {
			panic(err)
		}
		p := ss.status.Root.Period(now)
		if err := cryptoutil.VerifyChainValue(ss.status.Root.Anchor, ss.status.Freshness, p); err != nil {
			panic(err)
		}
	})

	return []tab3Row{
		{"RA", "TLS detection (DPI)", detect},
		{"RA", "Certificates parsing (DPI)", parse},
		{"RA", "Proof construction", prove},
		{"Client", "Proof validation", validate},
		{"Client", "Sig. and freshness valid.", sigFresh},
	}
}

// DictOps reproduces the §VII-D dictionary-update measurements: a CA
// inserting a 1,000-revocation batch (tree rebuild + chain rotation +
// signing) and an RA replaying it (rebuild + signature + root check). The
// paper does not state the base dictionary size for its 2.93 ms figure;
// both a small base (matching the paper's magnitude) and the largest-CRL
// base (the worst case for our O(n)-rebuild tree) are reported.
func DictOps(quick bool) (*Table, error) {
	bases := []int{dictOpsSmallBase, workload.LargestCRLEntries}
	iters := 10
	if quick {
		// Keep an order of magnitude between the bases so the O(n)-rebuild
		// ordering is observable even under noisy timing.
		bases = []int{dictOpsSmallBase, 100_000}
		iters = 3
	}
	t := &Table{
		ID:      "dictops",
		Title:   "Dictionary batch operations, 1,000 revocations (§VII-D), ms",
		Columns: []string{"entity", "operation", "base n", "max ms", "min ms", "avg ms"},
		Notes: []string{
			"insert cost is dominated by the full O(n) rebuild at large n; the paper's",
			"2.93 ms corresponds to a small base dictionary",
		},
	}
	for _, base := range bases {
		if err := dictOpsAt(t, base, iters); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// dictOpsSmallBase is the average-CRL-sized base dictionary (§VII-A).
const dictOpsSmallBase = 5_440

func dictOpsAt(t *Table, entries, iters int) error {
	authority, gen, err := buildAuthority(entries)
	if err != nil {
		return err
	}
	replica := dictionary.NewReplica(authority.CA(), authority.PublicKey())
	seed, err := authority.LogSuffix(0, authority.Count())
	if err != nil {
		return err
	}
	if err := replica.Update(&dictionary.IssuanceMessage{Serials: seed, Root: authority.SignedRoot()}); err != nil {
		return err
	}

	now := time.Now().Unix()
	insertT := timing{Min: time.Duration(1<<63 - 1)}
	updateT := timing{Min: time.Duration(1<<63 - 1)}
	var insertSum, updateSum time.Duration
	for i := 0; i < iters; i++ {
		batch := gen.NextN(1000)
		start := time.Now()
		msg, err := authority.Insert(batch, now)
		if err != nil {
			return err
		}
		d := time.Since(start)
		insertSum += d
		insertT.Max = max(insertT.Max, d)
		insertT.Min = min(insertT.Min, d)

		start = time.Now()
		if err := replica.Update(msg); err != nil {
			return err
		}
		d = time.Since(start)
		updateSum += d
		updateT.Max = max(updateT.Max, d)
		updateT.Min = min(updateT.Min, d)
	}
	insertT.Avg = insertSum / time.Duration(iters)
	updateT.Avg = updateSum / time.Duration(iters)

	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }
	t.AddRow("CA", "insert 1,000 (rebuild+chain+sign)", entries, ms(insertT.Max), ms(insertT.Min), ms(insertT.Avg))
	t.AddRow("RA", "update 1,000 (replay+verify)", entries, ms(updateT.Max), ms(updateT.Min), ms(updateT.Avg))
	return nil
}

// Throughput derives the §VII-D headline rates from the Table III
// measurements: non-TLS packets/s an RA can classify, RITM-supported
// handshakes/s it can serve, and revocation statuses/s a client can
// validate.
func Throughput(quick bool) (*Table, error) {
	env, err := buildTab3Env(quick)
	if err != nil {
		return nil, err
	}
	iters := 200
	if quick {
		iters = 30
	}
	rows := tab3Rows(env, iters)
	byOp := map[string]timing{}
	for _, r := range rows {
		byOp[r.op] = r.t
	}
	perSecond := func(d time.Duration) string {
		if d <= 0 {
			return "∞"
		}
		return fmt.Sprintf("%.0f", float64(time.Second)/float64(d))
	}
	detect := byOp["TLS detection (DPI)"].Avg
	handshake := detect + byOp["Certificates parsing (DPI)"].Avg + byOp["Proof construction"].Avg
	validate := byOp["Proof validation"].Avg + byOp["Sig. and freshness valid."].Avg

	t := &Table{
		ID:      "throughput",
		Title:   "Derived throughput (§VII-D)",
		Columns: []string{"entity", "metric", "ops/s"},
	}
	t.AddRow("RA", "non-TLS packets classified", perSecond(detect))
	t.AddRow("RA", "RITM-supported handshakes", perSecond(handshake))
	t.AddRow("Client", "revocation-status validations", perSecond(validate))
	return t, nil
}

// buildAuthority creates a dictionary authority preloaded with entries
// revocations, returning it with its serial generator for further batches.
func buildAuthority(entries int) (*dictionary.Authority, *serial.Generator, error) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, nil, err
	}
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "bench-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, time.Now().Unix())
	if err != nil {
		return nil, nil, err
	}
	gen := serial.NewGenerator(seriesSeed, nil)
	if entries > 0 {
		if _, err := auth.Insert(gen.NextN(entries), time.Now().Unix()); err != nil {
			return nil, nil, err
		}
	}
	return auth, gen, nil
}

// buildTab3Env constructs the measurement fixture.
func buildTab3Env(quick bool) (*tab3Env, error) {
	entries := workload.LargestCRLEntries
	if quick {
		entries = 10_000
	}
	auth, gen, err := buildAuthority(entries)
	if err != nil {
		return nil, err
	}
	replica := dictionary.NewReplica(auth.CA(), auth.PublicKey())
	log, err := auth.LogSuffix(0, auth.Count())
	if err != nil {
		return nil, err
	}
	if err := replica.Update(&dictionary.IssuanceMessage{Serials: log, Root: auth.SignedRoot()}); err != nil {
		return nil, err
	}

	chainBody, err := threeCertChainBody()
	if err != nil {
		return nil, err
	}

	present := log[:min(len(log), 256)]
	absent := make([]serial.Number, 256)
	for i := range absent {
		absent[i] = gen.Next() // same generator: unique vs every revoked serial
	}
	return &tab3Env{
		replica:     replica,
		pub:         auth.PublicKey(),
		present:     present,
		absent:      absent,
		recordHdr:   []byte{22, 3, 3, 0x01, 0x40}, // a 320-byte handshake record
		chainBody:   chainBody,
		baseEntries: entries,
	}, nil
}

// threeCertChainBody builds root → intermediate → leaf (the most common
// chain length, §VII-D) and returns the Certificate handshake body an RA
// parses in flight.
func threeCertChainBody() ([]byte, error) {
	rootKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	now := time.Now().Unix()
	rootCert, err := cert.SelfSigned("bench-root", rootKey, now-1, now+1<<20, 10)
	if err != nil {
		return nil, err
	}
	interKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	interCert, err := cert.Issue("bench-root", rootKey, cert.Template{
		SerialNumber: serial.FromUint64(2),
		Subject:      "bench-intermediate",
		NotBefore:    now - 1,
		NotAfter:     now + 1<<20,
		PublicKey:    interKey.Public(),
		IsCA:         true,
	})
	if err != nil {
		return nil, err
	}
	leafKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	leafCert, err := cert.Issue("bench-intermediate", interKey, cert.Template{
		SerialNumber: serial.FromUint64(3),
		Subject:      "example.com",
		NotBefore:    now - 1,
		NotAfter:     now + 1<<20,
		PublicKey:    leafKey.Public(),
	})
	if err != nil {
		return nil, err
	}
	chain := cert.Chain{leafCert, interCert, rootCert}
	return (&tlssim.CertificateMsg{Chain: chain}).Marshal().Body, nil
}
