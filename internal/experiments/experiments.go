// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII). Each experiment is a named runner producing a Table —
// the same rows/series the paper reports — backed by the real system
// implementations (dictionaries, CDN, RA data path) and the synthetic
// datasets of internal/workload.
//
// Runners are registered in All; the ritm-bench command and the root
// bench_test.go drive them by identifier:
//
//	fig4        revocation time series with the Heartbleed peak
//	fig5        CDF of dissemination download times (TTL=0)
//	fig6        monthly CA bills for four ∆ values
//	fig7        per-∆ communication overhead, Heartbleed week
//	tab1        dissemination message sequence
//	tab2        average cost vs ∆ × clients-per-RA
//	tab3        per-operation processing time
//	tab4        scheme comparison
//	storage     dictionary storage overhead (§VII-D)
//	dictops     dictionary insert/update batch times (§VII-D)
//	throughput  derived RA/client throughput (§VII-D)
//	latency     TLS handshake overhead through an RA (§VII-D)
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's rendered result.
type Table struct {
	// ID is the experiment identifier (e.g. "fig5").
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes carry caveats (substitutions, measurement conditions).
	Notes []string
}

// AddRow appends one row, formatting every cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v != 0 && (v < 0.01 || v >= 1e15):
		return fmt.Sprintf("%.3e", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, wd := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", wd))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSV writes the table as comma-separated values (quotes cells containing
// commas).
func (t *Table) CSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Runner produces one experiment's table. Implementations honour quick:
// a reduced-parameter run for tests and smoke checks.
type Runner func(quick bool) (*Table, error)

// All returns the experiment registry, keyed by identifier.
func All() map[string]Runner {
	return map[string]Runner{
		"fig4":       Fig4,
		"fig5":       Fig5,
		"fig6":       Fig6,
		"fig7":       Fig7,
		"tab1":       Tab1,
		"tab2":       Tab2,
		"tab3":       Tab3,
		"tab4":       Tab4,
		"storage":    Storage,
		"dictops":    DictOps,
		"throughput": Throughput,
		"latency":    Latency,
	}
}

// IDs lists the registered experiment identifiers, sorted.
func IDs() []string {
	all := All()
	out := make([]string, 0, len(all))
	for id := range all {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by identifier.
func Run(id string, quick bool) (*Table, error) {
	r, ok := All()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(quick)
}

// timing summarizes repeated measurements, Tab III style.
type timing struct {
	Max, Min, Avg time.Duration
}

// measure runs fn iters times and reports max/min/avg wall time per call.
// batch > 1 amortizes the clock over that many calls per sample, for
// operations near the timer's resolution.
func measure(iters, batch int, fn func()) timing {
	if batch < 1 {
		batch = 1
	}
	var sum time.Duration
	t := timing{Min: time.Duration(1<<63 - 1)}
	for i := 0; i < iters; i++ {
		start := time.Now()
		for j := 0; j < batch; j++ {
			fn()
		}
		d := time.Since(start) / time.Duration(batch)
		sum += d
		if d > t.Max {
			t.Max = d
		}
		if d < t.Min {
			t.Min = d
		}
	}
	t.Avg = sum / time.Duration(iters)
	return t
}

// micros renders a duration in microseconds, as Tab III. Three decimals
// keep nanosecond-scale operations (Go's DPI check is ~2 ns, vs the
// paper's 2.93 µs in Python) from rounding to zero.
func micros(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e3)
}

// kb renders a byte count in KB with one decimal.
func kb(bytes float64) string {
	return fmt.Sprintf("%.1f", bytes/1024)
}

// usd renders dollars in thousands, as Fig 6 / Tab II.
func usd(v float64) string {
	return fmt.Sprintf("%.3f", v/1000)
}
