package experiments

import (
	"math"
	"time"

	"ritm/internal/workload"
)

// Wire sizes of the dissemination messages, measured from the production
// encodings (internal/dictionary) with a typical CA identifier.
const (
	// freshnessWireBytes is an encoded FreshnessStatement: CA id + 20-byte
	// chain value.
	freshnessWireBytes = 29
	// rootWireBytes is an encoded SignedRoot: CA id, root, n, anchor, time,
	// chain length, ∆, Ed25519 signature.
	rootWireBytes = 133
	// revWireBytes is one revocation inside an issuance message: the
	// length-prefixed serial at the dataset's mean serial size (§VII-A).
	revWireBytes = 9.3
)

// Fig7 reproduces Figure 7: how much data a single RA downloads every ∆
// during the week of the Heartbleed disclosure (14–20 April 2014), with
// all 254 dictionaries refreshed each ∆, for five values of ∆.
func Fig7(quick bool) (*Table, error) {
	series := workload.NewSeries(seriesSeed)
	from, to := workload.HeartbleedWeek()
	hourly, err := series.Bins(from, to, 1)
	if err != nil {
		return nil, err
	}

	deltas := []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute, time.Hour, 24 * time.Hour}
	if quick {
		deltas = []time.Duration{time.Minute, 24 * time.Hour}
	}
	t := &Table{
		ID:      "fig7",
		Title:   "Per-∆ communication overhead of one RA, Heartbleed week (Fig 7)",
		Columns: []string{"∆", "pulls/week", "min KB/∆", "avg KB/∆", "max KB/∆"},
		Notes: []string{
			"254 dictionaries; every pull carries 254 freshness statements (≈7.2 KB floor)",
			"revocation payload at the dataset's mean wire size (9.3 B/entry)",
		},
	}
	for _, d := range deltas {
		minB, avgB, maxB := pullBytes(hourly, d)
		t.AddRow(
			d.String(),
			int(to.Sub(from)/d),
			kb(minB), kb(avgB), kb(maxB),
		)
	}
	return t, nil
}

// pullBytes computes the min/avg/max bytes one pull carries for the given
// ∆ over the week's hourly revocation counts. A pull carries one freshness
// statement per dictionary, the new revocations of its window, and a fresh
// signed root for each dictionary that issued in the window (estimated by
// spreading revocations over the 254 dictionaries).
func pullBytes(hourly []int, delta time.Duration) (minB, avgB, maxB float64) {
	pullsPerHour := float64(time.Hour) / float64(delta)
	floor := float64(workload.NumCRLs) * freshnessWireBytes

	bytesFor := func(revs float64) float64 {
		// Dictionaries active in the window: with revs spread over NumCRLs
		// dictionaries, the expected number touched is the classic
		// occupancy estimate n(1 − e^{−revs/n}).
		n := float64(workload.NumCRLs)
		active := n * (1 - math.Exp(-revs/n))
		return floor + revs*revWireBytes + active*rootWireBytes
	}

	minB = math.Inf(1)
	var sum float64
	var count int
	if pullsPerHour >= 1 {
		// Sub-hour windows: assume revocations spread uniformly inside the
		// hour; each hour contributes one representative window.
		for _, h := range hourly {
			b := bytesFor(float64(h) / pullsPerHour)
			sum += b * pullsPerHour
			count += int(pullsPerHour)
			minB = math.Min(minB, b)
			maxB = math.Max(maxB, b)
		}
	} else {
		// Multi-hour windows: aggregate whole hours per pull.
		hoursPerPull := int(float64(delta) / float64(time.Hour))
		for i := 0; i+hoursPerPull <= len(hourly); i += hoursPerPull {
			revs := 0
			for _, h := range hourly[i : i+hoursPerPull] {
				revs += h
			}
			b := bytesFor(float64(revs))
			sum += b
			count++
			minB = math.Min(minB, b)
			maxB = math.Max(maxB, b)
		}
	}
	if count == 0 {
		return 0, 0, 0
	}
	return minB, sum / float64(count), maxB
}
