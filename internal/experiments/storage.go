package experiments

import (
	"fmt"
	"runtime"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/workload"
)

// Storage reproduces the §VII-D storage-overhead measurement: all 254
// dictionaries are built from the full corpus (1,381,992 revocations,
// 3-byte serials per the paper's convention) and the serialized and
// resident sizes are reported, plus the paper's 10-million-revocation
// scaling point (exact serialized arithmetic, extrapolated resident size).
func Storage(quick bool) (*Table, error) {
	corpus := workload.NewCorpus(seriesSeed)
	scale := 1
	if quick {
		scale = 50
	}

	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	now := time.Now().Unix()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	total := 0
	serialized := 0
	footprint := 0
	dicts := make([]*dictionary.Authority, 0, corpus.Len())
	for i := 0; i < corpus.Len(); i++ {
		entries := corpus.Size(i) / scale
		if entries == 0 {
			entries = 1
		}
		auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
			CA:     dictionary.CAID(fmt.Sprintf("ca-%03d", i)),
			Signer: signer,
			Delta:  time.Hour,
			// A short chain keeps the per-dictionary freshness chain from
			// dominating the measurement (it is not revocation storage).
			ChainLength: 16,
		}, now)
		if err != nil {
			return nil, err
		}
		gen := serial.NewGenerator(uint64(i+1), serial.SizeDistribution{{Bytes: 3, Weight: 1}})
		if _, err := auth.Insert(gen.NextN(entries), now); err != nil {
			return nil, err
		}
		total += entries
		serialized += auth.SerializedSize()
		footprint += auth.MemoryFootprint()
		dicts = append(dicts, auth)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	residentMB := float64(after.HeapAlloc-before.HeapAlloc) / 1e6
	runtime.KeepAlive(dicts)

	t := &Table{
		ID:      "storage",
		Title:   "Dictionary storage overhead (§VII-D)",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"3-byte serials per the paper's convention (§VII-A)",
			"paper: ≈4 MB serialized, 36 MB resident for the full dataset",
		},
	}
	t.AddRow("dictionaries", len(dicts))
	t.AddRow("revocations", total)
	t.AddRow("serialized MB (issuance logs)", fmt.Sprintf("%.1f", float64(serialized)/1e6))
	t.AddRow("tree footprint MB (analytic)", fmt.Sprintf("%.1f", float64(footprint)/1e6))
	t.AddRow("heap growth MB (measured)", fmt.Sprintf("%.1f", residentMB))

	// 10 M scaling point: serialized is exact (1-byte length prefix plus
	// a 3-byte serial per entry); the footprint extrapolates linearly from
	// the measured per-revocation cost.
	perRevFootprint := float64(footprint) / float64(total)
	t.AddRow("10M revocations: serialized MB", fmt.Sprintf("%.1f", 10e6*4/1e6))
	t.AddRow("10M revocations: footprint MB (extrapolated)",
		fmt.Sprintf("%.1f", 10e6*perRevFootprint/1e6))
	if quick {
		t.Notes = append(t.Notes, fmt.Sprintf("quick mode: corpus scaled down by %d", scale))
	}
	return t, nil
}
