package experiments

import "ritm/internal/baseline"

// Tab4 reproduces Table IV: the comparison of revocation mechanisms in
// terms of storage, connections, and violated properties, instantiated at
// the paper's magnitudes (n_rev from the dataset, populations from the
// cost evaluation).
func Tab4(quick bool) (*Table, error) {
	_ = quick // the table is analytic; there is nothing to shrink
	p := baseline.PaperParams()
	t := &Table{
		ID:    "tab4",
		Title: "Comparison of revocation mechanisms (Tab IV)",
		Columns: []string{
			"method", "storage (global)", "storage (client)",
			"conn (global)", "conn (client)", "violated",
		},
		Notes: []string{
			"I: near-instant revocation  P: privacy  E: efficiency/scalability",
			"T: transparency/accountability  S: server changes not required",
			"entries are counts at the paper's magnitudes; formulas tested symbolically",
		},
	}
	for _, s := range baseline.Schemes() {
		t.AddRow(
			s.Name,
			s.StorageGlobal(p),
			s.StorageClient(p),
			s.ConnGlobal(p),
			s.ConnClient(p),
			s.ViolatedLetters(),
		)
	}
	return t, nil
}
