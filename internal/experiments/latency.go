package experiments

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/ra"
	"ritm/internal/ritmclient"
	"ritm/internal/tlssim"
)

// Latency reproduces the §VII-D connection-establishment comparison: the
// full TLS-sim handshake time with and without an on-path RA injecting a
// revocation status, over loopback TCP. The paper's reference point is a
// ≈30 ms optimized TLS handshake over a real network; the added RITM cost
// must be a vanishing fraction of that.
func Latency(quick bool) (*Table, error) {
	iters := 50
	if quick {
		iters = 8
	}

	env, err := newLatencyEnv()
	if err != nil {
		return nil, err
	}
	defer env.Close()

	direct, err := env.measureHandshakes(env.serverAddr, false, iters)
	if err != nil {
		return nil, err
	}
	viaRA, err := env.measureHandshakes(env.proxyAddr, true, iters)
	if err != nil {
		return nil, err
	}

	added := viaRA - direct
	if added < 0 {
		added = 0
	}
	const referenceHandshake = 30 * time.Millisecond // §VII-D citation

	// The paper's <1 % claim counts RITM *computation* (Tab III: DPI, proof
	// construction, proof and signature validation); the proxy hop's extra
	// forwarding is a deployment artifact the paper's in-path middlebox
	// (which rewrites packets rather than terminating TCP) does not pay.
	compute := computationOverhead(quick)

	t := &Table{
		ID:      "latency",
		Title:   "Handshake latency with and without an RA (§VII-D), loopback TCP",
		Columns: []string{"path", "median handshake"},
		Notes: []string{
			"paper: an optimized wide-area TLS handshake takes ≈30 ms; RITM computation must add <1%",
			"the end-to-end row includes the extra TCP hop through the proxy, which a",
			"packet-rewriting middlebox would not add",
		},
	}
	t.AddRow("client → server (no RA)", fmt.Sprintf("%.3f ms", direct.Seconds()*1000))
	t.AddRow("client → RA → server (status verified)", fmt.Sprintf("%.3f ms", viaRA.Seconds()*1000))
	t.AddRow("added by RITM end-to-end", fmt.Sprintf("%.3f ms", added.Seconds()*1000))
	t.AddRow("added vs 30 ms reference", fmt.Sprintf("%.2f%%",
		100*added.Seconds()/referenceHandshake.Seconds()))
	t.AddRow("RITM computation only (Tab III sum)", fmt.Sprintf("%.3f ms", compute.Seconds()*1000))
	t.AddRow("computation vs 30 ms reference", fmt.Sprintf("%.2f%%",
		100*compute.Seconds()/referenceHandshake.Seconds()))
	return t, nil
}

// computationOverhead sums the per-handshake RITM work from the Table III
// measurements: RA-side DPI + parsing + proof construction, client-side
// proof + signature/freshness validation.
func computationOverhead(quick bool) time.Duration {
	env, err := buildTab3Env(true) // the small fixture suffices here
	if err != nil {
		return 0
	}
	iters := 100
	if quick {
		iters = 20
	}
	var total time.Duration
	for _, row := range tab3Rows(env, iters) {
		total += row.t.Avg
	}
	return total
}

// latencyEnv is a full live deployment on loopback.
type latencyEnv struct {
	pool       *cert.Pool
	serverAddr string
	proxyAddr  string

	ln    net.Listener
	proxy *ra.Proxy
	wg    sync.WaitGroup
}

func newLatencyEnv() (*latencyEnv, error) {
	dp := cdn.NewDistributionPoint(nil)
	authority, err := ca.New(ca.Config{ID: "CA1", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		return nil, err
	}
	if err := dp.RegisterCA("CA1", authority.PublicKey()); err != nil {
		return nil, err
	}
	if err := authority.PublishRoot(); err != nil {
		return nil, err
	}
	agent, err := ra.New(ra.Config{
		Roots:  []*cert.Certificate{authority.RootCertificate()},
		Origin: cdn.NewEdgeServer(dp, 0, nil),
		Delta:  10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if err := agent.SyncOnce(); err != nil {
		return nil, err
	}

	serverKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	leaf, err := authority.IssueServerCertificate("example.com", serverKey.Public())
	if err != nil {
		return nil, err
	}
	pool, err := cert.NewPool(authority.RootCertificate())
	if err != nil {
		return nil, err
	}

	env := &latencyEnv{pool: pool}
	serverCfg := &tlssim.Config{Chain: cert.Chain{leaf}, Key: serverKey}
	env.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	env.wg.Add(1)
	go func() {
		defer env.wg.Done()
		for {
			raw, err := env.ln.Accept()
			if err != nil {
				return
			}
			env.wg.Add(1)
			go func() {
				defer env.wg.Done()
				conn := tlssim.Server(raw, serverCfg)
				defer conn.Close()
				buf := make([]byte, 256)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	env.serverAddr = env.ln.Addr().String()
	env.proxy, err = agent.NewProxy("127.0.0.1:0", env.serverAddr)
	if err != nil {
		env.ln.Close()
		return nil, err
	}
	env.proxyAddr = env.proxy.Addr().String()
	return env, nil
}

func (e *latencyEnv) Close() {
	e.proxy.Close()
	e.ln.Close()
	e.wg.Wait()
}

// measureHandshakes returns the median time to complete a full handshake
// (and verify the status, when expectStatus is set) against addr.
func (e *latencyEnv) measureHandshakes(addr string, expectStatus bool, iters int) (time.Duration, error) {
	samples := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if expectStatus {
			conn, err := ritmclient.Dial("tcp", addr, "example.com", &ritmclient.Config{
				Pool:          e.pool,
				Delta:         10 * time.Second,
				RequireStatus: true,
			})
			if err != nil {
				return 0, fmt.Errorf("RITM handshake %d: %w", i, err)
			}
			samples = append(samples, time.Since(start))
			conn.Close()
		} else {
			conn, err := tlssim.Dial("tcp", addr, &tlssim.Config{
				Pool:       e.pool,
				ServerName: "example.com",
			})
			if err != nil {
				return 0, fmt.Errorf("direct handshake %d: %w", i, err)
			}
			samples = append(samples, time.Since(start))
			conn.Close()
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], nil
}
