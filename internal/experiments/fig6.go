package experiments

import (
	"fmt"
	"time"

	"ritm/internal/costmodel"
	"ritm/internal/workload"
)

// fig6Deltas are the four ∆ panels of Figure 6.
var fig6Deltas = []time.Duration{10 * time.Second, time.Minute, time.Hour, 24 * time.Hour}

// Fig6 reproduces Figure 6: the monthly bill the largest-CRL CA pays a
// CloudFront-priced CDN for revocation dissemination, per billing cycle
// from January 2014, at 10 clients per RA, for four values of ∆.
func Fig6(quick bool) (*Table, error) {
	sim := &costmodel.Simulation{
		Cities:       workload.NewCities(seriesSeed),
		Series:       workload.NewSeries(seriesSeed),
		ClientsPerRA: 10,
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Monthly CA bill (thousands of USD) by billing cycle, 10 clients/RA (Fig 6)",
		Columns: []string{"cycle", "month", "∆=10s", "∆=1m", "∆=1h", "∆=1d"},
		Notes: []string{
			"CloudFront 2015 tiered regional prices; RA population from city model (§VII-C)",
			"revocations priced at 3 B/entry per the paper's serial convention (§VII-A)",
		},
	}
	perDelta := make([][]*costmodel.Bill, len(fig6Deltas))
	for i, d := range fig6Deltas {
		bills, err := sim.Run(costmodel.Traffic{Delta: d})
		if err != nil {
			return nil, err
		}
		perDelta[i] = bills
	}
	cycles := len(perDelta[0])
	step := 1
	if quick {
		step = 6
	}
	for c := 0; c < cycles; c += step {
		row := []any{
			perDelta[0][c].Cycle,
			fmt.Sprintf("%04d-%02d", perDelta[0][c].Year, perDelta[0][c].Month),
		}
		for i := range fig6Deltas {
			row = append(row, usd(perDelta[i][c].TotalUSD))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Tab2 reproduces Table II: the average monthly cost (thousands of USD) as
// a function of ∆ and the number of clients per RA.
func Tab2(quick bool) (*Table, error) {
	clients := []int{30, 250, 1000}
	sim := &costmodel.Simulation{
		Cities: workload.NewCities(seriesSeed),
		Series: workload.NewSeries(seriesSeed),
	}
	t := &Table{
		ID:      "tab2",
		Title:   "Average monthly cost (thousands of USD) vs ∆ and clients per RA (Tab II)",
		Columns: []string{"clients/RA", "∆=10s", "∆=1m", "∆=1h", "∆=1d"},
	}
	for _, c := range clients {
		sim.ClientsPerRA = c
		row := []any{c}
		for _, d := range fig6Deltas {
			avg, err := sim.AverageBill(costmodel.Traffic{Delta: d})
			if err != nil {
				return nil, err
			}
			row = append(row, usd(avg))
		}
		t.AddRow(row...)
	}
	return t, nil
}
