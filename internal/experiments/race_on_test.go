//go:build race

package experiments

// raceDetectorEnabled lets timing-threshold assertions relax when the race
// detector's instrumentation (5–10× slowdown, non-uniform across code
// paths) makes wall-clock bounds meaningless.
const raceDetectorEnabled = true
