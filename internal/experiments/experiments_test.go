package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// runQuick executes one experiment in quick mode and sanity-checks the
// table shape.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	tbl, err := Run(id, true)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tbl.ID == "" || tbl.Title == "" {
		t.Errorf("%s: missing identity", id)
	}
	if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Errorf("%s row %d: %d cells for %d columns", id, i, len(row), len(tbl.Columns))
		}
	}
	return tbl
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"dictops", "fig4", "fig5", "fig6", "fig7", "latency",
		"storage", "tab1", "tab2", "tab3", "tab4", "throughput",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, err := Run("nope", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"n1"},
	}
	tbl.AddRow("v", 12)
	tbl.AddRow("with,comma", 3.5)

	var text bytes.Buffer
	if err := tbl.Render(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"== x: demo ==", "a", "b", "v", "12", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	var csv bytes.Buffer
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `"with,comma"`) {
		t.Errorf("CSV quoting failed:\n%s", csv.String())
	}
}

func TestFig4Quick(t *testing.T) {
	tbl := runQuick(t, "fig4")
	// The zoom section exists and the weekly section has numeric rows.
	foundZoom := false
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "— zoom") {
			foundZoom = true
		}
	}
	if !foundZoom {
		t.Error("fig4 missing Heartbleed zoom")
	}
}

func TestFig5Quick(t *testing.T) {
	tbl := runQuick(t, "fig5")
	// Larger messages have strictly larger sizes; p50 ordering follows.
	if len(tbl.Rows) < 2 {
		t.Fatal("fig5 needs at least two sizes")
	}
	kb0, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	kb1, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	if kb1 <= kb0 {
		t.Errorf("message sizes not increasing: %f then %f KB", kb0, kb1)
	}
}

func TestFig6Quick(t *testing.T) {
	tbl := runQuick(t, "fig6")
	// Bills decrease left to right across the ∆ columns for every cycle.
	for _, row := range tbl.Rows {
		vals := make([]float64, 0, 4)
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("non-numeric bill %q", cell)
			}
			vals = append(vals, v)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] >= vals[i-1] {
				t.Errorf("row %v: bill does not decrease with ∆", row)
			}
		}
	}
}

func TestFig7Quick(t *testing.T) {
	tbl := runQuick(t, "fig7")
	// The ∆=1d row's max must dwarf the ∆=1m row's (accumulated payload).
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick fig7 rows = %d", len(tbl.Rows))
	}
	minuteMax, _ := strconv.ParseFloat(tbl.Rows[0][4], 64)
	dayMax, _ := strconv.ParseFloat(tbl.Rows[1][4], 64)
	if dayMax < 5*minuteMax {
		t.Errorf("∆=1d max (%f KB) not ≫ ∆=1m max (%f KB)", dayMax, minuteMax)
	}
}

func TestTab1Sequence(t *testing.T) {
	tbl := runQuick(t, "tab1")
	if len(tbl.Rows) != 4 {
		t.Fatalf("tab1 rows = %d, want 4", len(tbl.Rows))
	}
	// Freshness statements (rows 2 and 3) are much smaller than issuance
	// messages (rows 1 and 4).
	issuance, _ := strconv.Atoi(tbl.Rows[0][3])
	fresh, _ := strconv.Atoi(tbl.Rows[1][3])
	if fresh*3 > issuance {
		t.Errorf("freshness (%d B) not ≪ issuance (%d B)", fresh, issuance)
	}
}

func TestTab2Quick(t *testing.T) {
	tbl := runQuick(t, "tab2")
	if len(tbl.Rows) != 3 {
		t.Fatalf("tab2 rows = %d, want 3", len(tbl.Rows))
	}
	// More clients per RA → cheaper, for every ∆ column.
	for col := 1; col <= 4; col++ {
		prev := -1.0
		for i := len(tbl.Rows) - 1; i >= 0; i-- { // bottom row = most clients
			v, _ := strconv.ParseFloat(tbl.Rows[i][col], 64)
			if prev >= 0 && v <= prev {
				t.Errorf("column %d not increasing as clients/RA decreases", col)
			}
			prev = v
		}
	}
}

func TestTab3Quick(t *testing.T) {
	tbl := runQuick(t, "tab3")
	if len(tbl.Rows) != 5 {
		t.Fatalf("tab3 rows = %d, want 5", len(tbl.Rows))
	}
	avg := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("non-numeric avg %q", row[4])
		}
		if v <= 0 {
			t.Errorf("%s avg = %f µs", row[1], v)
		}
		avg[row[1]] = v
	}
	// Tab III ordering: detection ≪ parsing < proof construction (RA side).
	if !(avg["TLS detection (DPI)"] < avg["Certificates parsing (DPI)"]) {
		t.Error("detection not cheaper than certificate parsing")
	}
	if !(avg["Certificates parsing (DPI)"] < avg["Proof construction"]*4) {
		t.Error("proof construction implausibly cheap vs parsing")
	}
}

func TestTab4Full(t *testing.T) {
	tbl := runQuick(t, "tab4")
	if len(tbl.Rows) != 8 {
		t.Fatalf("tab4 rows = %d, want 8", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "RITM" || last[2] != "0" || last[4] != "0" || last[5] != "-" {
		t.Errorf("RITM row = %v", last)
	}
}

func TestStorageQuick(t *testing.T) {
	tbl := runQuick(t, "storage")
	rows := map[string]string{}
	for _, r := range tbl.Rows {
		rows[r[0]] = r[1]
	}
	if rows["dictionaries"] != "254" {
		t.Errorf("dictionaries = %s", rows["dictionaries"])
	}
	if v, _ := strconv.ParseFloat(rows["10M revocations: serialized MB"], 64); v != 40 {
		t.Errorf("10M serialized = %s MB, want 40", rows["10M revocations: serialized MB"])
	}
}

func TestDictOpsQuick(t *testing.T) {
	tbl := runQuick(t, "dictops")
	if len(tbl.Rows) != 4 {
		t.Fatalf("dictops rows = %d, want 2 bases × 2 entities", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		avg, err := strconv.ParseFloat(row[5], 64)
		if err != nil || avg <= 0 {
			t.Errorf("%s avg = %q", row[1], row[5])
		}
	}
	// The small-base insert is much cheaper than the large-base insert
	// (the O(n)-rebuild ablation the note explains).
	small, _ := strconv.ParseFloat(tbl.Rows[0][5], 64)
	large, _ := strconv.ParseFloat(tbl.Rows[2][5], 64)
	if large <= small {
		t.Errorf("large-base insert (%.2f ms) not slower than small-base (%.2f ms)", large, small)
	}
}

func TestThroughputQuick(t *testing.T) {
	tbl := runQuick(t, "throughput")
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil || v < 1000 {
			t.Errorf("%s = %q ops/s, want ≥ 1000", row[1], row[2])
		}
	}
}

func TestLatencyQuick(t *testing.T) {
	tbl := runQuick(t, "latency")
	if len(tbl.Rows) != 6 {
		t.Fatalf("latency rows = %d", len(tbl.Rows))
	}
	// The relative-overhead rows parse as percentages.
	for _, i := range []int{3, 5} {
		pct := strings.TrimSuffix(tbl.Rows[i][1], "%")
		if _, err := strconv.ParseFloat(pct, 64); err != nil {
			t.Errorf("overhead cell %q", tbl.Rows[i][1])
		}
	}
	// Computation alone stays under the paper's 1 % bound. The race
	// detector skews the measured sections non-uniformly, so the wall-clock
	// bound only holds on uninstrumented builds.
	pct, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[5][1], "%"), 64)
	if err != nil {
		t.Errorf("computation overhead cell %q", tbl.Rows[5][1])
	} else if pct >= 1.0 && !raceDetectorEnabled {
		t.Errorf("computation overhead = %v%%, want < 1%%", pct)
	}
}

func TestMeasureHelper(t *testing.T) {
	tm := measure(10, 1, func() { time.Sleep(100 * time.Microsecond) })
	if tm.Avg < 50*time.Microsecond {
		t.Errorf("avg = %v, want ≥ 50µs", tm.Avg)
	}
	if tm.Min > tm.Avg || tm.Avg > tm.Max {
		t.Errorf("ordering violated: %+v", tm)
	}
}
