package experiments

import (
	"time"

	"ritm/internal/workload"
)

// seriesSeed fixes the dataset instance every experiment shares.
const seriesSeed = 2014

// Fig4 reproduces Figure 4: the number of revocations issued between
// January 2014 and June 2015 (weekly, top plot) with a zoom into the
// Heartbleed peak on 16–17 April 2014 (3-hour bins, bottom plot).
func Fig4(quick bool) (*Table, error) {
	series := workload.NewSeries(seriesSeed)

	t := &Table{
		ID:      "fig4",
		Title:   "Revocations Jan 2014 – Jun 2015 with the Heartbleed peak (Fig 4)",
		Columns: []string{"week of", "revocations"},
		Notes: []string{
			"synthetic series pinned to the dataset total of 1,381,992 (§VII-A)",
		},
	}
	weekly := series.Weekly()
	step := 1
	if quick {
		step = 8
	}
	for w := 0; w < len(weekly); w += step {
		weekStart := workload.SeriesStart.AddDate(0, 0, 7*w)
		t.AddRow(weekStart.Format("2006-01-02"), weekly[w])
	}

	// Bottom plot: the peak days in 3-hour bins.
	from := time.Date(2014, time.April, 16, 0, 0, 0, 0, time.UTC)
	to := time.Date(2014, time.April, 18, 0, 0, 0, 0, time.UTC)
	bins, err := series.Bins(from, to, 3)
	if err != nil {
		return nil, err
	}
	zoom := &Table{
		ID:      "fig4-zoom",
		Title:   "Heartbleed peak, 16–17 Apr 2014 (3-hour bins)",
		Columns: []string{"bin start", "revocations"},
	}
	for i, b := range bins {
		zoom.AddRow(from.Add(time.Duration(i)*3*time.Hour).Format("Jan 02 15:04"), b)
	}
	// Surface the zoom as extra rows under a separator to keep one table
	// per experiment.
	t.AddRow("", "")
	t.AddRow("— zoom: "+zoom.Title, "")
	for _, row := range zoom.Rows {
		t.AddRow(row[0], row[1])
	}
	return t, nil
}
