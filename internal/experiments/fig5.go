package experiments

import (
	"fmt"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/netsim"
	"ritm/internal/serial"
)

// Fig5 reproduces Figure 5: the CDF of the time RAs need to download
// revocation messages of five sizes (0, 15k, 30k, 45k, 60k revocations)
// from a CDN with edge caching disabled (TTL=0), measured from 80 vantage
// points with 10 trials each.
//
// Message sizes are not modelled: each message is built by a real
// dictionary authority (3-byte serials, §VII-A) and encoded with the
// production wire format; only the network is simulated (internal/netsim
// replaces PlanetLab + CloudFront).
func Fig5(quick bool) (*Table, error) {
	counts := []int{0, 15_000, 30_000, 45_000, 60_000}
	trials := 10
	if quick {
		counts = []int{0, 15_000}
		trials = 2
	}

	t := &Table{
		ID:    "fig5",
		Title: "Download-time CDF for five revocation-message sizes, TTL=0 (Fig 5)",
		Columns: []string{
			"revocations", "message KB", "p10 s", "p25 s", "p50 s", "p75 s", "p90 s", "p99 s", "<1s",
		},
		Notes: []string{
			"network: 80-vantage analytic model replacing PlanetLab+CloudFront (DESIGN.md §3)",
			"message bytes: real wire encoding of an issuance message with 3-byte serials",
		},
	}
	network := netsim.NewNetwork(seriesSeed)
	for _, count := range counts {
		bytes, err := messageBytes(count)
		if err != nil {
			return nil, err
		}
		samples := network.Sample(bytes, trials)
		under := 0
		for _, s := range samples {
			if s < time.Second {
				under++
			}
		}
		t.AddRow(
			count,
			kb(float64(bytes)),
			secs(netsim.Quantile(samples, 0.10)),
			secs(netsim.Quantile(samples, 0.25)),
			secs(netsim.Quantile(samples, 0.50)),
			secs(netsim.Quantile(samples, 0.75)),
			secs(netsim.Quantile(samples, 0.90)),
			secs(netsim.Quantile(samples, 0.99)),
			fmt.Sprintf("%.1f%%", 100*float64(under)/float64(len(samples))),
		)
	}
	return t, nil
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// messageBytes builds a revocation message with count revocations exactly
// as the dissemination network would ship it and returns its encoded size.
func messageBytes(count int) (int, error) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return 0, err
	}
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "fig5-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, time.Now().Unix())
	if err != nil {
		return 0, err
	}
	if count == 0 {
		// Freshness statement only.
		st, err := auth.Statement(time.Now().Unix())
		if err != nil {
			return 0, err
		}
		return len(st.Encode()), nil
	}
	gen := serial.NewGenerator(uint64(count), serial.SizeDistribution{{Bytes: 3, Weight: 1}})
	msg, err := auth.Insert(gen.NextN(count), time.Now().Unix())
	if err != nil {
		return 0, err
	}
	return len(msg.Encode()), nil
}
