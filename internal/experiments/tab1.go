package experiments

import (
	"fmt"
	"strings"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// Tab1 reproduces Table I: the sequence of messages a CA disseminates over
// four ∆ periods — a three-revocation batch with its signed root, two idle
// periods covered by bare freshness statements, and one more revocation
// with a fresh root. The messages are produced by the real authority and
// verified as a replica would.
func Tab1(quick bool) (*Table, error) {
	_ = quick // the scenario is four steps either way
	const delta = 10 * time.Second
	t0 := time.Unix(1_400_000_000, 0)
	now := t0

	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "CA1",
		Signer: signer,
		Delta:  delta,
	}, now.Unix())
	if err != nil {
		return nil, err
	}
	replica := dictionary.NewReplica("CA1", auth.PublicKey())

	t := &Table{
		ID:      "tab1",
		Title:   "Messages disseminated over time (Tab I)",
		Columns: []string{"time", "revoked serials", "disseminated message", "bytes"},
	}

	// t = t0: revoke s_a, s_b, s_c.
	gen := serial.NewGenerator(1, serial.SizeDistribution{{Bytes: 3, Weight: 1}})
	batch := gen.NextN(3)
	msg, err := auth.Insert(batch, now.Unix())
	if err != nil {
		return nil, err
	}
	if err := replica.Update(msg); err != nil {
		return nil, fmt.Errorf("tab1: replica rejected issuance: %w", err)
	}
	t.AddRow("t0", serialNames(batch),
		fmt.Sprintf("%s, {root, n=%d, H^m(v), t}_K⁻CA", serialNames(batch), msg.Root.N),
		len(msg.Encode()))

	// t = t0 + ∆ and t0 + 2∆: no revocations; freshness statements only.
	for p := 1; p <= 2; p++ {
		now = t0.Add(time.Duration(p) * delta)
		ref, err := auth.Refresh(now.Unix())
		if err != nil {
			return nil, err
		}
		if ref.NewRoot != nil {
			return nil, fmt.Errorf("tab1: unexpected root rotation at period %d", p)
		}
		if err := replica.ApplyFreshness(ref.Statement, now.Unix()); err != nil {
			return nil, fmt.Errorf("tab1: replica rejected freshness %d: %w", p, err)
		}
		t.AddRow(fmt.Sprintf("t0+%d∆", p), "none",
			fmt.Sprintf("H^(m−%d)(v)", p),
			len(ref.Statement.Encode()))
	}

	// t = t0 + 3∆: revoke s_d; a new signed root (fresh chain) ships.
	now = t0.Add(3 * delta)
	sd := gen.NextN(1)
	msg2, err := auth.Insert(sd, now.Unix())
	if err != nil {
		return nil, err
	}
	if err := replica.Update(msg2); err != nil {
		return nil, fmt.Errorf("tab1: replica rejected second issuance: %w", err)
	}
	t.AddRow("t0+3∆", serialNames(sd),
		fmt.Sprintf("%s, {root', n=%d, H^m(v'), t}_K⁻CA", serialNames(sd), msg2.Root.N),
		len(msg2.Encode()))

	if replica.Count() != 4 {
		return nil, fmt.Errorf("tab1: replica ended at n=%d, want 4", replica.Count())
	}
	t.Notes = append(t.Notes,
		"every message verified by a live replica (signature, count, root replay)",
		"freshness statements are an order of magnitude smaller than signed batches")
	return t, nil
}

func serialNames(serials []serial.Number) string {
	out := make([]string, len(serials))
	for i, s := range serials {
		out[i] = s.String()
	}
	return strings.Join(out, ", ")
}
