//go:build !race

package experiments

const raceDetectorEnabled = false
