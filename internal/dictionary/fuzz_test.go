package dictionary

import (
	"bytes"
	"testing"

	"ritm/internal/serial"
)

// FuzzDecodeProof hardens the proof decoder against hostile or corrupted
// bodies: truncations at every depth, bit flips, length-field lies, and
// spine-flag abuse. The seed corpus covers every proof shape of both
// layouts — presence, two-leaf absence, both boundary absences, the empty
// dictionary — with and without the versioned SpineSegment extension, plus
// classic malformations.
func FuzzDecodeProof(f *testing.F) {
	gen := serial.NewGenerator(0xF022, nil)
	sorted := NewTree()
	forest := NewTreeWithLayout(LayoutForest)
	batch := gen.NextN(600)
	if err := sorted.InsertBatch(batch); err != nil {
		f.Fatal(err)
	}
	if err := forest.InsertBatch(batch); err != nil {
		f.Fatal(err)
	}
	probes := []serial.Number{
		batch[0], batch[300], // presence
		gen.Next(), gen.Next(), // two-leaf absence (almost surely)
		serial.FromUint64(0), // left boundary
		mustMaxSerial(),      // right boundary
	}
	for _, s := range probes {
		f.Add(sorted.Prove(s).Encode()) // pre-forest encoding, no spine flag
		f.Add(forest.Prove(s).Encode()) // spine-flagged encoding
	}
	empty := NewTree().Prove(batch[0]).Encode()
	f.Add(empty)
	spined := forest.Prove(batch[0]).Encode()
	f.Add(spined[:1])                               // kind byte only
	f.Add(spined[:len(spined)/2])                   // mid-spine truncation
	f.Add(spined[:len(spined)-1])                   // one byte short
	f.Add(append(append([]byte{}, spined...), 0))   // trailing garbage
	f.Add([]byte{byte(ProofPresence) | 0x80, 0, 0}) // spine flag, no spine
	f.Add([]byte{0xff, 0x01, 0x02})                 // unknown kind + junk
	f.Add([]byte{2, 1, 0xff, 0xff, 0xff, 0xff})     // length-field lie
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProof(data)
		if err != nil {
			return // rejection is always acceptable; panics/hangs are the bug
		}
		// Accepted input: the encoding must round-trip to an equivalent
		// proof — same kind, same spine presence, byte-identical re-encode.
		enc := p.Encode()
		again, err := DecodeProof(enc)
		if err != nil {
			t.Fatalf("accepted proof failed second decode: %v", err)
		}
		if again.Kind != p.Kind || (again.Spine == nil) != (p.Spine == nil) {
			t.Fatal("second decode changed proof shape")
		}
		if !bytes.Equal(again.Encode(), enc) {
			t.Fatalf("re-encoding unstable:\n in: %x\nout: %x", enc, again.Encode())
		}
	})
}

// mustMaxSerial returns the largest representable serial (20 × 0xff).
func mustMaxSerial() serial.Number {
	b := make([]byte, serial.MaxLen)
	for i := range b {
		b[i] = 0xff
	}
	s, err := serial.New(b)
	if err != nil {
		panic(err)
	}
	return s
}
