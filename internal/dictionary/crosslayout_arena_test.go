package dictionary

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
	"ritm/internal/workload"
)

// This file pins the arena rebuild (in-place merge, level reuse, private
// spine rewrite) against the pre-arena semantics two ways: a pure-function
// check of the merge/build kernels against element-wise reference
// implementations, and a whole-tree replay where one tree keeps its arrays
// private between batches (in-place paths) while its twin is exposed after
// every batch (forcing the fresh copy-on-write paths the code used before
// the arena existed). Roots, proof bytes, and checkpoint/rollback behavior
// must be indistinguishable. The tests run in CI's dictionary race suite
// (-run 'CrossLayout|Forest|Layout' -race -count=2).

// refMergeLeaves is the pre-arena element-wise merge: append one leaf at a
// time into fresh arrays. It is the semantic reference for mergeLeaves and
// mergeLeavesInPlace.
func refMergeLeaves(oldLeaves []Leaf, oldHashes []cryptoutil.Hash, batch []Leaf) ([]Leaf, []cryptoutil.Hash, int) {
	merged := make([]Leaf, 0, len(oldLeaves)+len(batch))
	hashes := make([]cryptoutil.Hash, 0, len(oldLeaves)+len(batch))
	firstChanged := -1
	i := 0
	for _, b := range batch {
		for i < len(oldLeaves) && oldLeaves[i].Serial.Compare(b.Serial) < 0 {
			merged = append(merged, oldLeaves[i])
			hashes = append(hashes, oldHashes[i])
			i++
		}
		if firstChanged < 0 {
			firstChanged = len(merged)
		}
		merged = append(merged, b)
		hashes = append(hashes, b.hash())
	}
	merged = append(merged, oldLeaves[i:]...)
	hashes = append(hashes, oldHashes[i:]...)
	return merged, hashes, firstChanged
}

// refBuildLevels is the pre-arena full rebuild: every interior node
// recomputed from scratch, no reuse of any kind.
func refBuildLevels(leafHashes []cryptoutil.Hash) [][]cryptoutil.Hash {
	if len(leafHashes) == 0 {
		return nil
	}
	levels := [][]cryptoutil.Hash{leafHashes}
	cur := leafHashes
	for len(cur) > 1 {
		next := make([]cryptoutil.Hash, (len(cur)+1)/2)
		for k := range next {
			if 2*k+1 < len(cur) {
				next[k] = cryptoutil.HashNode(cur[2*k], cur[2*k+1])
			} else {
				next[k] = cur[len(cur)-1]
			}
		}
		levels = append(levels, next)
		cur = next
	}
	return levels
}

func leavesFrom(serials []serial.Number, startNum uint64) []Leaf {
	out := make([]Leaf, len(serials))
	for i, s := range serials {
		out[i] = Leaf{Serial: s, Num: startNum + uint64(i)}
	}
	sortLeaves(out)
	return out
}

func levelsEqual(t *testing.T, tag string, got, want [][]cryptoutil.Hash) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d levels, want %d", tag, len(got), len(want))
	}
	for lvl := range want {
		if len(got[lvl]) != len(want[lvl]) {
			t.Fatalf("%s: level %d has %d nodes, want %d", tag, lvl, len(got[lvl]), len(want[lvl]))
		}
		for k := range want[lvl] {
			if !got[lvl][k].Equal(want[lvl][k]) {
				t.Fatalf("%s: level %d node %d differs from reference", tag, lvl, k)
			}
		}
	}
}

// TestLayoutMergeBuildMatchesReference checks the four rebuild kernels —
// copy-on-write and in-place merge, copy-on-write and in-place level build
// — against the element-wise reference over randomized old/batch splits,
// including repeated in-place merges into the same arena (the multi-∆
// private-window case).
func TestLayoutMergeBuildMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xA2E7A, 0xB0B))
	gen := serial.NewGenerator(0x5EED, nil)
	for trial := 0; trial < 40; trial++ {
		nOld, nBatch := rng.IntN(300), 1+rng.IntN(120)
		all := gen.NextN(nOld + nBatch)
		oldLeaves := leavesFrom(all[:nOld], 1)
		batch := leavesFrom(all[nOld:], uint64(nOld)+1)
		oldHashes := make([]cryptoutil.Hash, len(oldLeaves))
		for i, lf := range oldLeaves {
			oldHashes[i] = lf.hash()
		}
		oldLevels := refBuildLevels(oldHashes)

		wantLeaves, wantHashes, wantFirst := refMergeLeaves(oldLeaves, oldHashes, batch)

		gotLeaves, gotHashes, gotFirst, _ := mergeLeaves(oldLeaves, oldHashes, batch)
		if gotFirst != wantFirst || len(gotLeaves) != len(wantLeaves) {
			t.Fatalf("trial %d: mergeLeaves shape (%d,%d), want (%d,%d)",
				trial, gotFirst, len(gotLeaves), wantFirst, len(wantLeaves))
		}
		for i := range wantLeaves {
			if !gotLeaves[i].Serial.Equal(wantLeaves[i].Serial) || gotLeaves[i].Num != wantLeaves[i].Num ||
				!gotHashes[i].Equal(wantHashes[i]) {
				t.Fatalf("trial %d: mergeLeaves leaf %d differs from reference", trial, i)
			}
		}

		// In-place variant over a caller-owned copy with arena capacity.
		arena := make([]Leaf, len(oldLeaves), len(oldLeaves)+len(batch))
		copy(arena, oldLeaves)
		arenaHashes := make([]cryptoutil.Hash, len(oldHashes), len(oldHashes)+len(batch))
		copy(arenaHashes, oldHashes)
		ipLeaves, ipHashes, ipFirst, _ := mergeLeavesInPlace(arena, arenaHashes, batch)
		if ipFirst != wantFirst || len(ipLeaves) != len(wantLeaves) {
			t.Fatalf("trial %d: mergeLeavesInPlace shape (%d,%d), want (%d,%d)",
				trial, ipFirst, len(ipLeaves), wantFirst, len(wantLeaves))
		}
		for i := range wantLeaves {
			if !ipLeaves[i].Serial.Equal(wantLeaves[i].Serial) || !ipHashes[i].Equal(wantHashes[i]) {
				t.Fatalf("trial %d: mergeLeavesInPlace leaf %d differs from reference", trial, i)
			}
		}

		wantLevels := refBuildLevels(wantHashes)
		gotLevels, _ := buildLevels(gotHashes, oldLevels, gotFirst)
		levelsEqual(t, "buildLevels", gotLevels, wantLevels)

		// In-place build over a private copy of the old level structure
		// whose leaf level is the in-place merged hash array.
		privLevels := make([][]cryptoutil.Hash, len(oldLevels))
		for lvl, old := range oldLevels {
			privLevels[lvl] = append(make([]cryptoutil.Hash, 0, len(old)+len(batch)), old...)
		}
		if len(privLevels) == 0 {
			privLevels = [][]cryptoutil.Hash{nil}
		}
		privLevels[0] = ipHashes
		ipLevels, _ := buildLevelsInPlace(privLevels, ipHashes, ipFirst)
		levelsEqual(t, "buildLevelsInPlace", ipLevels, wantLevels)

		// A second merge into the SAME arena (the repeated-∆ window) must
		// still match the reference computed over the combined batch.
		batch2 := leavesFrom(gen.NextN(1+rng.IntN(80)), uint64(nOld+nBatch)+1)
		want2Leaves, want2Hashes, _ := refMergeLeaves(wantLeaves, wantHashes, batch2)
		grown := append(make([]Leaf, 0, len(ipLeaves)+len(batch2)), ipLeaves...)
		grownHashes := append(make([]cryptoutil.Hash, 0, len(ipHashes)+len(batch2)), ipHashes...)
		ip2Leaves, ip2Hashes, ip2First, _ := mergeLeavesInPlace(grown, grownHashes, batch2)
		for i := range want2Leaves {
			if !ip2Leaves[i].Serial.Equal(want2Leaves[i].Serial) || !ip2Hashes[i].Equal(want2Hashes[i]) {
				t.Fatalf("trial %d: second in-place merge leaf %d differs from reference", trial, i)
			}
		}
		ip2Levels, _ := buildLevelsInPlace(ipLevels, ip2Hashes, ip2First)
		levelsEqual(t, "buildLevelsInPlace(second)", ip2Levels, refBuildLevels(want2Hashes))
	}
}

// TestCrossLayoutArenaVsExposedReplay replays identical random batch
// sequences into two trees per layout: one inserted back-to-back (arrays
// stay private, so every batch after the first takes the in-place arena
// paths) and one exposed via view() after every batch (every insert takes
// the fresh copy-on-write path — the pre-arena behavior). Roots must agree
// after every batch and proof encodings must be byte-identical at the end;
// a checkpoint/rollback/re-apply cycle on the arena tree must change
// nothing.
func TestCrossLayoutArenaVsExposedReplay(t *testing.T) {
	corpus := workload.NewCorpus(0xC0FFEE)
	for _, kind := range []LayoutKind{LayoutSorted, LayoutForest} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(77, uint64(kind)))
			tested := 0
			for i := 0; i < corpus.Len() && tested < 2; i++ {
				if corpus.Size(i) > 3000 || corpus.Size(i) < 100 {
					continue
				}
				tested++
				log := corpus.Serials(i)
				arenaTree := NewTreeWithLayout(kind)
				exposed := NewTreeWithLayout(kind)

				var cp treeCheckpoint
				var cpAt int
				var batches [][]serial.Number
				for start := 0; start < len(log); {
					end := min(start+1+rng.IntN(250), len(log))
					batches = append(batches, log[start:end])
					start = end
				}
				cpBatch := len(batches) / 2
				for b, batch := range batches {
					if b == cpBatch {
						cp = arenaTree.checkpoint()
						cpAt = b
					}
					if err := arenaTree.InsertBatch(batch); err != nil {
						t.Fatal(err)
					}
					if err := exposed.InsertBatch(batch); err != nil {
						t.Fatal(err)
					}
					_ = exposed.view() // expose: next insert takes the fresh path
					if !arenaTree.Root().Equal(exposed.Root()) {
						t.Fatalf("crl %d: roots diverge after batch %d", i, b)
					}
				}

				// Rollback to the mid-sequence checkpoint and re-apply the
				// same tail: restore must drop the private arena so the
				// replay reconverges bit-for-bit.
				finalRoot := arenaTree.Root()
				arenaTree.rollback(cp)
				for _, batch := range batches[cpAt:] {
					if err := arenaTree.InsertBatch(batch); err != nil {
						t.Fatal(err)
					}
				}
				if !arenaTree.Root().Equal(finalRoot) {
					t.Fatalf("crl %d: root differs after rollback/re-apply", i)
				}

				queries := make([]serial.Number, 0, 96)
				for j := 0; j < 64; j++ {
					queries = append(queries, log[rng.IntN(len(log))])
				}
				queries = append(queries, corpus.SampleAbsent(i, 32)...)
				for _, q := range queries {
					ap, ep := arenaTree.Prove(q), exposed.Prove(q)
					if !bytes.Equal(ap.Encode(), ep.Encode()) {
						t.Fatalf("crl %d: proof bytes for %v differ between arena and exposed trees", i, q)
					}
					rev, err := ap.Verify(q, exposed.Root(), exposed.Count())
					if err != nil {
						t.Fatalf("crl %d: arena proof for %v: %v", i, q, err)
					}
					_, wantRev := exposed.Revoked(q)
					if rev != wantRev {
						t.Fatalf("crl %d: arena proof for %v: revoked=%v want %v", i, q, rev, wantRev)
					}
				}
			}
			if tested == 0 {
				t.Fatal("corpus provided no CRLs in the tested size band")
			}
		})
	}
}
