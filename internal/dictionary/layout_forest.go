package dictionary

import (
	"sort"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// The bucket capacity bounds the leaves per bucket; a bucket that outgrows
// it is split. The default of 256 (DefaultForestBucketCap) keeps the
// in-bucket rehash of one insert (≤ ~2·cap hashes, the leaves to the right
// re-pair) two to three orders of magnitude below the whole-dictionary
// rehash the sorted layout pays for the same insert, while the proof
// (in-bucket path + spine path) stays within a hash or two of the sorted
// layout's single path: log₂(cap) + log₂(n/cap) ≈ log₂(n). The capacity is
// configurable per deployment (LayoutForestWithCap) and committed to by
// the layout descriptor — it decides where bucket boundaries fall, so two
// forests of different capacity disagree on roots even over equal content.

// forestBucket is one serial-range partition of the dictionary: a small
// sorted hash tree over the leaves whose serials fall in [lo, hi), plus the
// memoized bucket commitment hashed into the spine. A zero lo or hi means
// the range is unbounded on that side; buckets tile the entire serial space
// contiguously (buckets[i].hi == buckets[i+1].lo), so every serial — present
// or absent — belongs to exactly one bucket, which is what makes absence
// proofs local to a single bucket. Buckets are immutable once built: inserts
// replace the bucket, never mutate it.
type forestBucket struct {
	lo, hi serial.Number // [lo, hi); zero = unbounded
	tree   miniTree
	node   cryptoutil.Hash // HashBucket(lo, hi, count, tree root)
	// private marks the bucket as scratch: built since the last
	// view/checkpoint with backing arrays shared by no other bucket, so a
	// later insert of the same private window may extend them in place.
	// Buckets cut by chunkBuckets are never private (their leaf arrays are
	// sub-slices of one shared run). expose clears the flag.
	private bool
}

// leafHashes returns the bucket's leaf-hash level.
func (b *forestBucket) leafHashes() []cryptoutil.Hash { return b.tree.levels[0] }

// forestLayout is the bucketed commitment structure: an ordered slice of
// buckets and a spine tree over their commitments, with the dictionary root
// binding the bucket count to the spine root. An insert rehashes only the
// buckets it lands in plus the dirty spine paths above them — O(k·log n)
// per k-insert batch for any serial distribution, versus the sorted
// layout's O(n) for uniform batches. Copy-on-write throughout: buckets are
// replaced, spine levels freshly allocated, so published views stay valid.
type forestLayout struct {
	desc    LayoutKind // full descriptor, capacity included
	cap     int        // bucket capacity (split threshold)
	target  int        // post-split fill: ¾ of cap, so fresh buckets have headroom
	buckets []*forestBucket
	spine   [][]cryptoutil.Hash // spine[0][i] == buckets[i].node
	root    cryptoutil.Hash     // memoized forest root; EmptyRoot when empty
	hashed  uint64
	// spineOwned marks the spine arrays as private scratch (rebuilt since
	// the last view/checkpoint). It doubles as the did-anything-mutate flag
	// for expose: inserts always rebuild the spine, so spineOwned == false
	// implies no private bucket exists either.
	spineOwned bool
}

// expose marks every array a view or checkpoint hands out as shared:
// spine levels and bucket trees lose their in-place merge right until the
// next insert rebuilds them fresh.
func (f *forestLayout) expose() {
	if !f.spineOwned {
		return
	}
	f.spineOwned = false
	for _, b := range f.buckets {
		b.private = false
	}
}

// newForestLayout builds an empty forest with the descriptor's capacity.
func newForestLayout(desc LayoutKind) *forestLayout {
	cap := desc.ForestCap()
	if cap == 0 {
		cap = DefaultForestBucketCap
	}
	return &forestLayout{desc: desc, cap: cap, target: cap * 3 / 4}
}

func (f *forestLayout) kind() LayoutKind { return f.desc }

func (f *forestLayout) insert(batch []Leaf) {
	if len(batch) == 0 {
		return
	}
	oldSpine, oldLen := f.spine, len(f.buckets)
	structFrom := -1 // first index where the bucket list changed shape (split)
	var dirty []int  // indices of value-changed (merged, unsplit) buckets
	var next []*forestBucket
	if oldLen == 0 {
		merged, mergedHashes, _, leafOps := mergeLeaves(nil, nil, batch)
		f.hashed += leafOps
		next = f.chunkBuckets(serial.Number{}, serial.Number{}, merged, mergedHashes)
		structFrom = 0
	} else {
		next = make([]*forestBucket, 0, oldLen+1)
		j := 0 // cursor into the sorted batch
		for _, b := range f.buckets {
			start := j
			for j < len(batch) && (b.hi.IsZero() || batch[j].Serial.Compare(b.hi) < 0) {
				j++
			}
			if start == j {
				next = append(next, b) // untouched: shared with the old version
				continue
			}
			sub := batch[start:j]
			if newLen := len(b.tree.leaves) + len(sub); b.private && newLen <= f.cap &&
				cap(b.tree.leaves) >= newLen && cap(b.tree.levels[0]) >= newLen {
				// Arena path: the bucket is private scratch of this window,
				// so the sub-batch merges into its arrays with zero
				// reallocation and the bucket object itself is reused.
				merged, mergedHashes, firstChanged, leafOps := mergeLeavesInPlace(b.tree.leaves, b.leafHashes(), sub)
				f.hashed += leafOps
				levels, nodeOps := buildLevelsInPlace(b.tree.levels, mergedHashes, firstChanged)
				f.hashed += nodeOps
				b.tree.leaves = merged
				b.tree.levels = levels
				b.node = cryptoutil.HashBucket(b.lo.Raw(), b.hi.Raw(), uint64(len(merged)), b.tree.root())
				f.hashed++
				if structFrom < 0 {
					dirty = append(dirty, len(next))
				}
				next = append(next, b)
				continue
			}
			merged, mergedHashes, firstChanged, leafOps := mergeLeaves(b.tree.leaves, b.leafHashes(), sub)
			f.hashed += leafOps
			if len(merged) <= f.cap {
				if structFrom < 0 {
					dirty = append(dirty, len(next))
				}
				nb := f.buildBucket(b.lo, b.hi, merged, mergedHashes, b.tree.levels, firstChanged)
				nb.private = true
				next = append(next, nb)
			} else {
				if structFrom < 0 {
					structFrom = len(next)
				}
				next = append(next, f.chunkBuckets(b.lo, b.hi, merged, mergedHashes)...)
			}
		}
	}
	f.buckets = next
	f.rebuildSpine(oldSpine, oldLen, structFrom, dirty)
	f.spineOwned = true
}

// buildBucket assembles one bucket, reusing interior nodes left of
// firstChanged from oldLevels (nil oldLevels = build from scratch).
func (f *forestLayout) buildBucket(lo, hi serial.Number, leaves []Leaf, hashes []cryptoutil.Hash, oldLevels [][]cryptoutil.Hash, firstChanged int) *forestBucket {
	levels, ops := buildLevels(hashes, oldLevels, firstChanged)
	f.hashed += ops
	b := &forestBucket{lo: lo, hi: hi, tree: miniTree{leaves: leaves, levels: levels}}
	b.node = cryptoutil.HashBucket(lo.Raw(), hi.Raw(), uint64(len(leaves)), b.tree.root())
	f.hashed++
	return b
}

// chunkBuckets splits an oversized run covering [lo, hi) into evenly sized
// buckets of about f.target leaves, each built from scratch. Chunk
// boundaries become the new bucket bounds, preserving the tiling invariant.
func (f *forestLayout) chunkBuckets(lo, hi serial.Number, leaves []Leaf, hashes []cryptoutil.Hash) []*forestBucket {
	chunks := (len(leaves) + f.target - 1) / f.target
	size := (len(leaves) + chunks - 1) / chunks
	out := make([]*forestBucket, 0, chunks)
	for start := 0; start < len(leaves); start += size {
		end := min(start+size, len(leaves))
		clo, chi := lo, hi
		if start > 0 {
			clo = leaves[start].Serial
		}
		if end < len(leaves) {
			chi = leaves[end].Serial
		}
		out = append(out, f.buildBucket(clo, chi, leaves[start:end], hashes[start:end], nil, 0))
	}
	return out
}

// rebuildSpine recomputes the spine over the current buckets and memoizes
// the forest root. When the bucket list kept its shape, only the paths above
// the dirty buckets are rehashed (O(k·log #buckets)); a split falls back to
// the left-prefix reuse of buildLevels from the first changed index.
func (f *forestLayout) rebuildSpine(oldSpine [][]cryptoutil.Hash, oldLen, structFrom int, dirty []int) {
	if structFrom < 0 && len(f.buckets) == oldLen && f.spineOwned {
		// Arena path: the spine arrays are still private scratch of this
		// window and the bucket list kept its shape, so the dirty paths are
		// rewritten in place with zero allocation.
		for _, idx := range dirty {
			oldSpine[0][idx] = f.buckets[idx].node
		}
		rebuildSpineDirtyInPlace(oldSpine, dirty, &f.hashed)
		f.spine = oldSpine
		f.root = cryptoutil.HashForestRoot(uint64(len(f.buckets)), f.spine[len(f.spine)-1][0])
		f.hashed++
		return
	}
	spine0 := make([]cryptoutil.Hash, len(f.buckets))
	for i, b := range f.buckets {
		spine0[i] = b.node
	}
	if structFrom >= 0 || len(f.buckets) != oldLen {
		first := structFrom
		if len(dirty) > 0 && dirty[0] < first {
			first = dirty[0]
		}
		levels, ops := buildLevels(spine0, oldSpine, first)
		f.spine = levels
		f.hashed += ops
	} else {
		f.spine = rebuildSpineDirty(oldSpine, spine0, dirty, &f.hashed)
	}
	f.root = cryptoutil.HashForestRoot(uint64(len(f.buckets)), f.spine[len(f.spine)-1][0])
	f.hashed++
}

// rebuildSpineDirty recomputes only the spine paths above the dirty bucket
// indices (sorted ascending), copying every other node from the old spine.
// The bucket count is unchanged, so level shapes match the old spine
// exactly. Fresh arrays per level keep published views immutable.
func rebuildSpineDirty(old [][]cryptoutil.Hash, spine0 []cryptoutil.Hash, dirty []int, hashed *uint64) [][]cryptoutil.Hash {
	levels := make([][]cryptoutil.Hash, 1, len(old))
	levels[0] = spine0
	cur := spine0
	for lvl := 1; len(cur) > 1; lvl++ {
		next := append([]cryptoutil.Hash(nil), old[lvl]...)
		parents := dirty[:0:0]
		last := -1
		for _, idx := range dirty {
			k := idx / 2
			if k == last {
				continue
			}
			last = k
			if 2*k+1 < len(cur) {
				next[k] = cryptoutil.HashNode(cur[2*k], cur[2*k+1])
				*hashed++
			} else {
				next[k] = cur[2*k] // odd rightmost node: promoted unchanged
			}
			parents = append(parents, k)
		}
		levels = append(levels, next)
		cur = next
		dirty = parents
	}
	return levels
}

// rebuildSpineDirtyInPlace is the arena variant of rebuildSpineDirty: the
// spine arrays are private scratch, so dirty parents are written directly
// into the existing levels. The parent work-list reuses the dirty slice's
// backing array (parent writes trail the reads: k-th append consumes ≥ k+1
// elements), so the whole walk allocates nothing.
func rebuildSpineDirtyInPlace(spine [][]cryptoutil.Hash, dirty []int, hashed *uint64) {
	cur := spine[0]
	for lvl := 1; len(cur) > 1; lvl++ {
		next := spine[lvl]
		parents := dirty[:0]
		last := -1
		for _, idx := range dirty {
			k := idx / 2
			if k == last {
				continue
			}
			last = k
			if 2*k+1 < len(cur) {
				next[k] = cryptoutil.HashNode(cur[2*k], cur[2*k+1])
				*hashed++
			} else {
				next[k] = cur[2*k] // odd rightmost node: promoted unchanged
			}
			parents = append(parents, k)
		}
		cur = next
		dirty = parents
	}
}

func (f *forestLayout) view() LayoutView {
	f.expose()
	return forestView{buckets: f.buckets, spine: f.spine, root: f.root}
}

func (f *forestLayout) rootHash() cryptoutil.Hash {
	if len(f.buckets) == 0 {
		return EmptyRoot
	}
	return f.root
}

func (f *forestLayout) hashedNodes() uint64 { return f.hashed }

func (f *forestLayout) memoryFootprint() int {
	const (
		hashBytes      = cryptoutil.HashSize
		leafOverhead   = 24 + 8 // slice header of serial + num
		bucketOverhead = 96     // two bounds, tree header, node, pointer
	)
	total := 0
	for _, b := range f.buckets {
		total += bucketOverhead
		for _, lvl := range b.tree.levels {
			total += len(lvl) * hashBytes
		}
		for _, lf := range b.tree.leaves {
			total += leafOverhead + lf.Serial.Len()
		}
	}
	for _, lvl := range f.spine {
		total += len(lvl) * hashBytes
	}
	return total
}

// forestState is the O(1) checkpoint of a forest layout: buckets are
// immutable and spine levels copy-on-write, so the slice headers pin one
// version forever.
type forestState struct {
	buckets []*forestBucket
	spine   [][]cryptoutil.Hash
	root    cryptoutil.Hash
}

func (f *forestLayout) checkpoint() layoutState {
	// The captured bucket pointers and spine headers may be held until an
	// arbitrarily later restore: expose them so no in-place merge rewrites
	// what the checkpoint pinned.
	f.expose()
	return forestState{buckets: f.buckets, spine: f.spine, root: f.root}
}

func (f *forestLayout) restore(st layoutState) {
	s := st.(forestState)
	f.buckets, f.spine, f.root = s.buckets, s.spine, s.root
	// The reinstated state is the checkpointed (exposed) version; the
	// private scratch a failed replay built is dropped for the collector.
	f.spineOwned = false
}

// forestView is one immutable version of the forest's proving state.
type forestView struct {
	buckets []*forestBucket
	spine   [][]cryptoutil.Hash
	root    cryptoutil.Hash
}

func (v forestView) Root() cryptoutil.Hash {
	if len(v.buckets) == 0 {
		return EmptyRoot
	}
	return v.root
}

// bucketFor returns the index of the bucket whose range contains s; the
// tiling invariant guarantees exactly one does.
func (v forestView) bucketFor(s serial.Number) int {
	return sort.Search(len(v.buckets), func(i int) bool {
		return !v.buckets[i].lo.IsZero() && v.buckets[i].lo.Compare(s) > 0
	}) - 1
}

func (v forestView) Revoked(s serial.Number) (uint64, bool) {
	if len(v.buckets) == 0 {
		return 0, false
	}
	return v.buckets[v.bucketFor(s)].tree.revoked(s)
}

// Prove produces a presence or absence proof local to the bucket whose
// range contains s, plus the spine segment authenticating that bucket.
// Absence never crosses buckets: the committed range [lo, hi) proves that
// no other bucket could hold s, so the in-bucket neighbors (or boundary
// leaves) suffice.
func (v forestView) Prove(s serial.Number) *Proof {
	if len(v.buckets) == 0 {
		return &Proof{Kind: ProofAbsenceEmpty}
	}
	bi := v.bucketFor(s)
	b := v.buckets[bi]
	sp := SpineSegment{
		BucketIndex: uint64(bi),
		NumBuckets:  uint64(len(v.buckets)),
		LeafCount:   uint64(len(b.tree.leaves)),
		Lo:          b.lo,
		Hi:          b.hi,
	}
	return b.tree.proveLocal(s, &sp, v.spine, bi)
}
