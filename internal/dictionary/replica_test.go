package dictionary

import (
	"errors"
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// authorityAndReplica builds a matched CA/RA pair.
func authorityAndReplica(t *testing.T, now int64) (*Authority, *Replica) {
	t.Helper()
	a := newTestAuthority(t, now)
	r := NewReplica(a.CA(), a.PublicKey())
	// Bootstrap with the initial (empty) root.
	if err := r.Update(&IssuanceMessage{Root: a.SignedRoot()}); err != nil {
		t.Fatalf("bootstrap replica: %v", err)
	}
	return a, r
}

func TestReplicaFollowsAuthority(t *testing.T) {
	a, r := authorityAndReplica(t, 0)
	msg, err := a.Insert(mustSerials(t, 10, 20, 30), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(msg); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if r.Count() != 3 {
		t.Errorf("Count = %d, want 3", r.Count())
	}
	if !r.Revoked(serial.FromUint64(20)) {
		t.Error("replica missing revocation")
	}
	if !r.Root().Equal(a.SignedRoot()) {
		t.Error("replica root differs from authority root")
	}

	// Second batch keeps them in sync.
	msg, err = a.Insert(mustSerials(t, 40), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(msg); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 4 {
		t.Errorf("Count = %d, want 4", r.Count())
	}
}

func TestReplicaProveMatchesClientCheck(t *testing.T) {
	a, r := authorityAndReplica(t, 0)
	msg, err := a.Insert(mustSerials(t, 100, 200), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(msg); err != nil {
		t.Fatal(err)
	}

	st, err := r.Prove(serial.FromUint64(100))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := st.Check(serial.FromUint64(100), a.PublicKey(), 2); err != nil || res != CheckRevoked {
		t.Errorf("revoked serial: res=%v err=%v", res, err)
	}
	st, err = r.Prove(serial.FromUint64(150))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := st.Check(serial.FromUint64(150), a.PublicKey(), 2); err != nil || res != CheckValid {
		t.Errorf("valid serial: res=%v err=%v", res, err)
	}
}

func TestReplicaRejectsForgedRoot(t *testing.T) {
	a, r := authorityAndReplica(t, 0)
	msg, err := a.Insert(mustSerials(t, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker flips a serial in flight; the signature breaks.
	forged := *msg
	forged.Serials = mustSerials(t, 2)
	if err := r.Update(&forged); err == nil {
		t.Fatal("update with substituted serial accepted")
	}
	if r.Count() != 0 {
		t.Error("failed update mutated replica")
	}
	// Now apply the original; it must still succeed (state was rolled back).
	if err := r.Update(msg); err != nil {
		t.Fatalf("legitimate update after attack failed: %v", err)
	}
}

func TestReplicaRejectsLyingRoot(t *testing.T) {
	// A malicious CA signs a root that does not match the serials it
	// disseminates (e.g. it secretly omits one revocation). The replica's
	// replay detects the mismatch (Fig 2 update step 3).
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAuthority(AuthorityConfig{CA: "evil", Signer: signer, Delta: testDelta, ChainLength: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplica("evil", signer.Public())
	if err := r.Update(&IssuanceMessage{Root: a.SignedRoot()}); err != nil {
		t.Fatal(err)
	}

	// The CA inserts {1,2} but tells the world the batch was {1,3}: the
	// signed root commits to {1,2}, the message carries {1,3}.
	msg, err := a.Insert(mustSerials(t, 1, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	lying := &IssuanceMessage{Serials: mustSerials(t, 1, 3), Root: msg.Root}
	if err := r.Update(lying); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("err = %v, want ErrRootMismatch", err)
	}
	if r.Count() != 0 {
		t.Error("replica committed a lying update")
	}
	// The honest message still applies.
	if err := r.Update(msg); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaDetectsDesynchronization(t *testing.T) {
	a, r := authorityAndReplica(t, 0)
	// The replica misses this batch entirely.
	if _, err := a.Insert(mustSerials(t, 1, 2), 1); err != nil {
		t.Fatal(err)
	}
	msg2, err := a.Insert(mustSerials(t, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = r.Update(msg2)
	if !errors.Is(err, ErrDesynchronized) {
		t.Fatalf("err = %v, want ErrDesynchronized", err)
	}
	// Recovery: fetch the missing suffix (the sync protocol, §III) and
	// re-apply as one batch against the latest root.
	missing, err := a.LogSuffix(r.Count(), a.Count())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(&IssuanceMessage{Serials: missing, Root: a.SignedRoot()}); err != nil {
		t.Fatalf("resync failed: %v", err)
	}
	if r.Count() != 3 {
		t.Errorf("Count after resync = %d, want 3", r.Count())
	}
}

func TestReplicaRejectsReplayedOldMessage(t *testing.T) {
	a, r := authorityAndReplica(t, 0)
	msg1, err := a.Insert(mustSerials(t, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(msg1); err != nil {
		t.Fatal(err)
	}
	// Replay of msg1 must not apply again.
	if err := r.Update(msg1); !errors.Is(err, ErrCount) {
		t.Fatalf("replay err = %v, want ErrCount", err)
	}
}

func TestReplicaRejectsWrongCA(t *testing.T) {
	a, _ := authorityAndReplica(t, 0)
	other := NewReplica("CA2", a.PublicKey())
	msg, err := a.Insert(mustSerials(t, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Update(msg); err == nil {
		t.Error("cross-CA update accepted")
	}
}

func TestReplicaFreshnessLifecycle(t *testing.T) {
	a, r := authorityAndReplica(t, 0)
	deltaS := int64(testDelta / time.Second)

	// Initially the anchor doubles as the period-0 statement.
	age, err := r.FreshnessAge(0)
	if err != nil {
		t.Fatal(err)
	}
	if age != 0 {
		t.Errorf("initial age = %d, want 0", age)
	}

	// One period later the stored statement is one period old.
	age, err = r.FreshnessAge(deltaS)
	if err != nil {
		t.Fatal(err)
	}
	if age != 1 {
		t.Errorf("age after ∆ = %d, want 1", age)
	}

	// Apply the period-1 statement.
	st, err := a.Statement(deltaS)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyFreshness(st, deltaS); err != nil {
		t.Fatalf("ApplyFreshness: %v", err)
	}
	age, err = r.FreshnessAge(deltaS)
	if err != nil {
		t.Fatal(err)
	}
	if age != 0 {
		t.Errorf("age after refresh = %d, want 0", age)
	}

	// A garbage statement is rejected.
	bad := &FreshnessStatement{CA: a.CA(), Value: cryptoutil.HashBytes([]byte("junk"))}
	if err := r.ApplyFreshness(bad, deltaS); !errors.Is(err, ErrStale) {
		t.Errorf("junk statement err = %v, want ErrStale", err)
	}

	// A stale (already-superseded) statement is rejected.
	st0, err := a.Statement(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyFreshness(st0, 2*deltaS); !errors.Is(err, ErrStale) {
		t.Errorf("old statement err = %v, want ErrStale", err)
	}
}

func TestReplicaProveBeforeBootstrap(t *testing.T) {
	r := NewReplica("CA1", nil)
	if _, err := r.Prove(serial.FromUint64(1)); !errors.Is(err, ErrDesynchronized) {
		t.Errorf("err = %v, want ErrDesynchronized", err)
	}
	if _, err := r.FreshnessAge(0); !errors.Is(err, ErrDesynchronized) {
		t.Errorf("err = %v, want ErrDesynchronized", err)
	}
}

func TestReplicaEndToEndFreshStatusForClient(t *testing.T) {
	// Full pipeline: CA inserts, replica syncs and refreshes, client checks
	// the replica's status several periods later — the situation of Fig 3's
	// established-connection updates.
	a, r := authorityAndReplica(t, 0)
	deltaS := int64(testDelta / time.Second)
	msg, err := a.Insert(mustSerials(t, 0xbad), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(msg); err != nil {
		t.Fatal(err)
	}

	for p := int64(1); p <= 5; p++ {
		now := p * deltaS
		st, err := a.Statement(now)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ApplyFreshness(st, now); err != nil {
			t.Fatalf("period %d: %v", p, err)
		}
		status, err := r.Prove(serial.FromUint64(0xbad))
		if err != nil {
			t.Fatal(err)
		}
		res, err := status.Check(serial.FromUint64(0xbad), a.PublicKey(), now)
		if err != nil {
			t.Fatalf("period %d check: %v", p, err)
		}
		if res != CheckRevoked {
			t.Errorf("period %d: res = %v, want CheckRevoked", p, res)
		}
	}

	// Without applying the period-6 statement, a check at period 7 is stale.
	status, err := r.Prove(serial.FromUint64(0xbad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := status.Check(serial.FromUint64(0xbad), a.PublicKey(), 7*deltaS); !errors.Is(err, ErrStale) {
		t.Errorf("err = %v, want ErrStale", err)
	}
}
