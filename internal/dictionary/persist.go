package dictionary

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
	"ritm/internal/storage"
	"ritm/internal/wire"
)

// Durable-state hooks: the encodings and restore paths the storage tier
// (internal/storage) persists dictionaries through. Two artifact kinds
// exist:
//
//   - PersistentState is a checkpoint: the full committed state of one
//     dictionary side (issuance log, layout descriptor — capacity
//     included — latest signed root, freshness, and, on the authority
//     side, the freshness-chain seed).
//   - UpdateRecord is a WAL entry: one signed ∆ update batch (the exact
//     IssuanceMessage that crossed the dissemination network), plus the
//     authority's chain seed when the record was written CA-side.
//
// Restoring NEVER trusts the stored bytes: a replica is rebuilt by
// replaying the log through Replica.Update, which re-verifies the root
// signature against the trust anchor and the rebuilt root against the
// signed root — exactly the acceptance rule for a message fresh off the
// network (Fig 2, update step 3). An authority restore additionally checks
// that the persisted chain seed reproduces the signed anchor. Storage
// corruption that survives the storage tier's checksums therefore
// surfaces as a loud verification error here, never as an unverifiable
// root being served.

// persistStateVersion versions the v1 PersistentState encoding. Two
// checkpoint formats coexist: this wire-style v1 encoding (log + root;
// restore replays) and the offset-indexed v2 format (see ckptv2.go;
// restore materializes, readers may mmap). Writers emit v2; decoders
// accept both — the v1 leading version byte 0x01 and the v2 magic's 'R'
// disambiguate on the first byte. A v1 checkpoint is read once and
// rewritten as v2 by RecoverReplicaLog; decoding is refused only on
// corruption, never on version.
const persistStateVersion = 1

// PersistentState is the serializable committed state of one dictionary
// side (checkpoint payload). The layout descriptor is persisted in full —
// including the forest bucket capacity — so a restore can never silently
// change proof shapes.
type PersistentState struct {
	// Layout is the commitment-structure descriptor the state was built
	// with.
	Layout LayoutKind
	// Log is the issuance-ordered serial log; replaying it into an empty
	// tree of the same layout, in the batches recorded by Batches,
	// reproduces the dictionary exactly.
	Log []serial.Number
	// Batches is the batch structure of the insertion history: the
	// cumulative count at the end of each insertion batch, ascending, the
	// last equal to len(Log). Forest-layout roots depend on it (bucket
	// splits chunk point-in-time content), so restoring under a different
	// batching could commit to a different root and fail verification.
	Batches []uint64
	// Root is the latest verified signed root; nil only for a dictionary
	// that never saw a publication.
	Root *SignedRoot
	// Freshness is the latest verified freshness-statement value; restored
	// best-effort (its period is re-derived from the clock on restore, and
	// a statement stale by then is simply dropped and replaced by the next
	// pull).
	Freshness cryptoutil.Hash
	// ChainSeed is the authority's freshness-chain seed (nil on
	// replica-side states). It is secret — CA-side storage only.
	ChainSeed *cryptoutil.Hash
}

// Encode serializes the state.
func (st *PersistentState) Encode() []byte {
	e := wire.NewEncoder(256 + 8*len(st.Log))
	e.Uint8(persistStateVersion)
	e.Uint32(uint32(st.Layout))
	e.Uvarint(uint64(len(st.Log)))
	for _, s := range st.Log {
		e.BytesField(s.Raw())
	}
	e.Uvarint(uint64(len(st.Batches)))
	prev := uint64(0)
	for _, b := range st.Batches {
		e.Uvarint(b - prev) // ascending: delta-encoded
		prev = b
	}
	if st.Root != nil {
		e.Bool(true)
		e.BytesField(st.Root.Encode())
	} else {
		e.Bool(false)
	}
	e.Raw(st.Freshness[:])
	if st.ChainSeed != nil {
		e.Bool(true)
		e.Raw(st.ChainSeed[:])
	} else {
		e.Bool(false)
	}
	return e.Bytes()
}

// DecodePersistentState parses a checkpoint payload in either format:
// the v1 encoding produced by Encode, or the offset-indexed v2 format —
// materialized back into the in-memory PersistentState, so full-replay
// restore paths (the authority's) are format-agnostic.
func DecodePersistentState(buf []byte) (*PersistentState, error) {
	if IsStateV2(buf) {
		st, err := OpenMappedState(buf)
		if err != nil {
			return nil, err
		}
		return st.toPersistent()
	}
	d := wire.NewDecoder(buf)
	if v := d.Uint8(); v != persistStateVersion {
		if d.Err() != nil {
			return nil, fmt.Errorf("decode persistent state: %w", d.Err())
		}
		return nil, fmt.Errorf("decode persistent state: unknown version %d", v)
	}
	var st PersistentState
	st.Layout = LayoutKind(d.Uint32())
	count := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode persistent state: %w", d.Err())
	}
	const maxLog = 1 << 28 // sanity bound, far beyond any real dictionary
	if count > maxLog {
		return nil, fmt.Errorf("decode persistent state: log of %d entries exceeds limit", count)
	}
	st.Log = make([]serial.Number, 0, count)
	for i := uint64(0); i < count; i++ {
		s, err := serial.New(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode persistent state serial %d: %w", i, err)
		}
		st.Log = append(st.Log, s)
	}
	nBatches := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode persistent state: %w", d.Err())
	}
	if nBatches > count {
		return nil, fmt.Errorf("decode persistent state: %d batches for %d entries", nBatches, count)
	}
	prev := uint64(0)
	for i := uint64(0); i < nBatches; i++ {
		prev += d.Uvarint()
		st.Batches = append(st.Batches, prev)
	}
	if d.Bool() {
		root, err := DecodeSignedRoot(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode persistent state: %w", err)
		}
		st.Root = root
	}
	fresh, _ := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
	st.Freshness = fresh
	if d.Bool() {
		seed, _ := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
		st.ChainSeed = &seed
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("decode persistent state: %w", d.Err())
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode persistent state: %w", err)
	}
	return &st, nil
}

// UpdateRecord is one WAL entry: a signed issuance batch, plus — on
// authority-side records — the freshness-chain seed behind the batch's
// root (each insert rotates the chain, and the seed cannot be recovered
// from the signed message, which only commits its anchor). Replica-side
// records carry the batch bounds the update was applied with, so a WAL
// replay reproduces the structure a coalesced catch-up built.
type UpdateRecord struct {
	Msg    *IssuanceMessage
	Seed   *cryptoutil.Hash
	Bounds []uint64
}

// Encode serializes the record.
func (r *UpdateRecord) Encode() []byte {
	e := wire.NewEncoder(256)
	if r.Seed != nil {
		e.Bool(true)
		e.Raw(r.Seed[:])
	} else {
		e.Bool(false)
	}
	e.BytesField(r.Msg.Encode())
	e.Uvarint(uint64(len(r.Bounds)))
	prev := uint64(0)
	for _, b := range r.Bounds {
		e.Uvarint(b - prev)
		prev = b
	}
	return e.Bytes()
}

// DecodeUpdateRecord parses a record encoded by Encode.
func DecodeUpdateRecord(buf []byte) (*UpdateRecord, error) {
	d := wire.NewDecoder(buf)
	var r UpdateRecord
	if d.Bool() {
		seed, _ := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
		r.Seed = &seed
	}
	msgBytes := d.BytesField()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode update record: %w", d.Err())
	}
	msg, err := DecodeIssuanceMessage(msgBytes)
	if err != nil {
		return nil, fmt.Errorf("decode update record: %w", err)
	}
	r.Msg = msg
	nBounds := d.Uvarint()
	if nBounds > uint64(len(msg.Serials)) {
		return nil, fmt.Errorf("decode update record: %d bounds for %d serials", nBounds, len(msg.Serials))
	}
	prev := uint64(0)
	for i := uint64(0); i < nBounds; i++ {
		prev += d.Uvarint()
		r.Bounds = append(r.Bounds, prev)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode update record: %w", err)
	}
	return &r, nil
}

// freshnessRecordTag is the first byte of a freshness WAL record. An
// UpdateRecord's first byte is always a wire Bool (0x00 or 0x01) and a
// v2 checkpoint opens with 'R', so the tag dispatches unambiguously.
const freshnessRecordTag = 0xF5

// FreshnessRecord is a WAL entry recording a verified freshness-statement
// value. Replica-side stores append one per adopted statement so that a
// restart — and, more importantly, a mapped reader overlaying the WAL —
// serves the statement of the current period instead of regressing to the
// signed root's anchor until the next refresh. The value re-verifies
// against the root's chain anchor on replay, so a corrupted record can
// only be dropped, never served.
type FreshnessRecord struct {
	Value cryptoutil.Hash
}

// Encode serializes the record.
func (r *FreshnessRecord) Encode() []byte {
	buf := make([]byte, 1+cryptoutil.HashSize)
	buf[0] = freshnessRecordTag
	copy(buf[1:], r.Value[:])
	return buf
}

// IsFreshnessRecord reports whether a WAL payload is a freshness record.
func IsFreshnessRecord(buf []byte) bool {
	return len(buf) > 0 && buf[0] == freshnessRecordTag
}

// DecodeFreshnessRecord parses a record encoded by Encode.
func DecodeFreshnessRecord(buf []byte) (*FreshnessRecord, error) {
	if len(buf) != 1+cryptoutil.HashSize || buf[0] != freshnessRecordTag {
		return nil, fmt.Errorf("decode freshness record: %d bytes", len(buf))
	}
	var r FreshnessRecord
	copy(r.Value[:], buf[1:])
	return &r, nil
}

// PersistentState exports the replica's current committed state for a
// checkpoint. It reads one published snapshot, so the log, root, and
// freshness are mutually consistent even under concurrent updates.
func (r *Replica) PersistentState() *PersistentState {
	snap := r.Snapshot()
	return &PersistentState{
		Layout:    r.layoutKind,
		Log:       snap.Log(),
		Batches:   snap.Batches(),
		Root:      snap.Root(),
		Freshness: snap.Freshness(),
	}
}

// RestoreReplica rebuilds a replica from a checkpoint state, re-verifying
// everything against the trust anchor pub: the persisted log is replayed
// through Update, which accepts it only if the rebuilt root matches the
// persisted signed root AND that root's signature verifies — a corrupted
// or tampered checkpoint fails here, loudly, instead of producing a
// replica that would serve unverifiable statuses. The freshness statement
// is re-applied best-effort (it re-verifies against the chain anchor; if
// it is stale by now it is simply dropped and the next pull replaces it).
// now is the Unix time used for that freshness evaluation.
func RestoreReplica(ca CAID, pub ed25519.PublicKey, st *PersistentState, now int64) (*Replica, error) {
	r := NewReplicaWithLayout(ca, pub, st.Layout)
	if st.Root == nil {
		if len(st.Log) != 0 {
			return nil, fmt.Errorf("dictionary: restore %s: %d logged revocations but no signed root", ca, len(st.Log))
		}
		return r, nil
	}
	// Replay under the persisted batch structure: forest roots depend on
	// it, and the final root must reproduce the signed one.
	if err := r.UpdateWithBounds(&IssuanceMessage{Serials: st.Log, Root: st.Root}, st.Batches); err != nil {
		return nil, fmt.Errorf("dictionary: restore %s: %w", ca, err)
	}
	if !st.Freshness.IsZero() && !st.Freshness.Equal(st.Root.Anchor) {
		// Best-effort: ApplyFreshness re-verifies the value against the
		// anchor for the current period; staleness is not an error.
		_ = r.ApplyFreshness(&FreshnessStatement{CA: ca, Value: st.Freshness}, now)
	}
	return r, nil
}

// ReplayUpdate applies a WAL-recovered issuance message (with the batch
// bounds it was originally applied under) to a replica. It tolerates
// overlap with state the replica already holds (a crash between
// checkpoint install and WAL truncation leaves records that partially
// predate the checkpoint): already-covered serials are trimmed and a
// fully-covered record degrades to a root-only update, which still
// verifies the recorded root against the replica's state. Gaps — a record
// starting beyond the replica's count — fail with ErrDesynchronized, as
// they would coming off the network.
func ReplayUpdate(r *Replica, msg *IssuanceMessage, bounds []uint64) error {
	if msg == nil || msg.Root == nil {
		return fmt.Errorf("dictionary: replay of nil issuance message")
	}
	have := r.Count()
	switch {
	case msg.Root.N < have:
		// Entirely covered by newer state; nothing to verify against.
		return nil
	case msg.Root.N == have:
		return r.Update(&IssuanceMessage{Root: msg.Root})
	default:
		missing := msg.Root.N - have
		if uint64(len(msg.Serials)) > missing {
			msg = &IssuanceMessage{Serials: msg.Serials[uint64(len(msg.Serials))-missing:], Root: msg.Root}
		}
		// Bounds are absolute counts; those at or below the replica's
		// count are skipped by the replay automatically.
		return r.UpdateWithBounds(msg, bounds)
	}
}

// ApplyLogRecord applies one raw WAL payload — an update record or a
// freshness record — to a replica, with exactly the recovery loop's
// semantics: update records go through the overlap-tolerant ReplayUpdate
// (signature verified, rebuilt root must match the signed root), and
// freshness records re-verify against the chain anchor best-effort (a
// stale statement is dropped silently, never an error). It is the shared
// apply entry point of WAL replay and of replication: a follower origin
// feeds the leader's shipped frames through here, so a frame a recovery
// would reject — a forged root, a divergent history — is rejected on the
// wire too, not mirrored. now is the Unix time used for freshness
// evaluation.
func ApplyLogRecord(r *Replica, raw []byte, now int64) error {
	if IsFreshnessRecord(raw) {
		rec, err := DecodeFreshnessRecord(raw)
		if err != nil {
			return fmt.Errorf("dictionary: decode WAL record for %s: %w", r.CA(), err)
		}
		_ = r.ApplyFreshness(&FreshnessStatement{CA: r.CA(), Value: rec.Value}, now)
		return nil
	}
	rec, err := DecodeUpdateRecord(raw)
	if err != nil {
		return fmt.Errorf("dictionary: decode WAL record for %s: %w", r.CA(), err)
	}
	if err := ReplayUpdate(r, rec.Msg, rec.Bounds); err != nil {
		return fmt.Errorf("dictionary: replay WAL record for %s: %w", r.CA(), err)
	}
	return nil
}

// RecoverReplicaLog rebuilds a replica from an opened durable log. A v2
// checkpoint takes the map-don't-replay path: the commitment structure is
// materialized straight off the encoded arrays with zero rehashing, after
// the signed root's signature and its agreement with the stored structure
// are verified (see the trust note in ckptv2.go). A v1 checkpoint is
// restored the original way — full replay through RestoreReplica — and
// then rewritten in place as v2, so the migration cost is paid exactly
// once per store; decoding is refused only on corruption, never on
// version. WAL records after the checkpoint are replayed via ReplayUpdate
// (update records) or ApplyFreshness (freshness records, best-effort).
//
// The persisted layout descriptor must equal layout: adopting either
// silently would change proof shapes (or reject every future update)
// without the operator noticing, so a mismatch is an error — wipe the
// store to change layouts. It is the shared recovery protocol of every
// replica-holding component (the RA's store and the distribution point);
// the caller owns the log's lifecycle.
func RecoverReplicaLog(lg storage.Log, ca CAID, pub ed25519.PublicKey, layout LayoutKind, now int64) (*Replica, error) {
	ckpt, wal, err := lg.Load()
	if err != nil {
		return nil, fmt.Errorf("dictionary: load durable log for %s: %w", ca, err)
	}
	replica := NewReplicaWithLayout(ca, pub, layout)
	migrate := false
	if IsStateV2(ckpt) {
		st, err := OpenMappedState(ckpt)
		if err != nil {
			return nil, fmt.Errorf("dictionary: decode checkpoint for %s: %w", ca, err)
		}
		if st.layout != layout {
			return nil, fmt.Errorf("dictionary: %s persisted with layout %v, configured for %v (the layout — bucket capacity included — is part of the committed state; wipe the data dir to change it)",
				ca, st.layout, layout)
		}
		if replica, err = restoreReplicaV2(ca, pub, st, now); err != nil {
			return nil, err
		}
	} else if ckpt != nil {
		st, err := DecodePersistentState(ckpt)
		if err != nil {
			return nil, fmt.Errorf("dictionary: decode checkpoint for %s: %w", ca, err)
		}
		if st.Layout != layout {
			return nil, fmt.Errorf("dictionary: %s persisted with layout %v, configured for %v (the layout — bucket capacity included — is part of the committed state; wipe the data dir to change it)",
				ca, st.Layout, layout)
		}
		if replica, err = RestoreReplica(ca, pub, st, now); err != nil {
			return nil, err
		}
		migrate = true
	}
	for i, raw := range wal {
		if err := ApplyLogRecord(replica, raw, now); err != nil {
			return nil, fmt.Errorf("WAL record %d: %w", i, err)
		}
	}
	if migrate {
		// One-time v1 → v2 rewrite: the replayed state was just verified in
		// full, so persisting it as v2 loses nothing — and every later
		// restart (and mapped reader) gets the offset-indexed format.
		if err := lg.Checkpoint(replica.PersistentStateV2()); err != nil {
			return nil, fmt.Errorf("dictionary: rewrite v1 checkpoint for %s as v2: %w", ca, err)
		}
	}
	return replica, nil
}

// BatchBounds returns a copy of the authority's insertion batch bounds
// (the cumulative count at the end of each insert). Recovery tooling
// slices it to re-feed a lagging distribution point a suffix under the
// authority's exact batch structure.
func (a *Authority) BatchBounds() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]uint64(nil), a.tree.BatchBounds()...)
}

// ChainSeed returns the secret seed of the authority's current freshness
// chain, for CA-side WAL records. See cryptoutil.Chain.Seed for the
// sensitivity caveat.
func (a *Authority) ChainSeed() cryptoutil.Hash {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.chain.Seed()
}

// PersistentState exports the authority's committed state — log, signed
// root, and chain seed — for a checkpoint.
func (a *Authority) PersistentState() *PersistentState {
	a.mu.Lock()
	defer a.mu.Unlock()
	seed := a.chain.Seed()
	return &PersistentState{
		Layout:    a.cfg.Layout,
		Log:       a.tree.Log(),
		Batches:   append([]uint64(nil), a.tree.BatchBounds()...),
		Root:      a.root,
		ChainSeed: &seed,
	}
}

// RestoreAuthority rebuilds a CA-side dictionary from a checkpoint plus
// the WAL records appended after it, verifying every step: the rebuilt
// tree must reproduce each recorded signed root, each root's signature
// must verify under the configured signer's public key, and each chain
// seed must hash to the root's committed anchor. A restored authority is
// bit-for-bit the one that crashed — same tree, same chain, same signed
// root (and therefore the same dissemination ETag).
//
// The layout in cfg must match the persisted one: silently adopting
// either would change proof shapes (or reject every future replica
// update) without the operator noticing.
func RestoreAuthority(cfg AuthorityConfig, st *PersistentState, records []*UpdateRecord) (*Authority, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ChainLength == 0 {
		cfg.ChainLength = DefaultChainLength
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	if cfg.Layout != st.Layout {
		return nil, fmt.Errorf("dictionary: restore authority %s: configured layout %v, persisted %v (the layout — bucket capacity included — is part of the committed state)",
			cfg.CA, cfg.Layout, st.Layout)
	}
	a := &Authority{cfg: cfg, tree: NewTreeWithLayout(cfg.Layout)}
	if err := a.adoptState(st); err != nil {
		return nil, err
	}
	for i, rec := range records {
		if err := a.applyRecord(rec); err != nil {
			return nil, fmt.Errorf("dictionary: restore authority %s: WAL record %d: %w", cfg.CA, i, err)
		}
	}
	return a, nil
}

// adoptState installs a verified checkpoint into a fresh authority,
// replaying the log under its recorded batch structure (forest
// bucketization depends on it).
func (a *Authority) adoptState(st *PersistentState) error {
	if st.Root == nil || st.ChainSeed == nil {
		return fmt.Errorf("dictionary: restore authority %s: checkpoint missing root or chain seed", a.cfg.CA)
	}
	start := uint64(0)
	for _, b := range st.Batches {
		if b <= start || b > uint64(len(st.Log)) {
			continue
		}
		if err := a.tree.InsertBatch(st.Log[start:b]); err != nil {
			return fmt.Errorf("dictionary: restore authority %s: %w", a.cfg.CA, err)
		}
		start = b
	}
	if start < uint64(len(st.Log)) {
		if err := a.tree.InsertBatch(st.Log[start:]); err != nil {
			return fmt.Errorf("dictionary: restore authority %s: %w", a.cfg.CA, err)
		}
	}
	return a.install(st.Root, *st.ChainSeed)
}

// applyRecord replays one authority WAL record: insert the batch's
// not-yet-applied suffix, then install the recorded root and chain.
func (a *Authority) applyRecord(rec *UpdateRecord) error {
	if rec.Msg == nil || rec.Msg.Root == nil {
		return fmt.Errorf("nil issuance message")
	}
	if rec.Seed == nil {
		return fmt.Errorf("record carries no chain seed")
	}
	have := a.tree.Count()
	root := rec.Msg.Root
	switch {
	case root.N < have:
		return nil // covered by the checkpoint
	case root.N > have:
		serials := rec.Msg.Serials
		missing := root.N - have
		if uint64(len(serials)) < missing {
			return fmt.Errorf("%w: record covers up to %d, tree has %d, batch of %d", ErrDesynchronized, root.N, have, len(serials))
		}
		if err := a.tree.InsertBatch(serials[uint64(len(serials))-missing:]); err != nil {
			return err
		}
	}
	return a.install(root, *rec.Seed)
}

// install verifies (signature, root match, count, chain anchor) and adopts
// a signed root plus its chain seed. Used only on the restore path; the
// caller is the constructor, so no locking.
func (a *Authority) install(root *SignedRoot, seed cryptoutil.Hash) error {
	if root.CA != a.cfg.CA {
		return fmt.Errorf("persisted root names %s, restoring %s", root.CA, a.cfg.CA)
	}
	if err := root.VerifySignature(a.cfg.Signer.Public()); err != nil {
		return err
	}
	if a.tree.Count() != root.N {
		return fmt.Errorf("%w: rebuilt %d revocations, root commits %d", ErrRootMismatch, a.tree.Count(), root.N)
	}
	if !a.tree.Root().Equal(root.Root) {
		return fmt.Errorf("%w: rebuilt root differs at n=%d", ErrRootMismatch, root.N)
	}
	chain := cryptoutil.NewChainFromSeed(seed, int(root.ChainLen))
	if !chain.Anchor().Equal(root.Anchor) {
		return fmt.Errorf("%w: persisted chain seed does not reproduce the signed anchor", ErrRootMismatch)
	}
	a.root = root
	a.chain = chain
	return nil
}
