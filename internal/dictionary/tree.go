// Package dictionary implements RITM's core contribution: the append-only
// authenticated dictionary that every CA maintains for its revocations and
// that every Revocation Agent replicates (§III of the paper, Fig 2).
//
// The dictionary is a hash tree whose leaves are (serial number ‖ revocation
// number) pairs. Revocations are numbered consecutively from 1 in issuance
// order, which fixes the insertion history; leaves are sorted
// lexicographically by serial number, which makes both presence and absence
// efficiently provable. A CA-signed root {root, n, Hᵐ(v), t} commits to the
// dictionary contents, the revocation count, a hash-chain anchor for
// freshness statements, and the signing time.
//
// Three roles interact with a dictionary:
//
//   - the Authority (a CA) inserts revocations, signs roots, and emits
//     freshness statements every ∆;
//   - a Replica (an RA) replays insertions, accepts them only when its
//     rebuilt root matches the signed root, and produces revocation
//     statuses (proof + signed root + freshness statement);
//   - a verifier (a RITM client) checks a Status against the CA public key
//     and the 2∆ freshness policy, with no dictionary state of its own.
package dictionary

import (
	"errors"
	"fmt"
	"slices"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
	"ritm/internal/wire"
)

// Errors returned by dictionary operations.
var (
	// ErrDuplicateSerial reports an insert of an already-revoked serial.
	ErrDuplicateSerial = errors.New("dictionary: serial already revoked")
	// ErrRootMismatch reports that a replayed update does not reproduce the
	// CA-signed root (Fig 2, update step 3).
	ErrRootMismatch = errors.New("dictionary: rebuilt root does not match signed root")
	// ErrBadProof reports a presence/absence proof that fails verification.
	ErrBadProof = errors.New("dictionary: invalid proof")
	// ErrStale reports a freshness statement older than the 2∆ policy allows.
	ErrStale = errors.New("dictionary: revocation status is stale")
	// ErrDesynchronized reports a replica that is missing issuance messages.
	ErrDesynchronized = errors.New("dictionary: replica out of sync with authority")
	// ErrRevoked reports a presence proof: the certificate is revoked.
	ErrRevoked = errors.New("dictionary: certificate is revoked")
	// ErrCount reports an issuance message whose revocation count does not
	// extend the replica's count contiguously.
	ErrCount = errors.New("dictionary: non-contiguous revocation count")
)

// EmptyRoot is the root hash of a dictionary with no revocations. A fixed
// sentinel (rather than a zero hash) keeps the empty tree domain-separated
// from any real node value.
var EmptyRoot = cryptoutil.HashBytes([]byte("RITM/empty-tree/v1"))

// Leaf is one revocation: the certificate serial number and the revocation's
// sequence number (1-based, consecutive per dictionary).
type Leaf struct {
	Serial serial.Number
	Num    uint64
}

// payload returns the canonical byte encoding hashed into the tree.
func (l Leaf) payload() []byte {
	e := wire.NewEncoder(serial.MaxLen + 12)
	e.BytesField(l.Serial.Raw())
	e.Uvarint(l.Num)
	return e.Bytes()
}

// hash returns the domain-separated leaf hash.
func (l Leaf) hash() cryptoutil.Hash {
	return cryptoutil.HashLeaf(l.payload())
}

// Tree is the sorted hash tree underlying a dictionary. It is a mutable
// structure owned by a single Authority or Replica; it performs no locking
// of its own.
//
// The tree keeps every level of interior hashes so that audit paths are
// produced in O(log n) without recomputation. A batch insert merges the new
// leaves into the sorted order and recomputes interior levels incrementally:
// every node left of the first changed leaf position is copied from the
// previous version, and only nodes at or right of it are rehashed. A batch
// landing at the right edge of the serial space therefore costs
// O(k·log n); a batch landing at position p costs O(n−p) (positions shift,
// so everything to the right re-pairs), with the full O(n) of the paper's
// "insert sₓ,n into the tree and rebuild it" as the worst case.
//
// Mutations are copy-on-write: InsertBatch never writes into the leaf,
// leaf-hash, or level arrays of the previous version, so a treeView taken
// before a mutation (see Snapshot) stays valid and immutable forever.
type Tree struct {
	leaves     []Leaf            // sorted by serial
	leafHashes []cryptoutil.Hash // parallel to leaves; == levels[0]
	levels     [][]cryptoutil.Hash
	bySerial   map[string]uint64 // canonical serial bytes -> revocation number
	log        []serial.Number   // issuance order; log[i] has Num == i+1
}

// treeView is one immutable version of the tree's proving state: the sorted
// leaves plus every interior level. Tree exposes its current version via
// view(); Snapshot freezes one. All methods are read-only and therefore safe
// for unsynchronized concurrent use as long as the arrays are never written
// again — which the copy-on-write discipline of InsertBatch guarantees.
type treeView struct {
	leaves []Leaf
	levels [][]cryptoutil.Hash
}

// view returns the tree's current immutable proving state.
func (t *Tree) view() treeView { return treeView{leaves: t.leaves, levels: t.levels} }

// root returns the view's root hash (EmptyRoot when empty).
func (v treeView) root() cryptoutil.Hash {
	if len(v.leaves) == 0 {
		return EmptyRoot
	}
	return v.levels[len(v.levels)-1][0]
}

// revoked reports whether s is a leaf of the view, by binary search (the
// view carries no serial index; O(log n) is fine for its read-only users).
func (v treeView) revoked(s serial.Number) (uint64, bool) {
	lo := v.searchLeaf(s)
	if lo < len(v.leaves) && v.leaves[lo].Serial.Equal(s) {
		return v.leaves[lo].Num, true
	}
	return 0, false
}

// searchLeaf returns the index of the first leaf with Serial >= s.
func (v treeView) searchLeaf(s serial.Number) int {
	lo, hi := 0, len(v.leaves)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.leaves[mid].Serial.Compare(s) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// NewTree returns an empty dictionary tree.
func NewTree() *Tree {
	return &Tree{bySerial: make(map[string]uint64)}
}

// Count returns n, the number of revocations in the dictionary.
func (t *Tree) Count() uint64 { return uint64(len(t.log)) }

// Root returns the current root hash (EmptyRoot when the tree is empty).
func (t *Tree) Root() cryptoutil.Hash {
	if len(t.leaves) == 0 {
		return EmptyRoot
	}
	return t.levels[len(t.levels)-1][0]
}

// Revoked reports whether s is in the dictionary, and its revocation number.
func (t *Tree) Revoked(s serial.Number) (uint64, bool) {
	num, ok := t.bySerial[string(s.Raw())]
	return num, ok
}

// Log returns a copy of the issuance-ordered serial log. Replaying the log
// into an empty tree reproduces the dictionary exactly; it is the canonical
// serialized form.
func (t *Tree) Log() []serial.Number {
	out := make([]serial.Number, len(t.log))
	copy(out, t.log)
	return out
}

// LogSuffix returns the serials with revocation numbers in (from, to], used
// by the dissemination sync protocol to catch a replica up.
func (t *Tree) LogSuffix(from, to uint64) ([]serial.Number, error) {
	if from > to || to > t.Count() {
		return nil, fmt.Errorf("dictionary: log suffix (%d, %d] of %d", from, to, t.Count())
	}
	out := make([]serial.Number, to-from)
	copy(out, t.log[from:to])
	return out, nil
}

// InsertBatch revokes the given serials, assigning consecutive revocation
// numbers in slice order, and rebuilds the tree. It validates the whole
// batch before mutating anything, so on error the tree is unchanged.
func (t *Tree) InsertBatch(serials []serial.Number) error {
	if len(serials) == 0 {
		return nil
	}
	// Validate first: no serial may repeat, within the batch or historically.
	inBatch := make(map[string]struct{}, len(serials))
	for _, s := range serials {
		if s.IsZero() {
			return fmt.Errorf("dictionary: insert of zero-value serial")
		}
		key := string(s.Raw())
		if _, dup := t.bySerial[key]; dup {
			return fmt.Errorf("%w: %v", ErrDuplicateSerial, s)
		}
		if _, dup := inBatch[key]; dup {
			return fmt.Errorf("%w: %v appears twice in batch", ErrDuplicateSerial, s)
		}
		inBatch[key] = struct{}{}
	}

	// Assign revocation numbers in issuance order.
	newLeaves := make([]Leaf, len(serials))
	next := t.Count() + 1
	for i, s := range serials {
		newLeaves[i] = Leaf{Serial: s, Num: next + uint64(i)}
		t.bySerial[string(s.Raw())] = newLeaves[i].Num
		t.log = append(t.log, s)
	}
	// Sort the batch by serial, then merge with the existing sorted leaves.
	// The merge writes into fresh arrays (copy-on-write): the previous
	// version's arrays — possibly aliased by a published Snapshot — are
	// never touched.
	sortLeaves(newLeaves)
	merged := make([]Leaf, 0, len(t.leaves)+len(newLeaves))
	mergedHashes := make([]cryptoutil.Hash, 0, cap(merged))
	firstChanged := -1 // merged index of the first new leaf
	i, j := 0, 0
	for i < len(t.leaves) && j < len(newLeaves) {
		if t.leaves[i].Serial.Compare(newLeaves[j].Serial) < 0 {
			merged = append(merged, t.leaves[i])
			mergedHashes = append(mergedHashes, t.leafHashes[i])
			i++
		} else {
			if firstChanged < 0 {
				firstChanged = len(merged)
			}
			merged = append(merged, newLeaves[j])
			mergedHashes = append(mergedHashes, newLeaves[j].hash())
			j++
		}
	}
	for ; i < len(t.leaves); i++ {
		merged = append(merged, t.leaves[i])
		mergedHashes = append(mergedHashes, t.leafHashes[i])
	}
	for ; j < len(newLeaves); j++ {
		if firstChanged < 0 {
			firstChanged = len(merged)
		}
		merged = append(merged, newLeaves[j])
		mergedHashes = append(mergedHashes, newLeaves[j].hash())
	}
	oldLevels := t.levels
	t.leaves = merged
	t.leafHashes = mergedHashes
	t.rebuildFrom(oldLevels, firstChanged)
	return nil
}

// RebuildFromLog resets the tree to contain exactly the given issuance log.
// Replicas use it to roll back a rejected update.
func (t *Tree) RebuildFromLog(log []serial.Number) error {
	fresh := NewTree()
	if err := fresh.InsertBatch(log); err != nil {
		return fmt.Errorf("rebuild from log: %w", err)
	}
	*t = *fresh
	return nil
}

// rebuildFrom recomputes the interior levels from the (already replaced)
// leaf hashes, reusing every node left of leaf index firstChanged from
// oldLevels: those nodes cover only unchanged, unshifted leaves, so their
// values — including the odd-promotion rule, which depends only on indices
// below them — are identical. Fresh arrays are allocated for every level,
// never written through oldLevels, preserving snapshot immutability.
//
// A negative firstChanged (no leaf changed) still rebuilds everything, as
// does 0; callers pass the merge position of the first inserted leaf.
func (t *Tree) rebuildFrom(oldLevels [][]cryptoutil.Hash, firstChanged int) {
	if len(t.leafHashes) == 0 {
		t.levels = nil
		return
	}
	if firstChanged < 0 {
		firstChanged = 0
	}
	levels := make([][]cryptoutil.Hash, 1, 2+bitsLen(len(t.leafHashes)))
	levels[0] = t.leafHashes
	cur := t.leafHashes
	dirty := firstChanged // first index of cur that differs from oldLevels
	for lvl := 0; len(cur) > 1; lvl++ {
		next := make([]cryptoutil.Hash, (len(cur)+1)/2)
		// A parent k is unchanged iff both children are below dirty, i.e.
		// 2k+1 < dirty — and the old level must actually hold it.
		keep := dirty / 2
		if lvl+1 < len(oldLevels) {
			if n := len(oldLevels[lvl+1]); keep > n {
				keep = n
			}
			copy(next[:keep], oldLevels[lvl+1])
		} else {
			keep = 0
		}
		for k := keep; k < len(next); k++ {
			if 2*k+1 < len(cur) {
				next[k] = cryptoutil.HashNode(cur[2*k], cur[2*k+1])
			} else {
				// Odd rightmost node: promoted unchanged; the verifier
				// reproduces the same rule from (index, size) alone.
				next[k] = cur[len(cur)-1]
			}
		}
		levels = append(levels, next)
		cur = next
		dirty = keep
	}
	t.levels = levels
}

// bitsLen returns ⌈log₂(n)⌉-ish capacity hint for the level slice.
func bitsLen(n int) int {
	b := 0
	for n > 1 {
		n = (n + 1) / 2
		b++
	}
	return b
}

// path returns the audit path for the leaf at index idx.
func (v treeView) path(idx int) []cryptoutil.Hash {
	if len(v.leaves) == 0 || idx < 0 || idx >= len(v.leaves) {
		return nil
	}
	path := make([]cryptoutil.Hash, 0, len(v.levels))
	for lvl := 0; lvl < len(v.levels)-1; lvl++ {
		nodes := v.levels[lvl]
		sib := idx ^ 1
		if sib < len(nodes) {
			path = append(path, nodes[sib])
		}
		// Odd rightmost node has no sibling: promoted, no path element.
		idx /= 2
	}
	return path
}

// proofLeaf builds the ProofLeaf for index idx.
func (v treeView) proofLeaf(idx int) *ProofLeaf {
	return &ProofLeaf{
		Serial: v.leaves[idx].Serial,
		Num:    v.leaves[idx].Num,
		Index:  uint64(idx),
		Path:   v.path(idx),
	}
}

// prove produces a presence or absence proof for s against the view. The
// proof verifies against root() and the leaf count.
func (v treeView) prove(s serial.Number) *Proof {
	n := len(v.leaves)
	if n == 0 {
		return &Proof{Kind: ProofAbsenceEmpty}
	}
	lo := v.searchLeaf(s)
	if lo < n && v.leaves[lo].Serial.Equal(s) {
		return &Proof{Kind: ProofPresence, Left: v.proofLeaf(lo)}
	}
	switch {
	case lo == 0:
		// s precedes every leaf: the first leaf bounds it from above.
		return &Proof{Kind: ProofAbsence, Right: v.proofLeaf(0)}
	case lo == n:
		// s follows every leaf: the last leaf bounds it from below.
		return &Proof{Kind: ProofAbsence, Left: v.proofLeaf(n - 1)}
	default:
		// s falls strictly between two adjacent leaves.
		return &Proof{Kind: ProofAbsence, Left: v.proofLeaf(lo - 1), Right: v.proofLeaf(lo)}
	}
}

// Prove produces a presence or absence proof for s against the current tree
// (Fig 2, prove step 1). The proof verifies against Root() and Count().
func (t *Tree) Prove(s serial.Number) *Proof {
	return t.view().prove(s)
}

// SerializedSize returns the size in bytes of the canonical serialized form
// (the issuance log), which is what a distribution point stores and ships.
func (t *Tree) SerializedSize() int {
	size := 0
	for _, s := range t.log {
		size += 1 + s.Len() // uvarint length (serials are ≤20 bytes) + bytes
	}
	return size
}

// MemoryFootprint estimates the resident bytes of the tree structure:
// leaves, leaf hashes, interior levels, and the serial index. It is an
// analytic estimate used by the storage-overhead experiment (§VII-D).
func (t *Tree) MemoryFootprint() int {
	const (
		hashBytes     = cryptoutil.HashSize
		leafOverhead  = 24 + 8 // slice header of serial + num
		mapEntryBytes = 48     // measured approximation per map entry
	)
	total := 0
	for _, lvl := range t.levels {
		total += len(lvl) * hashBytes
	}
	for _, l := range t.leaves {
		total += leafOverhead + l.Serial.Len()
	}
	total += len(t.bySerial) * mapEntryBytes
	for _, s := range t.log {
		total += 24 + s.Len()
	}
	return total
}

func sortLeaves(leaves []Leaf) {
	// Leaves never share serials (validated by InsertBatch), so the
	// comparison needs no tiebreaker.
	slices.SortFunc(leaves, func(a, b Leaf) int { return a.Serial.Compare(b.Serial) })
}
