// Package dictionary implements RITM's core contribution: the append-only
// authenticated dictionary that every CA maintains for its revocations and
// that every Revocation Agent replicates (§III of the paper, Fig 2).
//
// The dictionary is a hash structure whose leaves are (serial number ‖
// revocation number) pairs. Revocations are numbered consecutively from 1 in
// issuance order, which fixes the insertion history; leaves are sorted
// lexicographically by serial number, which makes both presence and absence
// efficiently provable. A CA-signed root {root, n, Hᵐ(v), t} commits to the
// dictionary contents, the revocation count, a hash-chain anchor for
// freshness statements, and the signing time.
//
// The commitment structure itself is pluggable (see Layout): the classic
// flat sorted hash tree (LayoutSorted) or a bucketed forest (LayoutForest)
// whose per-batch insert cost is O(k·log n) for any serial distribution.
// Authority and replica must agree on the layout; the issuance log and all
// dissemination wire formats are layout-agnostic.
//
// Three roles interact with a dictionary:
//
//   - the Authority (a CA) inserts revocations, signs roots, and emits
//     freshness statements every ∆;
//   - a Replica (an RA) replays insertions, accepts them only when its
//     rebuilt root matches the signed root, and produces revocation
//     statuses (proof + signed root + freshness statement);
//   - a verifier (a RITM client) checks a Status against the CA public key
//     and the 2∆ freshness policy, with no dictionary state of its own.
package dictionary

import (
	"errors"
	"fmt"
	"slices"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// Errors returned by dictionary operations.
var (
	// ErrDuplicateSerial reports an insert of an already-revoked serial.
	ErrDuplicateSerial = errors.New("dictionary: serial already revoked")
	// ErrRootMismatch reports that a replayed update does not reproduce the
	// CA-signed root (Fig 2, update step 3).
	ErrRootMismatch = errors.New("dictionary: rebuilt root does not match signed root")
	// ErrBadProof reports a presence/absence proof that fails verification.
	ErrBadProof = errors.New("dictionary: invalid proof")
	// ErrStale reports a freshness statement older than the 2∆ policy allows.
	ErrStale = errors.New("dictionary: revocation status is stale")
	// ErrDesynchronized reports a replica that is missing issuance messages.
	ErrDesynchronized = errors.New("dictionary: replica out of sync with authority")
	// ErrRevoked reports a presence proof: the certificate is revoked.
	ErrRevoked = errors.New("dictionary: certificate is revoked")
	// ErrCount reports an issuance message whose revocation count does not
	// extend the replica's count contiguously.
	ErrCount = errors.New("dictionary: non-contiguous revocation count")
)

// EmptyRoot is the root hash of a dictionary with no revocations, shared by
// every layout (empty content is empty content). A fixed sentinel (rather
// than a zero hash) keeps the empty dictionary domain-separated from any
// real node value.
var EmptyRoot = cryptoutil.HashBytes([]byte("RITM/empty-tree/v1"))

// Leaf is one revocation: the certificate serial number and the revocation's
// sequence number (1-based, consecutive per dictionary).
type Leaf struct {
	Serial serial.Number
	Num    uint64
}

// hash returns the domain-separated leaf hash. The preimage is the
// canonical wire encoding (length-prefixed serial bytes, then Num as a
// uvarint); HashLeafSerial assembles it on the stack because leaf hashing
// runs once per leaf per rebuild and must not allocate.
func (l Leaf) hash() cryptoutil.Hash {
	return cryptoutil.HashLeafSerial(l.Serial.Raw(), l.Num)
}

// Tree is a dictionary: the layout-independent state (serial index,
// issuance log, batch validation) over a pluggable commitment structure
// (Layout) that owns the hashed representation. It is a mutable structure
// owned by a single Authority or Replica; it performs no locking of its
// own.
//
// Mutations are copy-on-write: InsertBatch never writes into arrays
// reachable from a previously taken view, so a LayoutView frozen before a
// mutation (see Snapshot) stays valid and immutable forever.
type Tree struct {
	commit   Layout
	bySerial map[string]uint64 // canonical serial bytes -> revocation number
	log      []serial.Number   // issuance order; log[i] has Num == i+1
	// bounds records the cumulative revocation count after each InsertBatch,
	// strictly increasing, bounds[len-1] == Count(). It is the batch
	// structure of the insertion history — which the forest layout's
	// bucketization (and therefore its root) depends on: a bucket split
	// chunks whatever the bucket holds at that moment, so replaying the
	// same log under different batch boundaries can commit to a different
	// root. Synchronization and recovery paths carry these bounds so a
	// replica reproducing the history reproduces the structure exactly
	// (see Replica.UpdateWithBounds, PersistentState.Batches).
	bounds []uint64
}

// NewTree returns an empty dictionary tree with the default sorted layout.
func NewTree() *Tree {
	return NewTreeWithLayout(LayoutSorted)
}

// NewTreeWithLayout returns an empty dictionary tree with the given
// commitment layout.
func NewTreeWithLayout(kind LayoutKind) *Tree {
	return &Tree{commit: newLayout(kind), bySerial: make(map[string]uint64)}
}

// Layout returns the tree's commitment layout.
func (t *Tree) Layout() LayoutKind { return t.commit.kind() }

// HashedNodes returns the cumulative number of hash computations performed
// by inserts — the per-∆-cycle cost metric the layout benchmarks compare.
func (t *Tree) HashedNodes() uint64 { return t.commit.hashedNodes() }

// view returns the tree's current immutable proving state.
func (t *Tree) view() LayoutView { return t.commit.view() }

// Count returns n, the number of revocations in the dictionary.
func (t *Tree) Count() uint64 { return uint64(len(t.log)) }

// Root returns the current root hash (EmptyRoot when the tree is empty).
// It reads the layout's memoized root without exposing the backing arrays,
// so a root check between replayed sub-batches does not end the layout's
// private scratch window (see Layout).
func (t *Tree) Root() cryptoutil.Hash {
	return t.commit.rootHash()
}

// Revoked reports whether s is in the dictionary, and its revocation number.
func (t *Tree) Revoked(s serial.Number) (uint64, bool) {
	num, ok := t.bySerial[string(s.Raw())]
	return num, ok
}

// Log returns a copy of the issuance-ordered serial log. Replaying the log
// into an empty tree of the same layout reproduces the dictionary exactly;
// it is the canonical serialized form (and is layout-independent).
func (t *Tree) Log() []serial.Number {
	out := make([]serial.Number, len(t.log))
	copy(out, t.log)
	return out
}

// LogSuffix returns the serials with revocation numbers in (from, to], used
// by the dissemination sync protocol to catch a replica up.
//
// Aliasing contract: the result is a capacity-clipped sub-slice of the
// tree's log, not a copy. The log is append-only — InsertBatch writes only
// positions at or past the current length, never ones an earlier suffix
// covered — so a returned suffix is immutable for as long as the caller
// holds it. The one writer that rewinds the log (Replica's rollback) only
// rewinds to the last published snapshot, and suffixes of a replica are
// handed out via Snapshot.LogSuffix at exactly that published state, so no
// live suffix ever extends past a point a rollback can rewrite. The
// three-index slice caps capacity at the suffix length, so a caller's own
// append cannot write into the tree's log either.
func (t *Tree) LogSuffix(from, to uint64) ([]serial.Number, error) {
	if from > to || to > t.Count() {
		return nil, fmt.Errorf("dictionary: log suffix (%d, %d] of %d", from, to, t.Count())
	}
	return t.log[from:to:to], nil
}

// InsertBatch revokes the given serials, assigning consecutive revocation
// numbers in slice order, and rebuilds the commitment structure. It
// validates the whole batch before mutating anything, so on error the tree
// is unchanged.
func (t *Tree) InsertBatch(serials []serial.Number) error {
	if len(serials) == 0 {
		return nil
	}
	// Validate first: no serial may repeat, within the batch or historically.
	// Historic duplicates fall out of a bySerial lookup (no allocation);
	// in-batch duplicates are adjacent after the sort below, so no per-batch
	// set is needed.
	newLeaves := make([]Leaf, len(serials))
	next := t.Count() + 1
	for i, s := range serials {
		if s.IsZero() {
			return fmt.Errorf("dictionary: insert of zero-value serial")
		}
		if _, dup := t.bySerial[string(s.Raw())]; dup {
			return fmt.Errorf("%w: %v", ErrDuplicateSerial, s)
		}
		newLeaves[i] = Leaf{Serial: s, Num: next + uint64(i)}
	}
	// Sort the batch by serial; equal serials land adjacent.
	sortLeaves(newLeaves)
	for i := 1; i < len(newLeaves); i++ {
		if newLeaves[i].Serial.Compare(newLeaves[i-1].Serial) == 0 {
			return fmt.Errorf("%w: %v appears twice in batch", ErrDuplicateSerial, newLeaves[i].Serial)
		}
	}

	// Commit: index and log in issuance order, then hand the sorted batch to
	// the layout, which merges it copy-on-write: the previous version's
	// arrays — possibly aliased by a published Snapshot — are never touched.
	for _, s := range serials {
		t.log = append(t.log, s)
	}
	for _, lf := range newLeaves {
		t.bySerial[string(lf.Serial.Raw())] = lf.Num
	}
	t.commit.insert(newLeaves)
	t.bounds = append(t.bounds, t.Count())
	return nil
}

// BatchBounds returns the cumulative counts at which the tree's insertion
// batches ended (the newest last). The returned slice is shared
// copy-on-write with the tree (appends never write positions a previous
// caller observed); callers must not modify it.
func (t *Tree) BatchBounds() []uint64 { return t.bounds }

// treeCheckpoint captures one version of the tree for O(batch) rollback.
// Thanks to the layouts' copy-on-write discipline the capture is O(1): the
// checkpointed arrays are never written again, only replaced.
type treeCheckpoint struct {
	state     layoutState
	logLen    int
	boundsLen int
}

// checkpoint freezes the tree's current version. Replica.Update takes one
// before replaying a batch; the checkpointed state is exactly the state of
// the replica's last published snapshot.
func (t *Tree) checkpoint() treeCheckpoint {
	return treeCheckpoint{state: t.commit.checkpoint(), logLen: len(t.log), boundsLen: len(t.bounds)}
}

// rollback rewinds the tree to cp, undoing the InsertBatch calls (one or
// several — a bounds-structured update replays sub-batches) made since
// the checkpoint: the commitment structure is restored from the
// checkpoint (O(1)), the inserted keys leave the serial index, and the
// log and bounds are truncated. This replaces the old full RebuildFromLog
// replay on the rejected-update path: O(inserted) instead of re-inserting
// and re-hashing the whole log.
//
// The keys to delete come from the log tail — exactly what was actually
// inserted — NOT from the failed message's batch: a hostile message can
// pair a genuine signed root with a suffix re-listing serials revoked
// long ago (rejected as duplicates before insertion), and deleting by
// batch would evict those pre-existing serials from the index while they
// remain committed.
func (t *Tree) rollback(cp treeCheckpoint) {
	t.commit.restore(cp.state)
	for _, s := range t.log[cp.logLen:] {
		delete(t.bySerial, string(s.Raw()))
	}
	// Truncating the slice header never writes the array, so snapshots
	// sharing the log stay intact; later appends only touch positions the
	// failed batch wrote, which no published snapshot covers.
	t.log = t.log[:cp.logLen]
	t.bounds = t.bounds[:cp.boundsLen]
}

// RebuildFromLog resets the tree to contain exactly the given issuance log,
// preserving the layout. It is the general (full-replay) recovery path;
// the common rejected-update rollback uses checkpoint/rollback instead,
// which restores the last published state without re-inserting anything.
func (t *Tree) RebuildFromLog(log []serial.Number) error {
	fresh := NewTreeWithLayout(t.Layout())
	if err := fresh.InsertBatch(log); err != nil {
		return fmt.Errorf("rebuild from log: %w", err)
	}
	*t = *fresh
	return nil
}

// Prove produces a presence or absence proof for s against the current tree
// (Fig 2, prove step 1). The proof verifies against Root() and Count().
func (t *Tree) Prove(s serial.Number) *Proof {
	return t.commit.view().Prove(s)
}

// SerializedSize returns the size in bytes of the canonical serialized form
// (the issuance log), which is what a distribution point stores and ships.
func (t *Tree) SerializedSize() int {
	size := 0
	for _, s := range t.log {
		size += 1 + s.Len() // uvarint length (serials are ≤20 bytes) + bytes
	}
	return size
}

// MemoryFootprint estimates the resident bytes of the tree structure:
// the layout's hashed representation, the serial index, and the log. It is
// an analytic estimate used by the storage-overhead experiment (§VII-D).
func (t *Tree) MemoryFootprint() int {
	const mapEntryBytes = 48 // measured approximation per map entry
	total := t.commit.memoryFootprint()
	total += len(t.bySerial) * mapEntryBytes
	for _, s := range t.log {
		total += 24 + s.Len()
	}
	return total
}

func sortLeaves(leaves []Leaf) {
	// Equal serials only occur transiently during InsertBatch validation
	// (where they are rejected); their relative order is irrelevant, so the
	// comparison needs no tiebreaker.
	slices.SortFunc(leaves, func(a, b Leaf) int { return a.Serial.Compare(b.Serial) })
}
