package dictionary

import (
	"errors"
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

const testDelta = 10 * time.Second

func newTestAuthority(t *testing.T, now int64) *Authority {
	return newTestAuthorityWithLayout(t, now, LayoutSorted)
}

func newTestAuthorityWithLayout(t *testing.T, now int64, kind LayoutKind) *Authority {
	t.Helper()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAuthority(AuthorityConfig{
		CA:          "CA1",
		Signer:      signer,
		Delta:       testDelta,
		ChainLength: 16,
		Layout:      kind,
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAuthorityValidation(t *testing.T) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		cfg  AuthorityConfig
	}{
		{"missing CA", AuthorityConfig{Signer: signer, Delta: testDelta}},
		{"missing signer", AuthorityConfig{CA: "CA1", Delta: testDelta}},
		{"sub-second delta", AuthorityConfig{CA: "CA1", Signer: signer, Delta: time.Millisecond}},
		{"negative chain", AuthorityConfig{CA: "CA1", Signer: signer, Delta: testDelta, ChainLength: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewAuthority(tt.cfg, 0); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestInitialRootIsEmptyAndSigned(t *testing.T) {
	a := newTestAuthority(t, 1000)
	root := a.SignedRoot()
	if root.N != 0 {
		t.Errorf("initial N = %d, want 0", root.N)
	}
	if root.Root != EmptyRoot {
		t.Error("initial root is not EmptyRoot")
	}
	if root.Time != 1000 {
		t.Errorf("root time = %d, want 1000", root.Time)
	}
	if err := root.VerifySignature(a.PublicKey()); err != nil {
		t.Errorf("initial root signature: %v", err)
	}
}

func TestInsertProducesVerifiableIssuance(t *testing.T) {
	a := newTestAuthority(t, 1000)
	msg, err := a.Insert(mustSerials(t, 0xa, 0xb, 0xc), 1005)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Root.N != 3 {
		t.Errorf("N = %d, want 3", msg.Root.N)
	}
	if msg.Root.Time != 1005 {
		t.Errorf("time = %d, want 1005", msg.Root.Time)
	}
	if err := msg.Root.VerifySignature(a.PublicKey()); err != nil {
		t.Errorf("signature: %v", err)
	}
	if len(msg.Serials) != 3 {
		t.Errorf("serials = %d, want 3", len(msg.Serials))
	}
	if !a.Revoked(serial.FromUint64(0xb)) {
		t.Error("inserted serial not revoked")
	}
}

func TestInsertRotatesChain(t *testing.T) {
	// Fig 2 insert step 2: every insert draws a fresh v, so anchors differ.
	a := newTestAuthority(t, 0)
	r0 := a.SignedRoot()
	if _, err := a.Insert(mustSerials(t, 1), 10); err != nil {
		t.Fatal(err)
	}
	r1 := a.SignedRoot()
	if r0.Anchor == r1.Anchor {
		t.Error("anchor unchanged after insert; chain was not rotated")
	}
}

func TestInsertEmptyBatchRejected(t *testing.T) {
	a := newTestAuthority(t, 0)
	if _, err := a.Insert(nil, 0); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestInsertDuplicateKeepsStateClean(t *testing.T) {
	a := newTestAuthority(t, 0)
	if _, err := a.Insert(mustSerials(t, 5), 1); err != nil {
		t.Fatal(err)
	}
	before := a.SignedRoot()
	if _, err := a.Insert(mustSerials(t, 5), 2); !errors.Is(err, ErrDuplicateSerial) {
		t.Fatalf("err = %v, want ErrDuplicateSerial", err)
	}
	if !a.SignedRoot().Equal(before) {
		t.Error("failed insert replaced the signed root")
	}
}

func TestRefreshStatementPerPeriod(t *testing.T) {
	a := newTestAuthority(t, 0)
	root := a.SignedRoot()

	// Period 0, 1, 2 statements must chain to the anchor at the right depth.
	for p := 0; p < 3; p++ {
		now := int64(p) * int64(testDelta/time.Second)
		ref, err := a.Refresh(now)
		if err != nil {
			t.Fatalf("Refresh(p=%d): %v", p, err)
		}
		if ref.NewRoot != nil {
			t.Fatalf("Refresh(p=%d) rotated root prematurely", p)
		}
		if err := cryptoutil.VerifyChainValue(root.Anchor, ref.Statement.Value, p); err != nil {
			t.Errorf("statement for period %d does not verify: %v", p, err)
		}
	}
}

func TestRefreshRotatesExhaustedChain(t *testing.T) {
	a := newTestAuthority(t, 0) // chain length 16
	// Jump past the chain: period 16 ≥ m.
	now := int64(16 * (testDelta / time.Second))
	ref, err := a.Refresh(now)
	if err != nil {
		t.Fatal(err)
	}
	if ref.NewRoot == nil {
		t.Fatal("exhausted chain did not rotate the root")
	}
	if ref.NewRoot.Time != now {
		t.Errorf("new root time = %d, want %d", ref.NewRoot.Time, now)
	}
	if ref.Statement == nil || ref.Statement.Value != ref.NewRoot.Anchor {
		t.Error("rotation statement is not the new anchor")
	}
	if err := ref.NewRoot.VerifySignature(a.PublicKey()); err != nil {
		t.Errorf("rotated root signature: %v", err)
	}
}

func TestAuthorityProveEndToEnd(t *testing.T) {
	a := newTestAuthority(t, 0)
	if _, err := a.Insert(mustSerials(t, 0xdead), 5); err != nil {
		t.Fatal(err)
	}

	st, err := a.Prove(serial.FromUint64(0xdead), 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Check(serial.FromUint64(0xdead), a.PublicKey(), 12)
	if err != nil {
		t.Fatalf("Check revoked serial: %v", err)
	}
	if res != CheckRevoked {
		t.Errorf("Check = %v, want CheckRevoked", res)
	}

	st, err = a.Prove(serial.FromUint64(0xbeef), 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err = st.Check(serial.FromUint64(0xbeef), a.PublicKey(), 12)
	if err != nil {
		t.Fatalf("Check valid serial: %v", err)
	}
	if res != CheckValid {
		t.Errorf("Check = %v, want CheckValid", res)
	}
}

func TestStatusRejectsWrongKey(t *testing.T) {
	a := newTestAuthority(t, 0)
	other, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := a.Prove(serial.FromUint64(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Check(serial.FromUint64(1), other.Public(), 0); !errors.Is(err, cryptoutil.ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestStatusFreshnessWindow(t *testing.T) {
	a := newTestAuthority(t, 0)
	if _, err := a.Insert(mustSerials(t, 7), 0); err != nil {
		t.Fatal(err)
	}
	s := serial.FromUint64(9)
	deltaS := int64(testDelta / time.Second)

	// Status proven at period 0.
	st, err := a.Prove(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Accepted within the same period and one period later (2∆ policy)...
	for _, now := range []int64{0, deltaS - 1, deltaS, 2*deltaS - 1} {
		if _, err := st.Check(s, a.PublicKey(), now); err != nil {
			t.Errorf("Check at t=%d rejected: %v", now, err)
		}
	}
	// ...but not two periods later.
	if _, err := st.Check(s, a.PublicKey(), 2*deltaS); !errors.Is(err, ErrStale) {
		t.Errorf("stale status at 2∆: err = %v, want ErrStale", err)
	}
	// A replayed status far in the future fails even past the chain end.
	if _, err := st.Check(s, a.PublicKey(), deltaS*1000); !errors.Is(err, ErrStale) {
		t.Errorf("ancient status: err = %v, want ErrStale", err)
	}
}

func TestStatusFreshStatementExtendsValidity(t *testing.T) {
	a := newTestAuthority(t, 0)
	deltaS := int64(testDelta / time.Second)
	s := serial.FromUint64(9)

	st, err := a.Prove(s, 5*deltaS) // period 5 statement
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Check(s, a.PublicKey(), 5*deltaS+3); err != nil {
		t.Errorf("fresh status rejected: %v", err)
	}
	// Tampering with the freshness value must fail.
	st.Freshness[0] ^= 1
	if _, err := st.Check(s, a.PublicKey(), 5*deltaS+3); !errors.Is(err, ErrStale) {
		t.Errorf("tampered freshness: err = %v, want ErrStale", err)
	}
}

func TestStatusEncodeDecodeRoundTrip(t *testing.T) {
	a := newTestAuthority(t, 0)
	if _, err := a.Insert(mustSerials(t, 1, 2, 3), 0); err != nil {
		t.Fatal(err)
	}
	s := serial.FromUint64(2)
	st, err := a.Prove(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeStatus(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	res, err := decoded.Check(s, a.PublicKey(), 3)
	if err != nil {
		t.Fatalf("decoded status check: %v", err)
	}
	if res != CheckRevoked {
		t.Errorf("Check = %v, want CheckRevoked", res)
	}
}

func TestSignedRootCodecRoundTrip(t *testing.T) {
	a := newTestAuthority(t, 42)
	root := a.SignedRoot()
	decoded, err := DecodeSignedRoot(root.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Equal(root) {
		t.Error("decoded root differs")
	}
	if err := decoded.VerifySignature(a.PublicKey()); err != nil {
		t.Errorf("decoded root signature: %v", err)
	}
}

func TestIssuanceMessageCodecRoundTrip(t *testing.T) {
	a := newTestAuthority(t, 0)
	msg, err := a.Insert(mustSerials(t, 10, 20), 1)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeIssuanceMessage(msg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Serials) != 2 || !decoded.Root.Equal(msg.Root) {
		t.Error("decoded issuance message differs")
	}
}

func TestFreshnessStatementCodecRoundTrip(t *testing.T) {
	a := newTestAuthority(t, 0)
	st, err := a.Statement(0)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFreshnessStatement(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.CA != st.CA || decoded.Value != st.Value {
		t.Error("decoded statement differs")
	}
}

func TestStatusSizeMatchesPaperBallpark(t *testing.T) {
	// §VII-D: for the largest CRL (339,557 entries) a revocation status is
	// 500–900 bytes. Our status for a ~340k-leaf tree should land in the
	// same range (two leaves × ~19-level paths × 20-byte hashes).
	a := newTestAuthority(t, 0)
	gen := serial.NewGenerator(1, serial.SizeDistribution{{Bytes: 3, Weight: 1}})
	const n = 339_557 / 64 // scaled down for test speed; path depth scales log₂
	if _, err := a.Insert(gen.NextN(n), 0); err != nil {
		t.Fatal(err)
	}
	// Find an absent mid-range serial so the proof carries two full paths.
	probe := serial.FromUint64(0x800000)
	for v := uint64(0x800000); a.Revoked(probe); v++ {
		probe = serial.FromUint64(v)
	}
	st, err := a.Prove(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	size := len(st.Encode())
	// A 5.3k-leaf tree has 13-level paths; the full-size tree adds 6 more
	// levels ≈ 240 bytes. Sanity-check the scaled size here; the full-size
	// number is produced by the storage benchmark.
	if size < 300 || size > 900 {
		t.Errorf("status size = %d bytes, outside plausible range", size)
	}
}
