package dictionary

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ritm/internal/serial"
)

// Expiry-sharded dictionaries implement the "Ever-growing dictionaries"
// relaxation of §VIII: instead of one append-only dictionary holding
// revocations forever, a CA maintains one dictionary per certificate-
// expiry bucket. Every dictionary stays individually append-only (so all
// the §V accountability guarantees hold per shard), but once every
// certificate a shard covers has expired, the whole shard — and its
// replicas on every RA — can be deleted, bounding storage. The CA/B
// Forum's 39-month validity ceiling bounds the number of live shards.

// ShardID names one expiry shard of a CA's dictionary space. It doubles
// as the dictionary identifier on the dissemination network, so existing
// replicas, pulls, and proofs work on shards unchanged.
type ShardID = CAID

// ShardConfig configures a sharded authority.
type ShardConfig struct {
	// Base is the CA identity; shard identifiers derive from it.
	Base AuthorityConfig
	// Width is the expiry-bucket width (e.g. a quarter). Certificates
	// expiring within the same Width-sized window share a dictionary.
	Width time.Duration
}

// ShardedAuthority maintains one Authority per expiry bucket. It is safe
// for concurrent use.
type ShardedAuthority struct {
	cfg ShardConfig

	mu     sync.Mutex
	shards map[int64]*Authority // bucket start (Unix seconds) → authority
}

// NewShardedAuthority creates an empty sharded dictionary space.
func NewShardedAuthority(cfg ShardConfig) (*ShardedAuthority, error) {
	if cfg.Width < time.Hour {
		return nil, fmt.Errorf("dictionary: shard width %v, must be at least an hour", cfg.Width)
	}
	if err := cfg.Base.validate(); err != nil {
		return nil, err
	}
	return &ShardedAuthority{cfg: cfg, shards: make(map[int64]*Authority)}, nil
}

// bucketStart returns the shard bucket covering a certificate that
// expires at notAfter.
func (s *ShardedAuthority) bucketStart(notAfter int64) int64 {
	w := int64(s.cfg.Width / time.Second)
	return (notAfter / w) * w
}

// ShardIDFor returns the dictionary identifier for certificates expiring
// at notAfter. RAs learn shard identifiers from the dissemination
// network's CA listing; the encoding is stable and human-readable.
func (s *ShardedAuthority) ShardIDFor(notAfter int64) ShardID {
	return ShardID(fmt.Sprintf("%s/exp-%d", s.cfg.Base.CA, s.bucketStart(notAfter)))
}

// ParseShardID splits a shard identifier produced by ShardIDFor into the
// base CA and the expiry-bucket start (Unix seconds). ok is false for
// identifiers of unsharded dictionaries. RAs use it to decide when a
// replicated shard can be dropped: a shard whose bucket ended in the past
// covers only expired certificates (see ra.Store.RemoveExpired).
func ParseShardID(id CAID) (base CAID, bucketStart int64, ok bool) {
	s := string(id)
	i := strings.LastIndex(s, "/exp-")
	if i < 0 {
		return "", 0, false
	}
	start, err := strconv.ParseInt(s[i+len("/exp-"):], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return CAID(s[:i]), start, true
}

// shardFor returns (creating on demand) the authority for notAfter.
func (s *ShardedAuthority) shardFor(notAfter, now int64) (*Authority, error) {
	bucket := s.bucketStart(notAfter)
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.shards[bucket]; ok {
		return a, nil
	}
	cfg := s.cfg.Base
	cfg.CA = s.ShardIDFor(notAfter)
	a, err := NewAuthority(cfg, now)
	if err != nil {
		return nil, fmt.Errorf("create shard %s: %w", cfg.CA, err)
	}
	s.shards[bucket] = a
	return a, nil
}

// Insert revokes a certificate with the given serial and expiry,
// returning the shard's issuance message for dissemination.
func (s *ShardedAuthority) Insert(sn serial.Number, notAfter, now int64) (*IssuanceMessage, error) {
	shard, err := s.shardFor(notAfter, now)
	if err != nil {
		return nil, err
	}
	return shard.Insert([]serial.Number{sn}, now)
}

// Prove produces the revocation status for a certificate from its shard.
// The shard may not exist yet (nothing with that expiry was ever revoked);
// it is created empty so that the returned status is a sound absence
// proof against a signed (empty) root.
func (s *ShardedAuthority) Prove(sn serial.Number, notAfter, now int64) (*Status, error) {
	shard, err := s.shardFor(notAfter, now)
	if err != nil {
		return nil, err
	}
	return shard.Prove(sn, now)
}

// Shards returns the live shard authorities, ordered by bucket.
func (s *ShardedAuthority) Shards() []*Authority {
	s.mu.Lock()
	defer s.mu.Unlock()
	buckets := make([]int64, 0, len(s.shards))
	for b := range s.shards {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	out := make([]*Authority, len(buckets))
	for i, b := range buckets {
		out[i] = s.shards[b]
	}
	return out
}

// PruneExpired deletes every shard whose entire expiry bucket lies in the
// past: all certificates it could ever cover have expired, so revocation
// status for them is moot (expired certificates fail validation anyway).
// It returns the freed serialized bytes, the quantity RAs reclaim.
func (s *ShardedAuthority) PruneExpired(now int64) (shardsDropped, bytesFreed int) {
	w := int64(s.cfg.Width / time.Second)
	s.mu.Lock()
	defer s.mu.Unlock()
	for bucket, a := range s.shards {
		if bucket+w <= now {
			bytesFreed += a.SerializedSize()
			shardsDropped++
			delete(s.shards, bucket)
		}
	}
	return shardsDropped, bytesFreed
}
