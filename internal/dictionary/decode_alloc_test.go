package dictionary

import (
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// TestDecodeIssuanceAllocsPinned pins the zero-copy issuance decode: the
// per-serial cost must be zero allocations in both forms. The owned form
// packs every serial into one arena (a handful of fixed allocations per
// message — struct, serial slice, arena, root fields — however large the
// batch); the view form drops the arena too. A regression to per-serial
// copies (the pre-arena serial.New path: one allocation per serial) blows
// the fixed budget by two orders of magnitude on this 512-serial message.
func TestDecodeIssuanceAllocsPinned(t *testing.T) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	auth, err := NewAuthority(AuthorityConfig{
		CA:     "alloc-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, time.Now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	msg, err := auth.Insert(serial.NewGenerator(0xDECD, nil).NextN(512), time.Now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	buf := msg.Encode()

	const fixedBudget = 12 // message-level overhead, independent of batch size
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeIssuanceMessage(buf); err != nil {
			t.Fatal(err)
		}
	}); allocs > fixedBudget {
		t.Errorf("DecodeIssuanceMessage(512 serials) allocs/op = %.1f, want ≤ %d", allocs, fixedBudget)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeIssuanceMessageView(buf); err != nil {
			t.Fatal(err)
		}
	}); allocs > fixedBudget-1 { // no arena in the view form
		t.Errorf("DecodeIssuanceMessageView(512 serials) allocs/op = %.1f, want ≤ %d", allocs, fixedBudget-1)
	}

	// Both forms must decode identically, and the owned form's serials must
	// tolerate the input buffer being clobbered afterwards.
	owned, err := DecodeIssuanceMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	view, err := DecodeIssuanceMessageView(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(owned.Serials) != len(msg.Serials) || len(view.Serials) != len(msg.Serials) {
		t.Fatal("decoded serial counts differ")
	}
	for i := range msg.Serials {
		if !owned.Serials[i].Equal(msg.Serials[i]) || !view.Serials[i].Equal(msg.Serials[i]) {
			t.Fatalf("serial %d differs after decode", i)
		}
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	for i := range msg.Serials {
		if !owned.Serials[i].Equal(msg.Serials[i]) {
			t.Fatalf("owned serial %d aliases the input buffer", i)
		}
	}
}
