package dictionary

import (
	"math/rand/v2"
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// rebuildReference recomputes all interior levels from scratch, the way the
// seed's full rebuild did. It is the oracle the incremental rebuild is
// checked against.
func rebuildReference(leafHashes []cryptoutil.Hash) [][]cryptoutil.Hash {
	if len(leafHashes) == 0 {
		return nil
	}
	levels := [][]cryptoutil.Hash{leafHashes}
	cur := leafHashes
	for len(cur) > 1 {
		next := make([]cryptoutil.Hash, (len(cur)+1)/2)
		for k := 0; k+1 < len(cur); k += 2 {
			next[k/2] = cryptoutil.HashNode(cur[k], cur[k+1])
		}
		if len(cur)%2 == 1 {
			next[len(next)-1] = cur[len(cur)-1]
		}
		levels = append(levels, next)
		cur = next
	}
	return levels
}

// TestIncrementalRebuildMatchesReference inserts random batches and checks
// after each one that every interior level equals a from-scratch rebuild.
func TestIncrementalRebuildMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	tree := NewTree()
	seen := make(map[uint64]bool)
	for batchNo := 0; batchNo < 40; batchNo++ {
		k := 1 + rng.IntN(9)
		batch := make([]serial.Number, 0, k)
		for len(batch) < k {
			v := rng.Uint64N(1 << 20)
			if seen[v] {
				continue
			}
			seen[v] = true
			batch = append(batch, serial.FromUint64(v))
		}
		if err := tree.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		sorted := tree.commit.(*sortedLayout)
		want := rebuildReference(sorted.leafHashes)
		if len(sorted.levels) != len(want) {
			t.Fatalf("batch %d: %d levels, want %d", batchNo, len(sorted.levels), len(want))
		}
		for lvl := range want {
			for i := range want[lvl] {
				if !sorted.levels[lvl][i].Equal(want[lvl][i]) {
					t.Fatalf("batch %d: level %d node %d differs from full rebuild", batchNo, lvl, i)
				}
			}
		}
	}
}

// TestIncrementalRebuildProofsVerify checks end to end that proofs from an
// incrementally maintained tree verify, for presence and absence, across
// batches inserted at the front, middle, and back of the serial space.
func TestIncrementalRebuildProofsVerify(t *testing.T) {
	tree := NewTree()
	// Middle, then back (pure append), then front — each exercises a
	// different firstChanged position.
	batches := [][]uint64{
		{5000, 5002, 5004},
		{9000, 9001, 9002, 9003}, // right edge: O(k·log n) path
		{10, 11},                 // left edge: worst case
		{5001, 8999, 12},
	}
	for _, b := range batches {
		if err := tree.InsertBatch(mustSerials(t, b...)); err != nil {
			t.Fatal(err)
		}
	}
	root, n := tree.Root(), tree.Count()
	for _, v := range []uint64{10, 5001, 9003, 12} {
		p := tree.Prove(serial.FromUint64(v))
		revoked, err := p.Verify(serial.FromUint64(v), root, n)
		if err != nil || !revoked {
			t.Fatalf("presence proof for %d: revoked=%v err=%v", v, revoked, err)
		}
	}
	for _, v := range []uint64{1, 5003, 8000, 9999} {
		p := tree.Prove(serial.FromUint64(v))
		revoked, err := p.Verify(serial.FromUint64(v), root, n)
		if err != nil || revoked {
			t.Fatalf("absence proof for %d: revoked=%v err=%v", v, revoked, err)
		}
	}
}

// TestSnapshotImmutableAcrossUpdates takes a snapshot, applies further
// updates, and checks the old snapshot still proves against its own root —
// the property the RA's lock-free read path depends on.
func TestSnapshotImmutableAcrossUpdates(t *testing.T) {
	a, r := authorityAndReplica(t, 0)
	msg, err := a.Insert(mustSerials(t, 100, 200, 300), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(msg); err != nil {
		t.Fatal(err)
	}
	old := r.Snapshot()
	oldGen := old.Generation()
	oldRoot := old.Root()

	// Mutate the replica several times; inserts land on both sides of the
	// existing serials so interior levels get rewritten around them.
	for i, batch := range [][]uint64{{50, 150}, {250, 350}, {1, 2, 3}} {
		msg, err := a.Insert(mustSerials(t, batch...), int64(2+i))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(msg); err != nil {
			t.Fatal(err)
		}
	}
	if r.Snapshot().Generation() <= oldGen {
		t.Fatalf("generation did not advance: %d -> %d", oldGen, r.Snapshot().Generation())
	}

	// The old snapshot must still verify against its own (old) root.
	for _, v := range []uint64{100, 200, 300} {
		st, err := old.Prove(serial.FromUint64(v))
		if err != nil {
			t.Fatal(err)
		}
		if !st.Root.Equal(oldRoot) {
			t.Fatal("old snapshot served a different root")
		}
		revoked, err := st.Proof.Verify(serial.FromUint64(v), st.Root.Root, st.Root.N)
		if err != nil || !revoked {
			t.Fatalf("old snapshot proof for %d: revoked=%v err=%v", v, revoked, err)
		}
	}
	// Serials revoked only later must still prove absent in the old view.
	st, err := old.Prove(serial.FromUint64(150))
	if err != nil {
		t.Fatal(err)
	}
	revoked, err := st.Proof.Verify(serial.FromUint64(150), oldRoot.Root, oldRoot.N)
	if err != nil || revoked {
		t.Fatalf("old snapshot should prove 150 absent: revoked=%v err=%v", revoked, err)
	}
	if old.Revoked(serial.FromUint64(150)) {
		t.Error("old snapshot reports a later revocation")
	}
}

// TestSnapshotGenerationSemantics pins down when the generation moves: on
// every verified update and on every *new* freshness statement, but not on
// a re-applied identical statement.
func TestSnapshotGenerationSemantics(t *testing.T) {
	delta := 10 * time.Second
	a := newTestAuthority(t, 0)
	r := NewReplica(a.CA(), a.PublicKey())

	if r.Snapshot().Root() != nil {
		t.Fatal("initial snapshot should have no root")
	}
	if _, err := r.Snapshot().Prove(serial.FromUint64(1)); err == nil {
		t.Fatal("initial snapshot should refuse to prove")
	}

	if err := r.Update(&IssuanceMessage{Root: a.SignedRoot()}); err != nil {
		t.Fatal(err)
	}
	g1 := r.Snapshot().Generation()
	if g1 == 0 {
		t.Fatal("update did not advance the generation")
	}

	// A freshness statement for a later period advances the generation once.
	now := int64(2 * delta / time.Second)
	st, err := a.Statement(now)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyFreshness(st, now); err != nil {
		t.Fatal(err)
	}
	g2 := r.Snapshot().Generation()
	if g2 <= g1 {
		t.Fatalf("freshness did not advance the generation: %d -> %d", g1, g2)
	}
	// Re-applying the identical statement is a no-op for caches.
	if err := r.ApplyFreshness(st, now); err != nil {
		t.Fatal(err)
	}
	if g3 := r.Snapshot().Generation(); g3 != g2 {
		t.Fatalf("identical statement re-publish: generation %d -> %d", g2, g3)
	}

	// Re-delivery of the root the replica already holds (every pull
	// response carries the latest root) must not republish either — and
	// must not regress the freshness value to the anchor.
	if err := r.Update(&IssuanceMessage{Root: a.SignedRoot()}); err != nil {
		t.Fatal(err)
	}
	if g4 := r.Snapshot().Generation(); g4 != g2 {
		t.Fatalf("identical root re-publish: generation %d -> %d", g2, g4)
	}
	if !r.Freshness().Equal(st.Value) {
		t.Error("identical root re-delivery regressed the freshness value")
	}
}
