package dictionary

import (
	"testing"
	"time"

	"ritm/internal/serial"
)

// TestEncodeAllocsPinned pins the pooled-encoder win on the status hot
// path: once the encoder pool is warm, Proof.Encode and Status.Encode
// each cost a single allocation — the right-sized output copy. The bound
// allows one extra allocation of slack so an unlucky pool miss (GC
// between runs) cannot flake the test, while still catching any
// regression to the grow-as-you-append encoding this replaced (three or
// more allocations per call).
func TestEncodeAllocsPinned(t *testing.T) {
	now := time.Now().Unix()
	a, r, _ := mappedFixture(t, LayoutSorted, fixtureBatches(0xA110C, []int{120, 80}), now)
	_ = a
	snap := r.Snapshot()
	absent := serial.NewGenerator(0xBEEF, nil).Next()
	st, err := snap.Prove(absent)
	if err != nil {
		t.Fatal(err)
	}
	if st.rootEnc == nil {
		t.Fatal("snapshot status is missing the memoized root encoding")
	}

	if allocs := testing.AllocsPerRun(200, func() { _ = st.Proof.Encode() }); allocs > 2 {
		t.Errorf("Proof.Encode allocs/op = %.1f, want ≤ 2", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { _ = st.Encode() }); allocs > 2 {
		t.Errorf("Status.Encode allocs/op = %.1f, want ≤ 2", allocs)
	}

	// The memoized root bytes must be indistinguishable from a fresh
	// encoding: a decoded status (no memo) re-encodes byte-identically.
	reparsed, err := DecodeStatus(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(reparsed.Encode()), string(st.Encode()); got != want {
		t.Error("memoized and fresh status encodings differ")
	}
}
