package dictionary

import (
	"fmt"
	"strconv"
	"strings"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// LayoutKind is a layout descriptor: the commitment structure behind a
// dictionary tree, plus the structure's shape parameters (today: the
// forest's bucket capacity). It is a single comparable value so that every
// configuration surface that already carried "which layout" — authority
// configs, replica constructors, -layout flags, persisted checkpoints —
// carries the full proof-shape contract with no extra plumbing.
//
// The descriptor changes the root hash a dictionary commits to — authority
// and replica MUST be configured with the same descriptor or every
// replayed update fails with ErrRootMismatch (the signed-root match
// contract of Fig 2 is per-layout, and bucketization depends on the cap).
// The issuance log, the dissemination wire formats, and the sync protocol
// are layout-agnostic: only roots and proofs differ.
//
// Encoding: the low 8 bits are the structure kind; the bits above carry
// the forest bucket capacity (0 = the 256-leaf default). LayoutForest ==
// LayoutForestWithCap(DefaultForestBucketCap), so code comparing against
// the named constants keeps working for default-capacity deployments.
type LayoutKind uint32

// Supported layouts.
const (
	// LayoutSorted is one flat sorted hash tree over all leaves. Inserts at
	// the right edge of the serial space cost O(k·log n); inserts anywhere
	// else shift every leaf to their right and cost up to O(n) rehashing.
	// Proofs are the classic single audit path.
	LayoutSorted LayoutKind = iota
	// LayoutForest partitions the leaves by serial range into bounded
	// buckets (split on overflow), each a small sorted hash tree, with a
	// spine tree over the bucket commitments. An insert rehashes only its
	// bucket plus a spine path, so a k-insert batch costs O(k·log n)
	// amortized for ANY serial distribution — the uniform (random-serial)
	// case that costs the sorted layout O(n) per batch. Proofs carry an
	// extra SpineSegment. Buckets hold at most DefaultForestBucketCap
	// leaves; LayoutForestWithCap tunes the bound.
	LayoutForest
)

// DefaultForestBucketCap is the forest bucket capacity selected by plain
// LayoutForest. 256 keeps the in-bucket rehash of one insert two to three
// orders of magnitude below the whole-dictionary rehash the sorted layout
// pays, while the proof (in-bucket path + spine path) stays within a hash
// or two of the sorted layout's single path: log₂(cap) + log₂(n/cap) ≈
// log₂(n).
const DefaultForestBucketCap = 256

// Forest bucket capacity bounds. The minimum keeps the ¾-fill split
// target at least one leaf; the maximum is what fits in the descriptor.
const (
	minForestCap = 4
	maxForestCap = 1<<24 - 1
)

// layoutKindMask extracts the structure kind from a descriptor.
const layoutKindMask LayoutKind = 0xff

// LayoutForestWithCap returns the forest layout descriptor with buckets of
// at most cap leaves — the tuning knob for corpora whose batch sizes or
// proof-size budgets differ from the default's sweet spot (larger caps:
// fewer, taller buckets, smaller spine; smaller caps: cheaper inserts,
// more spine). cap is clamped to [4, 2²⁴−1]; cap 0 or
// DefaultForestBucketCap normalizes to plain LayoutForest, so descriptor
// equality means proof-shape equality. The capacity is part of the root
// commitment contract: every replica, and every persisted checkpoint,
// carries it.
func LayoutForestWithCap(cap int) LayoutKind {
	switch {
	case cap <= 0 || cap == DefaultForestBucketCap:
		return LayoutForest
	case cap < minForestCap:
		cap = minForestCap
	case cap > maxForestCap:
		cap = maxForestCap
	}
	return LayoutForest | LayoutKind(cap)<<8
}

// base returns the structure kind without shape parameters.
func (k LayoutKind) base() LayoutKind { return k & layoutKindMask }

// ForestCap returns the forest bucket capacity the descriptor selects
// (DefaultForestBucketCap for plain LayoutForest), or 0 for non-forest
// layouts.
func (k LayoutKind) ForestCap() int {
	if k.base() != LayoutForest {
		return 0
	}
	if cap := int(k >> 8); cap != 0 {
		return cap
	}
	return DefaultForestBucketCap
}

// String returns the layout's flag/config name.
func (k LayoutKind) String() string {
	switch k.base() {
	case LayoutSorted:
		return "sorted"
	case LayoutForest:
		if cap := int(k >> 8); cap != 0 {
			return fmt.Sprintf("forest:%d", cap)
		}
		return "forest"
	default:
		return fmt.Sprintf("LayoutKind(%d)", uint32(k))
	}
}

// ParseLayout maps a flag/config name to its LayoutKind. The forest's
// bucket capacity may be given inline as "forest:512".
func ParseLayout(s string) (LayoutKind, error) {
	switch s {
	case "sorted", "":
		return LayoutSorted, nil
	case "forest":
		return LayoutForest, nil
	}
	if rest, ok := strings.CutPrefix(s, "forest:"); ok {
		cap, err := strconv.Atoi(rest)
		if err != nil || cap < minForestCap || cap > maxForestCap {
			return 0, fmt.Errorf("dictionary: forest bucket capacity %q (want %d–%d)", rest, minForestCap, maxForestCap)
		}
		return LayoutForestWithCap(cap), nil
	}
	return 0, fmt.Errorf("dictionary: unknown layout %q (want sorted, forest, or forest:<cap>)", s)
}

// Layouts lists every supported layout; benches and CLIs iterate it.
func Layouts() []LayoutKind { return []LayoutKind{LayoutSorted, LayoutForest} }

// Layout is the pluggable commitment structure behind a Tree: it owns the
// hashed representation (leaves, interior nodes, roots) while the Tree keeps
// the layout-independent state (serial index, issuance log, validation).
// Implementations live in this package and are selected by LayoutKind; all
// of them follow the same copy-on-write discipline as the original sorted
// tree — insert never writes into arrays reachable from a previously
// returned view, so published Snapshots stay immutable forever.
//
// Scratch-arena discipline: copy-on-write only requires fresh arrays for
// state that somebody outside the layout can still reach. Each layout
// therefore tracks exposure explicitly — arrays built by insert are
// *private* until view or checkpoint hands a reference out, and a second
// insert in the same private window (a multi-sub-batch replay between one
// Replica checkpoint and the next publish) merges into them in place with
// zero reallocation. The accounting is exact, not heuristic: at most two
// versions are ever live per tree — the last exposed one (pinned by
// whatever snapshot or checkpoint observed it) and the private pending one
// — and only the private buffer is ever written. Exposure is one-way per
// array generation; restore after a rejected update reinstates exposed
// arrays and drops the private scratch.
type Layout interface {
	// kind identifies the layout.
	kind() LayoutKind
	// insert merges a batch of pre-validated leaves, sorted by serial and
	// carrying their final revocation numbers, into the structure.
	insert(batch []Leaf)
	// view returns the current immutable version and marks the arrays
	// behind it exposed: no later insert may write them in place.
	view() LayoutView
	// rootHash returns the current root (EmptyRoot when empty) WITHOUT
	// exposing the arrays — the replica's post-replay root check must not
	// end the private window a multi-batch replay is still inside.
	rootHash() cryptoutil.Hash
	// hashedNodes returns the cumulative number of hash computations (leaf,
	// interior, bucket, and root hashes) performed by inserts — the cost
	// metric BenchmarkUniformInsert compares across layouts.
	hashedNodes() uint64
	// memoryFootprint estimates resident bytes of the hashed structure.
	memoryFootprint() int
	// checkpoint captures the current version's state; restore rewinds to
	// it. Both are O(1) thanks to copy-on-write: a checkpoint is just the
	// slice headers of the current version.
	checkpoint() layoutState
	// restore rewinds the layout to a state captured by checkpoint.
	restore(layoutState)
}

// LayoutView is one immutable version of a layout's proving state. All
// methods are read-only and safe for unsynchronized concurrent use.
type LayoutView interface {
	// Root returns the version's root hash (EmptyRoot when empty).
	Root() cryptoutil.Hash
	// Revoked reports whether s is a leaf, and its revocation number.
	Revoked(s serial.Number) (uint64, bool)
	// Prove produces a presence or absence proof for s that verifies
	// against Root() (and, for the sorted layout, the leaf count).
	Prove(s serial.Number) *Proof
}

// layoutState is an opaque checkpoint; each layout returns its own type.
type layoutState interface{}

// newLayout constructs an empty layout of the given descriptor.
func newLayout(kind LayoutKind) Layout {
	switch kind.base() {
	case LayoutForest:
		return newForestLayout(kind)
	default:
		return &sortedLayout{}
	}
}

// miniTree is the shared (sorted leaves, interior levels) proving core used
// by the sorted layout for the whole dictionary and by the forest layout per
// bucket. levels[0] is the leaf-hash array; levels[len-1][0] is the root.
// A miniTree is immutable once built.
type miniTree struct {
	leaves []Leaf
	levels [][]cryptoutil.Hash
}

// root returns the tree root; callers guarantee at least one leaf.
func (m miniTree) root() cryptoutil.Hash {
	return m.levels[len(m.levels)-1][0]
}

// searchLeaf returns the index of the first leaf with Serial >= s.
func (m miniTree) searchLeaf(s serial.Number) int {
	lo, hi := 0, len(m.leaves)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.leaves[mid].Serial.Compare(s) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// revoked reports whether s is a leaf, by binary search.
func (m miniTree) revoked(s serial.Number) (uint64, bool) {
	lo := m.searchLeaf(s)
	if lo < len(m.leaves) && m.leaves[lo].Serial.Equal(s) {
		return m.leaves[lo].Num, true
	}
	return 0, false
}

// path returns the audit path for the leaf at index idx.
func (m miniTree) path(idx int) []cryptoutil.Hash {
	return pathAt(m.levels, idx)
}

// proofLeaf builds the ProofLeaf for index idx.
func (m miniTree) proofLeaf(idx int) *ProofLeaf {
	return &ProofLeaf{
		Serial: m.leaves[idx].Serial,
		Num:    m.leaves[idx].Num,
		Index:  uint64(idx),
		Path:   m.path(idx),
	}
}

// pathAt returns the audit path for position idx of a level structure (the
// same walk for dictionary leaves and for spine positions over buckets).
func pathAt(levels [][]cryptoutil.Hash, idx int) []cryptoutil.Hash {
	if len(levels) == 0 || idx < 0 || idx >= len(levels[0]) {
		return nil
	}
	path := make([]cryptoutil.Hash, 0, len(levels))
	for lvl := 0; lvl < len(levels)-1; lvl++ {
		nodes := levels[lvl]
		sib := idx ^ 1
		if sib < len(nodes) {
			path = append(path, nodes[sib])
		}
		// Odd rightmost node has no sibling: promoted, no path element.
		idx /= 2
	}
	return path
}

// proofArena bundles a Proof with its leaf structs, spine segment, and a
// single shared backing array for every audit path in the proof. Status
// proving is the RA's hot path — each proof used to cost one heap object
// per struct plus one slice per path (7+ allocations for a forest
// absence); the arena packs all of it into two (the arena itself and the
// path array), sized exactly up front so append never reallocates.
type proofArena struct {
	proof  Proof
	leaves [2]ProofLeaf
	spine  SpineSegment
	nleaf  int
	paths  []cryptoutil.Hash
}

func newProofArena(kind ProofKind, pathCap int) *proofArena {
	a := &proofArena{}
	a.proof.Kind = kind
	if pathCap > 0 {
		a.paths = make([]cryptoutil.Hash, 0, pathCap)
	}
	return a
}

// appendHeapPath appends the audit path for position idx of a heap level
// structure (the pathAt walk) to the shared array and returns the capped
// segment holding it.
func (a *proofArena) appendHeapPath(levels [][]cryptoutil.Hash, idx int) []cryptoutil.Hash {
	if len(levels) == 0 || idx < 0 || idx >= len(levels[0]) {
		return nil
	}
	start := len(a.paths)
	for lvl := 0; lvl < len(levels)-1; lvl++ {
		nodes := levels[lvl]
		sib := idx ^ 1
		if sib < len(nodes) {
			a.paths = append(a.paths, nodes[sib])
		}
		idx /= 2
	}
	return a.paths[start:len(a.paths):len(a.paths)]
}

// fillLeaf populates the arena's next inline ProofLeaf from tree index idx.
func (a *proofArena) fillLeaf(m miniTree, idx int) *ProofLeaf {
	pl := &a.leaves[a.nleaf]
	a.nleaf++
	pl.Serial = m.leaves[idx].Serial
	pl.Num = m.leaves[idx].Num
	pl.Index = uint64(idx)
	pl.Path = a.appendHeapPath(m.levels, idx)
	return pl
}

// proveLocal runs the shared presence/absence switch over the tree's
// leaves — the same boundary cases as the pre-arena Prove implementations
// — building the whole proof in one arena. sp, when non-nil, is the spine
// segment metadata (Path unset); spineLevels/spineIdx locate the bucket's
// audit path. Callers guarantee at least one leaf.
func (m miniTree) proveLocal(s serial.Number, sp *SpineSegment, spineLevels [][]cryptoutil.Hash, spineIdx int) *Proof {
	n := len(m.leaves)
	lo := m.searchLeaf(s)
	kind := ProofAbsence
	li, ri := -1, -1
	switch {
	case lo < n && m.leaves[lo].Serial.Equal(s):
		kind, li = ProofPresence, lo
	case lo == 0:
		// s precedes every leaf: the first leaf bounds it from above.
		ri = 0
	case lo == n:
		// s follows every leaf: the last leaf bounds it from below.
		li = n - 1
	default:
		// s falls strictly between two adjacent leaves.
		li, ri = lo-1, lo
	}
	perLeaf := len(m.levels) - 1
	pathCap := 0
	if li >= 0 {
		pathCap += perLeaf
	}
	if ri >= 0 {
		pathCap += perLeaf
	}
	if sp != nil && len(spineLevels) > 0 {
		pathCap += len(spineLevels) - 1
	}
	a := newProofArena(kind, pathCap)
	if li >= 0 {
		a.proof.Left = a.fillLeaf(m, li)
	}
	if ri >= 0 {
		a.proof.Right = a.fillLeaf(m, ri)
	}
	if sp != nil {
		a.spine = *sp
		a.spine.Path = a.appendHeapPath(spineLevels, spineIdx)
		a.proof.Spine = &a.spine
	}
	return &a.proof
}

// arenaHeadroom returns the extra capacity a fresh rebuild array carries
// beyond its content so that follow-up merges within the same private
// window (before the next view/checkpoint exposes the arrays) can extend
// it in place instead of reallocating.
func arenaHeadroom(n int) int { return n/8 + 4 }

// mergeLeaves merges a sorted batch of new leaves into the sorted existing
// run, hashing the new leaves as it goes. It writes into fresh arrays
// (copy-on-write): the previous version's arrays — possibly aliased by a
// published view — are never touched. Unchanged runs between insertion
// points are copied whole (one memmove per run, not one append per leaf),
// and the arrays carry arenaHeadroom slack so the in-place variant below
// can extend them on the next merge of the same private window. It returns
// the merged arrays, the merged index of the first new leaf (-1 for an
// empty batch), and the number of leaf hashes computed.
func mergeLeaves(oldLeaves []Leaf, oldHashes []cryptoutil.Hash, batch []Leaf) (merged []Leaf, mergedHashes []cryptoutil.Hash, firstChanged int, hashOps uint64) {
	total := len(oldLeaves) + len(batch)
	merged = make([]Leaf, 0, total+arenaHeadroom(total))
	mergedHashes = make([]cryptoutil.Hash, 0, cap(merged))
	firstChanged = -1
	i := 0
	for j := 0; j < len(batch); j++ {
		run := i
		for run < len(oldLeaves) && oldLeaves[run].Serial.Compare(batch[j].Serial) < 0 {
			run++
		}
		if run > i {
			merged = append(merged, oldLeaves[i:run]...)
			mergedHashes = append(mergedHashes, oldHashes[i:run]...)
			i = run
		}
		if firstChanged < 0 {
			firstChanged = len(merged)
		}
		merged = append(merged, batch[j])
		mergedHashes = append(mergedHashes, batch[j].hash())
		hashOps++
	}
	merged = append(merged, oldLeaves[i:]...)
	mergedHashes = append(mergedHashes, oldHashes[i:]...)
	return merged, mergedHashes, firstChanged, hashOps
}

// mergeLeavesInPlace is mergeLeaves for arrays the caller owns privately
// (built since the last view/checkpoint, so no snapshot can reach them):
// the batch is merged backward into the existing backing arrays with zero
// allocation. The caller guarantees cap(leaves) and cap(hashes) hold
// len(leaves)+len(batch). Results are identical to mergeLeaves.
func mergeLeavesInPlace(leaves []Leaf, hashes []cryptoutil.Hash, batch []Leaf) (merged []Leaf, mergedHashes []cryptoutil.Hash, firstChanged int, hashOps uint64) {
	n, k := len(leaves), len(batch)
	leaves = leaves[:n+k]
	hashes = hashes[:n+k]
	firstChanged = -1
	// Backward merge: the write cursor w stays strictly ahead of the old
	// read cursor i until the batch is exhausted, so no unread old leaf is
	// ever overwritten; the untouched old prefix is already in place.
	i, w := n-1, n+k-1
	for j := k - 1; j >= 0; w-- {
		if i >= 0 && leaves[i].Serial.Compare(batch[j].Serial) > 0 {
			leaves[w] = leaves[i]
			hashes[w] = hashes[i]
			i--
		} else {
			leaves[w] = batch[j]
			hashes[w] = batch[j].hash()
			hashOps++
			firstChanged = w
			j--
		}
	}
	return leaves, hashes, firstChanged, hashOps
}

// buildLevels recomputes the interior levels over leafHashes, reusing every
// node left of leaf index firstChanged from oldLevels: those nodes cover
// only unchanged, unshifted leaves, so their values — including the
// odd-promotion rule, which depends only on indices below them — are
// identical. Fresh arrays are allocated for every level, never written
// through oldLevels, preserving snapshot immutability. It returns the new
// levels (levels[0] aliases leafHashes) and the number of interior hashes
// computed.
//
// A negative firstChanged (no leaf changed) still rebuilds everything, as
// does 0; callers pass the merge position of the first inserted leaf.
func buildLevels(leafHashes []cryptoutil.Hash, oldLevels [][]cryptoutil.Hash, firstChanged int) ([][]cryptoutil.Hash, uint64) {
	if len(leafHashes) == 0 {
		return nil, 0
	}
	if firstChanged < 0 {
		firstChanged = 0
	}
	var hashOps uint64
	levels := make([][]cryptoutil.Hash, 1, 2+bitsLen(len(leafHashes)))
	levels[0] = leafHashes
	cur := leafHashes
	dirty := firstChanged // first index of cur that differs from oldLevels
	for lvl := 0; len(cur) > 1; lvl++ {
		parents := (len(cur) + 1) / 2
		next := make([]cryptoutil.Hash, parents, parents+arenaHeadroom(parents))
		// A parent k is unchanged iff both children are below dirty, i.e.
		// 2k+1 < dirty — and the old level must actually hold it.
		keep := dirty / 2
		if lvl+1 < len(oldLevels) {
			if n := len(oldLevels[lvl+1]); keep > n {
				keep = n
			}
			copy(next[:keep], oldLevels[lvl+1])
		} else {
			keep = 0
		}
		for k := keep; k < parents; k++ {
			if 2*k+1 < len(cur) {
				next[k] = cryptoutil.HashNode(cur[2*k], cur[2*k+1])
				hashOps++
			} else {
				// Odd rightmost node: promoted unchanged; the verifier
				// reproduces the same rule from (index, size) alone.
				next[k] = cur[len(cur)-1]
			}
		}
		levels = append(levels, next)
		cur = next
		dirty = keep
	}
	return levels, hashOps
}

// buildLevelsInPlace is buildLevels for a level structure the caller owns
// privately: the prefix of each level left of the dirty frontier is already
// correct in place (same arrays, nothing shifted below firstChanged), so
// only the dirty suffixes are recomputed, into the same backing arrays
// where capacity allows. levels[0] must be (a possibly extended slice of)
// the structure's leaf-hash array, passed as leafHashes with its new
// length. Results are identical to buildLevels over the same leaf hashes.
func buildLevelsInPlace(levels [][]cryptoutil.Hash, leafHashes []cryptoutil.Hash, firstChanged int) ([][]cryptoutil.Hash, uint64) {
	if len(leafHashes) == 0 {
		return nil, 0
	}
	if firstChanged < 0 {
		firstChanged = 0
	}
	var hashOps uint64
	out := levels[:1]
	out[0] = leafHashes
	cur := leafHashes
	dirty := firstChanged
	for lvl := 1; len(cur) > 1; lvl++ {
		parents := (len(cur) + 1) / 2
		keep := dirty / 2
		var next []cryptoutil.Hash
		if lvl < len(levels) {
			old := levels[lvl]
			if keep > len(old) {
				keep = len(old)
			}
			if cap(old) >= parents {
				next = old[:parents]
			} else {
				next = make([]cryptoutil.Hash, parents, parents+arenaHeadroom(parents))
				copy(next[:keep], old[:keep])
			}
		} else {
			next = make([]cryptoutil.Hash, parents, parents+arenaHeadroom(parents))
			keep = 0
		}
		for k := keep; k < parents; k++ {
			if 2*k+1 < len(cur) {
				next[k] = cryptoutil.HashNode(cur[2*k], cur[2*k+1])
				hashOps++
			} else {
				next[k] = cur[len(cur)-1]
			}
		}
		out = append(out, next)
		cur = next
		dirty = keep
	}
	return out, hashOps
}

// bitsLen returns ⌈log₂(n)⌉-ish capacity hint for the level slice.
func bitsLen(n int) int {
	b := 0
	for n > 1 {
		n = (n + 1) / 2
		b++
	}
	return b
}
