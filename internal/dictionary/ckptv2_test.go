package dictionary

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// mappedFixture builds an authority and a fully caught-up heap replica
// for kind, inserting batches in order and returning the per-batch
// issuance messages (the same messages a WAL would carry).
func mappedFixture(t *testing.T, kind LayoutKind, batches [][]serial.Number, now int64) (*Authority, *Replica, []*IssuanceMessage) {
	t.Helper()
	a := newTestAuthorityWithLayout(t, now, kind)
	r := NewReplicaWithLayout(a.CA(), a.PublicKey(), kind)
	msgs := make([]*IssuanceMessage, 0, len(batches))
	for _, b := range batches {
		msg, err := a.Insert(b, now)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(msg); err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, msg)
	}
	return a, r, msgs
}

// fixtureBatches deals out enough serials, in uneven batches, to force a
// multi-bucket forest at the default capacity.
func fixtureBatches(seed uint64, sizes []int) [][]serial.Number {
	gen := serial.NewGenerator(seed, nil)
	out := make([][]serial.Number, len(sizes))
	for i, n := range sizes {
		out[i] = gen.NextN(n)
	}
	return out
}

func layoutKinds() []LayoutKind { return []LayoutKind{LayoutSorted, LayoutForest} }

// requireSameStatus asserts that the heap and mapped paths produce
// byte-identical Status messages for s — same proof shape, same root,
// same freshness — which is the zero-copy tier's core contract.
func requireSameStatus(t *testing.T, heap *Snapshot, mapped *MappedSnapshot, s serial.Number) {
	t.Helper()
	hs, herr := heap.Prove(s)
	ms, merr := mapped.Prove(s)
	if (herr == nil) != (merr == nil) {
		t.Fatalf("Prove(%v): heap err %v, mapped err %v", s, herr, merr)
	}
	if herr != nil {
		return
	}
	if !bytes.Equal(hs.Encode(), ms.Encode()) {
		t.Fatalf("Prove(%v): heap and mapped statuses differ", s)
	}
}

func TestMappedSnapshotAgreement(t *testing.T) {
	now := int64(1_700_000_000)
	sizes := []int{3, 190, 71, 256, 44, 130, 9, 280}
	roots := make(map[LayoutKind]*MappedSnapshot)
	queries := make(map[LayoutKind][]serial.Number)
	for _, kind := range layoutKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			batches := fixtureBatches(0xD1C7, sizes)
			a, r, _ := mappedFixture(t, kind, batches, now)

			// Advance two periods and adopt a freshness statement so the
			// checkpoint carries a non-anchor value the mapped opener must
			// re-verify and keep.
			later := now + 2*int64(testDelta.Seconds())
			stmt, err := a.Statement(later)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.ApplyFreshness(stmt, later); err != nil {
				t.Fatal(err)
			}

			heap := r.Snapshot()
			ms, err := NewMappedSnapshot(a.CA(), a.PublicKey(), kind, r.PersistentStateV2(), nil, later, 7)
			if err != nil {
				t.Fatal(err)
			}
			if ms.Count() != heap.Count() {
				t.Fatalf("mapped count %d, heap %d", ms.Count(), heap.Count())
			}
			if !ms.RootHash().Equal(heap.RootHash()) {
				t.Fatal("mapped root hash differs from heap")
			}
			if !ms.Freshness().Equal(heap.Freshness()) || ms.FreshnessPeriod() != heap.FreshnessPeriod() {
				t.Fatalf("mapped freshness (%v, %d), heap (%v, %d)",
					ms.Freshness(), ms.FreshnessPeriod(), heap.Freshness(), heap.FreshnessPeriod())
			}
			if ms.Generation() != 7 {
				t.Fatalf("generation %d, want 7", ms.Generation())
			}
			if ms.OverlayRecords() != 0 {
				t.Fatalf("pure-mapped snapshot reports %d overlay records", ms.OverlayRecords())
			}

			var qs []serial.Number
			for _, b := range batches {
				qs = append(qs, b[0], b[len(b)-1], b[len(b)/2])
			}
			qs = append(qs, serial.NewGenerator(0xAB5E17, nil).NextN(64)...)
			for _, s := range qs {
				requireSameStatus(t, heap, ms, s)
				if ms.Revoked(s) != heap.Revoked(s) {
					t.Fatalf("Revoked(%v) disagrees", s)
				}
				st, err := ms.Prove(s)
				if err != nil {
					t.Fatal(err)
				}
				res, err := st.Check(s, a.PublicKey(), later)
				if err != nil {
					t.Fatalf("Check(%v): %v", s, err)
				}
				if (res == CheckRevoked) != heap.Revoked(s) {
					t.Fatalf("Check(%v) = %v, heap revoked %v", s, res, heap.Revoked(s))
				}
			}
			roots[kind] = ms
			queries[kind] = qs
		})
	}

	// Cross-root rejection: a proof from one layout must not verify
	// against the other layout's root (same inserted set, different
	// commitment structure).
	if len(roots) == 2 {
		for _, kind := range layoutKinds() {
			other := roots[LayoutSorted]
			if kind == LayoutSorted {
				other = roots[LayoutForest]
			}
			ms := roots[kind]
			for _, s := range queries[kind][:6] {
				st, err := ms.Prove(s)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := st.Proof.Verify(s, other.RootHash(), other.Count()); err == nil {
					t.Fatalf("%v proof for %v verified against the other layout's root", kind, s)
				}
			}
		}
	}
}

func TestMappedSnapshotOverlay(t *testing.T) {
	now := int64(1_700_000_000)
	sizes := []int{120, 256, 31, 300, 5, 77, 190}
	for _, kind := range layoutKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			batches := fixtureBatches(0xC0FFEE, sizes)
			a, full, msgs := mappedFixture(t, kind, batches, now)
			// Freshness statement for the final root; the heap reference
			// adopts it directly, mapped readers receive it via the WAL.
			later := now + int64(testDelta.Seconds())
			stmt, err := a.Statement(later)
			if err != nil {
				t.Fatal(err)
			}
			if err := full.ApplyFreshness(stmt, later); err != nil {
				t.Fatal(err)
			}
			heap := full.Snapshot()

			for _, split := range []int{0, 3, len(msgs)} {
				// A second replica stops at the split: its state is the
				// checkpoint, the remaining messages are the WAL suffix.
				part := NewReplicaWithLayout(a.CA(), a.PublicKey(), kind)
				for _, msg := range msgs[:split] {
					if err := part.Update(msg); err != nil {
						t.Fatal(err)
					}
				}
				var wal [][]byte
				for _, msg := range msgs[split:] {
					wal = append(wal, (&UpdateRecord{Msg: msg}).Encode())
				}
				// Re-delivered last root: must be deduped, not replayed.
				if len(msgs) > 0 {
					wal = append(wal, (&UpdateRecord{Msg: msgs[len(msgs)-1]}).Encode())
				}
				wal = append(wal, (&FreshnessRecord{Value: stmt.Value}).Encode())

				ms, err := NewMappedSnapshot(a.CA(), a.PublicKey(), kind, part.PersistentStateV2(), wal, later, 1)
				if err != nil {
					t.Fatalf("split %d: %v", split, err)
				}
				if got, want := ms.OverlayRecords(), len(msgs)-split; got != want {
					t.Fatalf("split %d: %d overlay records, want %d", split, got, want)
				}
				if ms.Count() != heap.Count() {
					t.Fatalf("split %d: count %d, want %d", split, ms.Count(), heap.Count())
				}
				if !ms.RootHash().Equal(heap.RootHash()) {
					t.Fatalf("split %d: overlay root differs from heap", split)
				}
				if !ms.Freshness().Equal(stmt.Value) {
					t.Fatalf("split %d: WAL freshness record not adopted", split)
				}
				for _, b := range batches {
					for _, s := range []serial.Number{b[0], b[len(b)-1], b[len(b)/2]} {
						requireSameStatus(t, heap, ms, s)
					}
				}
				for _, s := range serial.NewGenerator(0xFACE, nil).NextN(48) {
					requireSameStatus(t, heap, ms, s)
				}
			}
		})
	}
}

// TestMappedSnapshotOverlayRejectsForgedRecord pins that the overlay
// verifies each rebuilt root against the record's signed root: a record
// whose serials disagree with its root fails loudly instead of serving a
// state the CA never signed.
func TestMappedSnapshotOverlayRejectsForgedRecord(t *testing.T) {
	now := int64(1_700_000_000)
	batches := fixtureBatches(0xBAD, []int{60, 80})
	a, _, msgs := mappedFixture(t, LayoutSorted, batches, now)

	part := NewReplicaWithLayout(a.CA(), a.PublicKey(), LayoutSorted)
	if err := part.Update(msgs[0]); err != nil {
		t.Fatal(err)
	}
	forged := *msgs[1]
	forged.Serials = append([]serial.Number(nil), msgs[1].Serials...)
	forged.Serials[3] = serial.NewGenerator(0xEE, nil).Next()
	wal := [][]byte{(&UpdateRecord{Msg: &forged}).Encode()}
	_, err := NewMappedSnapshot(a.CA(), a.PublicKey(), LayoutSorted, part.PersistentStateV2(), wal, now, 1)
	if !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("forged WAL record: err = %v, want ErrRootMismatch", err)
	}
}

func TestPersistentStateV2RoundTrip(t *testing.T) {
	now := int64(1_700_000_000)
	for _, kind := range layoutKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			batches := fixtureBatches(0x5EED, []int{90, 210, 40})
			a, r, _ := mappedFixture(t, kind, batches, now)

			// Replica state: decoding the v2 payload must reproduce the v1
			// PersistentState byte for byte.
			st, err := DecodePersistentState(r.PersistentStateV2())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(st.Encode(), r.PersistentState().Encode()) {
				t.Fatal("v2 round trip differs from PersistentState for replica")
			}

			// Authority state: same, including the chain seed.
			ast, err := DecodePersistentState(a.PersistentStateV2())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ast.Encode(), a.PersistentState().Encode()) {
				t.Fatal("v2 round trip differs from PersistentState for authority")
			}
			if ast.ChainSeed == nil {
				t.Fatal("authority v2 state dropped the chain seed")
			}

			// Empty state round-trips too.
			empty := NewReplicaWithLayout(a.CA(), a.PublicKey(), kind)
			est, err := DecodePersistentState(empty.PersistentStateV2())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(est.Encode(), empty.PersistentState().Encode()) {
				t.Fatal("v2 round trip differs for empty replica")
			}
		})
	}
}

func TestRecoverReplicaLogMigratesV1(t *testing.T) {
	now := int64(1_700_000_000)
	for _, kind := range layoutKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			batches := fixtureBatches(0x91, []int{100, 260, 55, 140})
			a, full, msgs := mappedFixture(t, kind, batches, now)
			heap := full.Snapshot()

			part := NewReplicaWithLayout(a.CA(), a.PublicKey(), kind)
			for _, msg := range msgs[:2] {
				if err := part.Update(msg); err != nil {
					t.Fatal(err)
				}
			}

			backend := storage.NewMemory()
			lg, err := backend.Open("d")
			if err != nil {
				t.Fatal(err)
			}
			// Seed the log the way a pre-v2 store would have: a v1
			// checkpoint plus WAL records for the remaining updates and an
			// adopted freshness statement.
			if err := lg.Checkpoint(part.PersistentState().Encode()); err != nil {
				t.Fatal(err)
			}
			for _, msg := range msgs[2:] {
				if err := lg.Append((&UpdateRecord{Msg: msg}).Encode()); err != nil {
					t.Fatal(err)
				}
			}
			later := now + int64(testDelta.Seconds())
			stmt, err := a.Statement(later)
			if err != nil {
				t.Fatal(err)
			}
			if err := lg.Append((&FreshnessRecord{Value: stmt.Value}).Encode()); err != nil {
				t.Fatal(err)
			}

			r, err := RecoverReplicaLog(lg, a.CA(), a.PublicKey(), kind, later)
			if err != nil {
				t.Fatal(err)
			}
			snap := r.Snapshot()
			if snap.Count() != heap.Count() || !snap.RootHash().Equal(heap.RootHash()) {
				t.Fatal("recovered replica differs from heap reference")
			}
			if !snap.Freshness().Equal(stmt.Value) {
				t.Fatal("recovered replica dropped the WAL freshness record")
			}

			// The recovery must have rewritten the v1 checkpoint as v2 and
			// truncated the WAL it covers.
			ckpt, wal, err := lg.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !IsStateV2(ckpt) {
				t.Fatal("v1 checkpoint was not rewritten as v2")
			}
			if len(wal) != 0 {
				t.Fatalf("%d WAL records survived the migration checkpoint", len(wal))
			}

			// A second recovery takes the v2 fast path and lands on the
			// same state; the checkpoint is not rewritten again.
			r2, err := RecoverReplicaLog(lg, a.CA(), a.PublicKey(), kind, later)
			if err != nil {
				t.Fatal(err)
			}
			if !r2.Snapshot().RootHash().Equal(heap.RootHash()) {
				t.Fatal("v2 recovery differs from heap reference")
			}
			ckpt2, _, err := lg.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ckpt, ckpt2) {
				t.Fatal("v2 fast-path recovery rewrote the checkpoint")
			}
		})
	}
}

func TestOpenMappedStateRejectsCorruption(t *testing.T) {
	now := int64(1_700_000_000)
	for _, kind := range layoutKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			batches := fixtureBatches(0xDA7A, []int{140, 256, 90})
			_, r, _ := mappedFixture(t, kind, batches, now)
			state := r.PersistentStateV2()
			if _, err := OpenMappedState(state); err != nil {
				t.Fatal(err)
			}

			// Walk the section table to locate payload bytes and the last
			// payload end (the buffer may carry trailing alignment padding,
			// which is legitimately ignorable).
			le := binary.LittleEndian
			n := int(le.Uint32(state[8:]))
			flips := []int{8, 16, 16 + 4, 16 + 8} // table count + first entry fields
			lastEnd := 0
			for i := 0; i < n; i++ {
				e := state[16+i*24:]
				off, length := le.Uint64(e[8:]), le.Uint64(e[16:])
				if length > 0 {
					flips = append(flips, int(off), int(off+length/2), int(off+length-1))
				}
				if end := int(off + length); end > lastEnd {
					lastEnd = end
				}
			}

			// Truncations at every structural boundary, including one byte
			// into the last section's payload.
			for _, cut := range []int{0, 4, 8, 15, 16, len(state) / 3, lastEnd - 1} {
				if _, err := OpenMappedState(state[:cut]); !errors.Is(err, ErrBadCheckpoint) {
					t.Fatalf("truncated to %d bytes: err = %v, want ErrBadCheckpoint", cut, err)
				}
			}
			for _, pos := range flips {
				mut := append([]byte(nil), state...)
				mut[pos] ^= 0xFF
				if _, err := OpenMappedState(mut); err == nil {
					t.Fatalf("flip at %d accepted", pos)
				}
			}

			// Magic corruption must fail the cheap IsStateV2 probe, so the
			// v1 decoder never sees the payload.
			mut := append([]byte(nil), state...)
			mut[0] ^= 0xFF
			if IsStateV2(mut) {
				t.Fatal("IsStateV2 accepted corrupted magic")
			}
		})
	}
}

// TestOpenMappedStateRejectsSwappedRoot pins the O(1) structural-root
// check: splicing a correctly-signed root from a different state into an
// otherwise valid checkpoint is caught without rehashing the interior.
func TestOpenMappedStateRejectsSwappedRoot(t *testing.T) {
	now := int64(1_700_000_000)
	a, r1, _ := mappedFixture(t, LayoutSorted, fixtureBatches(0x01, []int{64, 90}), now)
	snap := r1.Snapshot()
	// A validly signed root for a LATER state than the one we will encode.
	msg, err := a.Insert(serial.NewGenerator(0x02, nil).NextN(30), now)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode the earlier structure with the newer signed root spliced
	// in: the signature verifies, but the stored tree root no longer
	// matches the signed root's hash, so opening must fail.
	spliced := encodeStateV2(LayoutSorted, snap.view, snap.bounds, msg.Root, snap.freshness, nil)
	if _, err := OpenMappedState(spliced); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("spliced root: err = %v, want ErrBadCheckpoint", err)
	}
}

// TestFreshnessAdoptionToleratesLag pins the shared-reader liveness rule:
// a freshness statement is adopted whenever it is genuinely newer than
// the one already held, even when it is several periods old by the time
// it is (re-)verified. A mapped reader and a recovery replay both
// evaluate the writer's records long after the writer adopted them; the
// old {p, p−1} window silently dropped every record and froze freshness
// at the checkpoint's period, so a shared reader went stale as soon as
// the writer was more than one ∆ ahead of its last revocation.
func TestFreshnessAdoptionToleratesLag(t *testing.T) {
	now := int64(1_700_000_000)
	a, r, _ := mappedFixture(t, LayoutSorted, fixtureBatches(0x1A6, []int{40, 25}), now)
	period := func(k int) int64 { return now + int64(k)*int64(testDelta.Seconds()) }

	stmt3, err := a.Statement(period(3))
	if err != nil {
		t.Fatal(err)
	}
	stmt7, err := a.Statement(period(7))
	if err != nil {
		t.Fatal(err)
	}
	wal := [][]byte{
		(&FreshnessRecord{Value: stmt3.Value}).Encode(),
		(&FreshnessRecord{Value: stmt7.Value}).Encode(),
	}

	// Mapped at period 9: both records are older than {p, p−1}, and the
	// newest must win.
	ms, err := NewMappedSnapshot(a.CA(), a.PublicKey(), LayoutSorted, r.PersistentStateV2(), wal, period(9), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Freshness().Equal(stmt7.Value) || ms.FreshnessPeriod() != 7 {
		t.Fatalf("mapped freshness (%v, %d), want stmt for period 7", ms.Freshness(), ms.FreshnessPeriod())
	}

	// Heap path, same lag: ApplyFreshness replayed at period 9.
	if err := r.ApplyFreshness(&FreshnessStatement{CA: r.CA(), Value: stmt3.Value}, period(9)); err != nil {
		t.Fatalf("lagged statement rejected: %v", err)
	}
	if err := r.ApplyFreshness(&FreshnessStatement{CA: r.CA(), Value: stmt7.Value}, period(9)); err != nil {
		t.Fatalf("lagged statement rejected: %v", err)
	}
	snap := r.Snapshot()
	if !snap.Freshness().Equal(stmt7.Value) {
		t.Fatal("heap replica did not adopt the newest lagged statement")
	}
	// Monotonicity: replaying the older record again must not regress.
	if err := r.ApplyFreshness(&FreshnessStatement{CA: r.CA(), Value: stmt3.Value}, period(9)); err == nil {
		t.Fatal("older statement re-adopted after a newer one")
	}
	if !r.Snapshot().Freshness().Equal(stmt7.Value) {
		t.Fatal("freshness regressed to an older statement")
	}

	// A value that chains to nothing is still refused.
	bogus := cryptoutil.HashBytes([]byte("not on the chain"))
	if err := r.ApplyFreshness(&FreshnessStatement{CA: r.CA(), Value: bogus}, period(9)); err == nil {
		t.Fatal("off-chain statement accepted")
	}
	ms2, err := NewMappedSnapshot(a.CA(), a.PublicKey(), LayoutSorted, r.PersistentStateV2(),
		[][]byte{(&FreshnessRecord{Value: bogus}).Encode()}, period(9), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ms2.Freshness().Equal(bogus) {
		t.Fatal("mapped reader adopted an off-chain freshness value")
	}
}
