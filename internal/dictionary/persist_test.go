package dictionary

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// persistLayouts are the descriptors the round-trip tests cover: both
// structures plus a non-default forest capacity (whose bucketization — and
// therefore roots — differ from the default's).
func persistLayouts() []LayoutKind {
	return []LayoutKind{LayoutSorted, LayoutForest, LayoutForestWithCap(64)}
}

func newPersistAuthority(t *testing.T, layout LayoutKind) *Authority {
	t.Helper()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAuthority(AuthorityConfig{
		CA:     "CA1",
		Signer: signer,
		Delta:  10 * time.Second,
		Layout: layout,
	}, time.Now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLayoutForestWithCap(t *testing.T) {
	if LayoutForestWithCap(0) != LayoutForest || LayoutForestWithCap(DefaultForestBucketCap) != LayoutForest {
		t.Error("default capacities must normalize to plain LayoutForest")
	}
	if got := LayoutForestWithCap(512).ForestCap(); got != 512 {
		t.Errorf("ForestCap = %d, want 512", got)
	}
	if got := LayoutForest.ForestCap(); got != DefaultForestBucketCap {
		t.Errorf("default ForestCap = %d, want %d", got, DefaultForestBucketCap)
	}
	if got := LayoutSorted.ForestCap(); got != 0 {
		t.Errorf("sorted ForestCap = %d, want 0", got)
	}
	if s := LayoutForestWithCap(512).String(); s != "forest:512" {
		t.Errorf("String = %q", s)
	}
	parsed, err := ParseLayout("forest:512")
	if err != nil || parsed != LayoutForestWithCap(512) {
		t.Errorf("ParseLayout(forest:512) = %v, %v", parsed, err)
	}
	if _, err := ParseLayout("forest:1"); err == nil {
		t.Error("ParseLayout accepted an unusable capacity")
	}
	if _, err := ParseLayout("forest:x"); err == nil {
		t.Error("ParseLayout accepted a non-numeric capacity")
	}
}

// TestForestCapChangesRoot pins the reason the capacity must be persisted:
// two forests over identical content but different caps commit to
// different roots, so a restore that silently changed the cap would reject
// every subsequent update.
func TestForestCapChangesRoot(t *testing.T) {
	serials := serial.NewGenerator(1, nil).NextN(600)
	a := NewTreeWithLayout(LayoutForest)
	b := NewTreeWithLayout(LayoutForestWithCap(64))
	if err := a.InsertBatch(serials); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertBatch(serials); err != nil {
		t.Fatal(err)
	}
	if a.Root().Equal(b.Root()) {
		t.Fatal("different bucket capacities committed to the same root")
	}
	// And the non-default cap is honored structurally.
	f := b.commit.(*forestLayout)
	for i, bk := range f.buckets {
		if len(bk.tree.leaves) > 64 {
			t.Fatalf("bucket %d holds %d leaves, cap 64", i, len(bk.tree.leaves))
		}
	}
	// Proofs from the non-default cap still verify against its root.
	for _, s := range serials[:50] {
		p := b.Prove(s)
		revoked, err := p.Verify(s, b.Root(), b.Count())
		if err != nil || !revoked {
			t.Fatalf("cap-64 proof for %v: revoked=%v err=%v", s, revoked, err)
		}
	}
}

func TestReplicaPersistRoundTrip(t *testing.T) {
	for _, layout := range persistLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			a := newPersistAuthority(t, layout)
			replica := NewReplicaWithLayout("CA1", a.PublicKey(), layout)
			gen := serial.NewGenerator(7, nil)
			now := time.Now().Unix()
			for i := 0; i < 5; i++ {
				msg, err := a.Insert(gen.NextN(20), now)
				if err != nil {
					t.Fatal(err)
				}
				if err := replica.Update(msg); err != nil {
					t.Fatal(err)
				}
			}

			st, err := DecodePersistentState(replica.PersistentState().Encode())
			if err != nil {
				t.Fatal(err)
			}
			if st.Layout != layout {
				t.Fatalf("persisted layout %v, want %v", st.Layout, layout)
			}
			restored, err := RestoreReplica("CA1", a.PublicKey(), st, now)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Count() != replica.Count() {
				t.Fatalf("restored count %d, want %d", restored.Count(), replica.Count())
			}
			if restored.Layout() != layout {
				t.Fatalf("restored layout %v, want %v", restored.Layout(), layout)
			}
			if !restored.Root().Equal(replica.Root()) {
				t.Fatal("restored signed root differs")
			}
			// The restored replica proves statuses that verify against the
			// trust anchor, for present and absent serials alike.
			for _, s := range []serial.Number{replica.Log()[3], serial.NewGenerator(99, nil).Next()} {
				status, err := restored.Prove(s)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := status.Check(s, a.PublicKey(), now); err != nil {
					t.Fatalf("restored status for %v does not verify: %v", s, err)
				}
			}
		})
	}
}

func TestRestoreReplicaRejectsTamperedState(t *testing.T) {
	a := newPersistAuthority(t, LayoutSorted)
	replica := NewReplica("CA1", a.PublicKey())
	now := time.Now().Unix()
	msg, err := a.Insert(serial.NewGenerator(3, nil).NextN(10), now)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Update(msg); err != nil {
		t.Fatal(err)
	}

	// A swapped serial (bit rot past the storage CRCs, or tampering) must
	// fail the root-match check on restore.
	st := replica.PersistentState()
	st.Log[4] = serial.NewGenerator(0xBAD, nil).Next()
	if _, err := RestoreReplica("CA1", a.PublicKey(), st, now); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("tampered log restored: err = %v, want ErrRootMismatch", err)
	}

	// A checkpoint re-signed by a different key fails the trust-anchor
	// check.
	other, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	st2 := replica.PersistentState()
	if _, err := RestoreReplica("CA1", other.Public(), st2, now); err == nil {
		t.Fatal("restore accepted a root signed by an untrusted key")
	}

	// A truncated log (fewer serials than the root commits) must not
	// produce a replica either.
	st3 := replica.PersistentState()
	st3.Log = st3.Log[:5]
	if _, err := RestoreReplica("CA1", a.PublicKey(), st3, now); err == nil {
		t.Fatal("restore accepted a log shorter than the signed count")
	}
}

// TestForestCoalescedCatchupNeedsBounds pins the reason batch bounds
// exist end to end: a replica catching up across bucket splits with one
// coalesced batch commits to a different forest root (and is correctly
// rejected), while the same suffix replayed under the origin's batch
// bounds converges. Before the bounds plumbing, a lagging forest replica
// was permanently wedged here — Resync rebuilt from a single batch too.
func TestForestCoalescedCatchupNeedsBounds(t *testing.T) {
	for _, layout := range []LayoutKind{LayoutForest, LayoutForestWithCap(64)} {
		t.Run(layout.String(), func(t *testing.T) {
			a := newPersistAuthority(t, layout)
			gen := serial.NewGenerator(17, nil)
			now := time.Now().Unix()
			var all []serial.Number
			var bounds []uint64
			var last *IssuanceMessage
			for i := 0; i < 10; i++ {
				batch := gen.NextN(100)
				all = append(all, batch...)
				msg, err := a.Insert(batch, now)
				if err != nil {
					t.Fatal(err)
				}
				last = msg
				bounds = append(bounds, msg.Root.N)
			}

			flat := NewReplicaWithLayout("CA1", a.PublicKey(), layout)
			err := flat.Update(&IssuanceMessage{Serials: all, Root: last.Root})
			if err == nil {
				t.Skip("no split between batches; coalescing happened to agree")
			}
			if !errors.Is(err, ErrRootMismatch) {
				t.Fatalf("coalesced update: err = %v, want ErrRootMismatch", err)
			}

			bounded := NewReplicaWithLayout("CA1", a.PublicKey(), layout)
			if err := bounded.UpdateWithBounds(&IssuanceMessage{Serials: all, Root: last.Root}, bounds); err != nil {
				t.Fatalf("bounded catch-up rejected: %v", err)
			}
			if bounded.Count() != 1000 {
				t.Fatalf("count = %d, want 1000", bounded.Count())
			}
			// Hostile bounds can only cause rejection, never acceptance of a
			// different root; the replica is left unchanged and retryable.
			hostile := NewReplicaWithLayout("CA1", a.PublicKey(), layout)
			if err := hostile.UpdateWithBounds(&IssuanceMessage{Serials: all, Root: last.Root}, []uint64{37, 911}); err == nil {
				t.Fatal("fabricated bounds produced an accepted root")
			}
			if hostile.Count() != 0 {
				t.Fatalf("failed bounded update left %d revocations behind", hostile.Count())
			}
			if err := hostile.UpdateWithBounds(&IssuanceMessage{Serials: all, Root: last.Root}, bounds); err != nil {
				t.Fatalf("retry with honest bounds after hostile attempt: %v", err)
			}
		})
	}
}

// TestRejectedUpdateKeepsSerialIndex pins the rollback scoping: a hostile
// message pairing the genuine latest signed root with a fabricated suffix
// that re-lists an already-revoked serial is rejected — and the rejection
// must not evict that serial from the index (it was never inserted by the
// failed update; deleting by the attacker's batch instead of the actual
// log tail did exactly that).
func TestRejectedUpdateKeepsSerialIndex(t *testing.T) {
	a := newPersistAuthority(t, LayoutSorted)
	gen := serial.NewGenerator(31, nil)
	now := time.Now().Unix()
	first := gen.NextN(4)
	msg1, err := a.Insert(first, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Insert(gen.NextN(4), now); err != nil {
		t.Fatal(err)
	}

	// A replica synced through the first batch only — it is behind by 4.
	r := NewReplica("CA1", a.PublicKey())
	if err := r.Update(msg1); err != nil {
		t.Fatal(err)
	}

	// Hostile catch-up: the genuine latest signed root (n=8) paired with a
	// fabricated suffix that re-lists victim, a serial revoked in batch 1.
	victim := first[0]
	hostile := &IssuanceMessage{
		Serials: append([]serial.Number{victim}, gen.NextN(3)...),
		Root:    a.SignedRoot(),
	}
	for attempt := 0; attempt < 2; attempt++ {
		if err := r.Update(hostile); !errors.Is(err, ErrDuplicateSerial) {
			t.Fatalf("attempt %d: err = %v, want ErrDuplicateSerial", attempt, err)
		}
		if !r.Revoked(victim) {
			t.Fatal("rejected update evicted a pre-existing serial from the index")
		}
		if _, ok := r.tree.Revoked(victim); !ok {
			t.Fatal("rejected update evicted the serial from the live tree index")
		}
		if got := r.Count(); got != 4 {
			t.Fatalf("attempt %d: count = %d, want 4", attempt, got)
		}
	}
	// The honest suffix still applies afterwards.
	sfx, err := a.LogSuffix(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(&IssuanceMessage{Serials: sfx, Root: a.SignedRoot()}); err != nil {
		t.Fatalf("honest suffix after hostile attempts: %v", err)
	}
}

func TestReplayUpdateToleratesOverlap(t *testing.T) {
	a := newPersistAuthority(t, LayoutSorted)
	gen := serial.NewGenerator(5, nil)
	now := time.Now().Unix()
	msg1, err := a.Insert(gen.NextN(4), now)
	if err != nil {
		t.Fatal(err)
	}
	msg2, err := a.Insert(gen.NextN(3), now)
	if err != nil {
		t.Fatal(err)
	}

	// Replica already holds msg1 (the checkpoint); replaying msg1 again
	// (covered), then msg2 (fresh) must converge without error.
	r := NewReplica("CA1", a.PublicKey())
	if err := r.Update(msg1); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*IssuanceMessage{msg1, msg2} {
		if err := ReplayUpdate(r, m, nil); err != nil {
			t.Fatal(err)
		}
	}
	if r.Count() != 7 {
		t.Fatalf("count = %d, want 7", r.Count())
	}
	// A gap (record starts past our state) fails loudly.
	r2 := NewReplica("CA1", a.PublicKey())
	if err := ReplayUpdate(r2, msg2, nil); !errors.Is(err, ErrDesynchronized) {
		t.Fatalf("gap replay: err = %v, want ErrDesynchronized", err)
	}
}

func TestAuthorityPersistRoundTrip(t *testing.T) {
	for _, layout := range persistLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			a := newPersistAuthority(t, layout)
			gen := serial.NewGenerator(11, nil)
			now := time.Now().Unix()

			// Checkpoint mid-history, then more WAL'd inserts.
			var records []*UpdateRecord
			if _, err := a.Insert(gen.NextN(30), now); err != nil {
				t.Fatal(err)
			}
			st := a.PersistentState()
			for i := 0; i < 3; i++ {
				msg, err := a.Insert(gen.NextN(10), now)
				if err != nil {
					t.Fatal(err)
				}
				seed := a.ChainSeed()
				records = append(records, &UpdateRecord{Msg: msg, Seed: &seed})
			}

			// Encode/decode everything, as the storage tier would.
			st2, err := DecodePersistentState(st.Encode())
			if err != nil {
				t.Fatal(err)
			}
			recs := make([]*UpdateRecord, len(records))
			for i, r := range records {
				if recs[i], err = DecodeUpdateRecord(r.Encode()); err != nil {
					t.Fatal(err)
				}
			}

			restored, err := RestoreAuthority(AuthorityConfig{
				CA:     "CA1",
				Signer: a.cfg.Signer,
				Delta:  10 * time.Second,
				Layout: layout,
			}, st2, recs)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Count() != a.Count() {
				t.Fatalf("restored count %d, want %d", restored.Count(), a.Count())
			}
			if !restored.SignedRoot().Equal(a.SignedRoot()) {
				t.Fatal("restored authority signs a different root")
			}
			// The exact chain survives: freshness statements for the same
			// period are identical, which is what keeps already-delivered
			// statuses verifiable across the restart.
			later := now + 25
			want, err := a.Statement(later)
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.Statement(later)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Value.Equal(got.Value) {
				t.Fatal("restored chain produces different freshness statements")
			}
			// And it keeps operating: the next insert verifies on a replica
			// synced across the restart boundary.
			replica := NewReplicaWithLayout("CA1", a.PublicKey(), layout)
			fullLog, err := restored.LogSuffix(0, restored.Count())
			if err != nil {
				t.Fatal(err)
			}
			if err := replica.UpdateWithBounds(&IssuanceMessage{Serials: fullLog, Root: restored.SignedRoot()},
				restored.PersistentState().Batches); err != nil {
				t.Fatal(err)
			}
			msg, err := restored.Insert(gen.NextN(5), later)
			if err != nil {
				t.Fatal(err)
			}
			if err := replica.Update(msg); err != nil {
				t.Fatalf("post-restore insert rejected by replica: %v", err)
			}
		})
	}
}

func TestRestoreAuthorityRejectsMismatch(t *testing.T) {
	a := newPersistAuthority(t, LayoutForest)
	now := time.Now().Unix()
	if _, err := a.Insert(serial.NewGenerator(2, nil).NextN(10), now); err != nil {
		t.Fatal(err)
	}
	st := a.PersistentState()
	cfg := AuthorityConfig{CA: "CA1", Signer: a.cfg.Signer, Delta: 10 * time.Second}

	// Layout (or bucket capacity) drift is refused.
	cfg.Layout = LayoutForestWithCap(64)
	if _, err := RestoreAuthority(cfg, st, nil); err == nil {
		t.Fatal("restore accepted a changed bucket capacity")
	}
	cfg.Layout = LayoutForest

	// A tampered chain seed no longer reproduces the signed anchor.
	bad := *st.ChainSeed
	bad[0] ^= 1
	st.ChainSeed = &bad
	if _, err := RestoreAuthority(cfg, st, nil); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("tampered chain seed: err = %v, want ErrRootMismatch", err)
	}

	// A different signing key fails signature verification.
	st2 := a.PersistentState()
	other, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Signer = other
	if _, err := RestoreAuthority(cfg, st2, nil); err == nil {
		t.Fatal("restore accepted a root under the wrong signer")
	}
}

// TestPersistCrashConsistencyProperty is the dictionary half of the
// crash-consistency story: random corruption of checkpoint or WAL bytes
// either fails decode/restore loudly or — when the corruption happens to
// leave valid framing — restores a state whose signed root verifies
// against the trust anchor and whose log is one of the honest history's
// prefixes. It can never fabricate a state the CA did not sign.
func TestPersistCrashConsistencyProperty(t *testing.T) {
	a := newPersistAuthority(t, LayoutForest)
	replica := NewReplicaWithLayout("CA1", a.PublicKey(), LayoutForest)
	gen := serial.NewGenerator(21, nil)
	now := time.Now().Unix()
	honestRoots := map[cryptoutil.Hash]uint64{} // root hash → count
	for i := 0; i < 8; i++ {
		msg, err := a.Insert(gen.NextN(16), now)
		if err != nil {
			t.Fatal(err)
		}
		if err := replica.Update(msg); err != nil {
			t.Fatal(err)
		}
		honestRoots[msg.Root.Root] = msg.Root.N
	}
	clean := replica.PersistentState().Encode()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		buf := append([]byte(nil), clean...)
		switch trial % 3 {
		case 0: // single bit flip
			buf[rng.Intn(len(buf))] ^= byte(1) << rng.Intn(8)
		case 1: // truncation
			buf = buf[:rng.Intn(len(buf))]
		default: // a flipped bit AND a truncation
			buf = buf[:1+rng.Intn(len(buf)-1)]
			buf[rng.Intn(len(buf))] ^= byte(1) << rng.Intn(8)
		}
		st, err := DecodePersistentState(buf)
		if err != nil {
			continue // loud decode failure: acceptable
		}
		restored, err := RestoreReplica("CA1", a.PublicKey(), st, now)
		if err != nil {
			continue // loud verification failure: acceptable
		}
		// Whatever restored must be an honest, signed state.
		root := restored.Root()
		if root == nil {
			if restored.Count() != 0 {
				t.Fatalf("trial %d: rootless replica with %d revocations", trial, restored.Count())
			}
			continue
		}
		if err := root.VerifySignature(a.PublicKey()); err != nil {
			t.Fatalf("trial %d: restored an unverifiable root: %v", trial, err)
		}
		if n, ok := honestRoots[root.Root]; !ok || n != restored.Count() {
			t.Fatalf("trial %d: restored a root the CA never signed (n=%d)", trial, restored.Count())
		}
	}
}

// FuzzDecodePersistentState exercises the checkpoint decoder on arbitrary
// bytes: it must never panic, and anything it accepts must re-encode to
// the same canonical bytes.
func FuzzDecodePersistentState(f *testing.F) {
	a, err := NewAuthority(AuthorityConfig{
		CA:     "CA1",
		Signer: mustSigner(f),
		Delta:  10 * time.Second,
		Layout: LayoutForestWithCap(64),
	}, 1000)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := a.Insert(serial.NewGenerator(1, nil).NextN(30), 1000); err != nil {
		f.Fatal(err)
	}
	f.Add(a.PersistentState().Encode())
	r := NewReplica("CA1", a.PublicKey())
	f.Add(r.PersistentState().Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodePersistentState(data)
		if err != nil {
			return
		}
		round, err := DecodePersistentState(st.Encode())
		if err != nil {
			t.Fatalf("accepted state does not re-decode: %v", err)
		}
		if round.Layout != st.Layout || len(round.Log) != len(st.Log) {
			t.Fatal("re-decoded state differs")
		}
	})
}

func mustSigner(f *testing.F) *cryptoutil.Signer {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		f.Fatal(err)
	}
	return signer
}
