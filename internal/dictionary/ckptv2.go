package dictionary

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// Checkpoint format v2: an offset-indexed encoding of one dictionary's
// committed state that is traversable WITHOUT deserialization. Where the
// v1 encoding (PersistentState.Encode) persists the issuance log and makes
// recovery replay it — O(n) hashing to rebuild the commitment structure —
// v2 persists the structure itself in fixed-width, offset-computable
// records, so that:
//
//   - a restart materializes the heap tree by copying arrays instead of
//     rehashing them (map-don't-replay), and
//   - a mapped view (MappedSnapshot) serves Prove/Status straight off the
//     encoded bytes: a leaf lookup, an inclusion/absence path, and a
//     bucket-range probe are each O(log n) pointer arithmetic over []byte,
//     with zero per-process heap for the dictionary.
//
// Layout. The payload opens with an 8-byte magic, a section count, and a
// fixed-width section table; every section is CRC-framed and starts at an
// 8-byte-aligned offset. All fixed-width fields in v2 are LITTLE-endian —
// deliberately unlike the big-endian wire formats: these bytes are read in
// place on the serving path, and every deployment target is little-endian,
// so reads compile to plain loads. (The wire formats cross trust
// boundaries and stay big-endian; nothing here is wire.)
//
//	magic "RITMDV2\x00"
//	sectionCount u32 | reserved u32
//	sectionCount × { id u32, crc32(section) u32, offset u64, length u64 }
//	...sections, each 8-byte aligned...
//
// Sections (ids below; 4–6 exist only for the forest layout):
//
//	header       layout u32 | flags u32 | count u64
//	leaves       count × 32 B { num u64, serialLen u8, pad[3], serial[20] },
//	             sorted ascending by serial; num inverts to the issuance log
//	levels       sorted: every interior level, level 0 (leaf hashes) first,
//	             ceil-halved up to the root — sizes derivable from count.
//	             forest: the global leaf-hash array only (each bucket's
//	             level 0 is a contiguous slice of it, because buckets tile
//	             the sorted leaf order)
//	bucketdir    nb × 96 B { leafStart u64, leafCount u64, levelsOff u64,
//	             loLen u8, hiLen u8, pad[6], lo[20], hi[20], node[20], pad[4] }
//	bucketlevels the interior levels (level ≥ 1) of every bucket,
//	             concatenated in directory order at levelsOff
//	spine        the spine levels, level 0 (bucket nodes) first
//	batches      nBatches × u64, the cumulative insertion-batch bounds
//	root         treeRoot[20] | freshness[20] | hasRoot u8 | hasSeed u8 |
//	             pad[2] | rootLen u32 | SignedRoot.Encode() | seed[20]?
//
// Trust. v2 restores do NOT re-verify the whole structure by rehashing —
// that would be the O(n) work the format exists to avoid. The reader
// verifies the embedded SignedRoot's signature against the trust anchor,
// checks the structural root recorded by the file (the top of the stored
// hash arrays) against the signed root, and CRC-checks every section; the
// interior arrays are then trusted as-is. This is sound for the RA's
// serving role: RAs are untrusted provers (§V), every emitted proof is
// verified by the client against the CA signature, so bytes that are
// CRC-valid but wrong can only produce proofs that FAIL client
// verification — a self-advertising outage, never an accepted forgery.
// The CA-side restore path keeps full replay verification (see
// RestoreAuthority); v2 only changes what replicas and mapped readers do.

// stateV2Magic opens every v2 checkpoint payload. The first byte ('R')
// is distinct from v1's leading version byte 0x01 and from a WAL record's
// leading bool byte (0x00/0x01), so all three dispatch on one byte.
var stateV2Magic = []byte("RITMDV2\x00")

// v2 section identifiers.
const (
	v2SecHeader       = 1
	v2SecLeaves       = 2
	v2SecLevels       = 3
	v2SecBucketDir    = 4
	v2SecBucketLevels = 5
	v2SecSpine        = 6
	v2SecBatches      = 7
	v2SecRoot         = 8
)

// Fixed record sizes of the v2 format.
const (
	v2LeafRecSize   = 32
	v2BucketRecSize = 96
	v2TableEntry    = 24
	v2HeaderLen     = 16 // magic + count + reserved
)

// ErrBadCheckpoint reports a v2 checkpoint that fails structural
// validation (framing, CRC, ordering, or tiling invariants). Callers treat
// it like any other corruption: refuse loudly, never degrade silently.
var ErrBadCheckpoint = errors.New("dictionary: malformed v2 checkpoint")

// IsStateV2 reports whether buf begins with the v2 checkpoint magic.
func IsStateV2(buf []byte) bool {
	return len(buf) >= len(stateV2Magic) && bytes.Equal(buf[:len(stateV2Magic)], stateV2Magic)
}

// levelSizesFor returns the node count of every level of a tree over n
// leaves, level 0 first: n, ⌈n/2⌉, …, 1. Nil for n == 0. This is the shape
// contract shared with buildLevels, which is what lets the mapped reader
// derive every level offset from the leaf count alone.
func levelSizesFor(n int) []int {
	if n <= 0 {
		return nil
	}
	sizes := make([]int, 1, 2+bitsLen(n))
	sizes[0] = n
	for n > 1 {
		n = (n + 1) / 2
		sizes = append(sizes, n)
	}
	return sizes
}

// totalLevelNodes returns the total node count over all levels of a tree
// with n leaves (level 0 included).
func totalLevelNodes(n int) int {
	total := 0
	for _, s := range levelSizesFor(n) {
		total += s
	}
	return total
}

// interiorLevelBytes returns the encoded size of levels ≥ 1 of a tree with
// n leaves — a bucket's share of the bucketlevels blob.
func interiorLevelBytes(n int) int {
	return (totalLevelNodes(n) - n) * cryptoutil.HashSize
}

func align8(n int) int { return (n + 7) &^ 7 }

// v2Section is one section to lay out.
type v2Section struct {
	id   uint32
	data []byte
}

// encodeV2Sections assembles the final payload: magic, table, and
// 8-byte-aligned CRC-framed sections.
func encodeV2Sections(secs []v2Section) []byte {
	le := binary.LittleEndian
	off := v2HeaderLen + v2TableEntry*len(secs)
	offs := make([]int, len(secs))
	for i, s := range secs {
		off = align8(off)
		offs[i] = off
		off += len(s.data)
	}
	buf := make([]byte, align8(off))
	copy(buf, stateV2Magic)
	le.PutUint32(buf[8:], uint32(len(secs)))
	for i, s := range secs {
		e := v2HeaderLen + v2TableEntry*i
		le.PutUint32(buf[e:], s.id)
		le.PutUint32(buf[e+4:], crc32.ChecksumIEEE(s.data))
		le.PutUint64(buf[e+8:], uint64(offs[i]))
		le.PutUint64(buf[e+16:], uint64(len(s.data)))
		copy(buf[offs[i]:], s.data)
	}
	return buf
}

// putLeafRec writes one 32-byte leaf record.
func putLeafRec(dst []byte, lf Leaf) {
	binary.LittleEndian.PutUint64(dst, lf.Num)
	raw := lf.Serial.Raw()
	dst[8] = byte(len(raw))
	copy(dst[12:], raw)
}

// encodeLeaves writes the sorted leaf array section.
func encodeLeaves(leaves []Leaf) []byte {
	buf := make([]byte, len(leaves)*v2LeafRecSize)
	for i, lf := range leaves {
		putLeafRec(buf[i*v2LeafRecSize:], lf)
	}
	return buf
}

// encodeHashLevels concatenates hash levels, level 0 first.
func encodeHashLevels(levels [][]cryptoutil.Hash) []byte {
	total := 0
	for _, lvl := range levels {
		total += len(lvl)
	}
	buf := make([]byte, 0, total*cryptoutil.HashSize)
	for _, lvl := range levels {
		for i := range lvl {
			buf = append(buf, lvl[i][:]...)
		}
	}
	return buf
}

// encodeRootSection writes the root/freshness/seed section.
func encodeRootSection(treeRoot, freshness cryptoutil.Hash, root *SignedRoot, seed *cryptoutil.Hash) []byte {
	var rootBytes []byte
	if root != nil {
		rootBytes = root.Encode()
	}
	buf := make([]byte, 48, 48+len(rootBytes)+cryptoutil.HashSize)
	copy(buf, treeRoot[:])
	copy(buf[20:], freshness[:])
	if root != nil {
		buf[40] = 1
	}
	if seed != nil {
		buf[41] = 1
	}
	binary.LittleEndian.PutUint32(buf[44:], uint32(len(rootBytes)))
	buf = append(buf, rootBytes...)
	if seed != nil {
		buf = append(buf, seed[:]...)
	}
	return buf
}

// encodeStateV2 serializes one committed dictionary version in checkpoint
// format v2. view must be the frozen LayoutView the other arguments are
// consistent with (same publication).
func encodeStateV2(layout LayoutKind, view LayoutView, bounds []uint64, root *SignedRoot, freshness cryptoutil.Hash, seed *cryptoutil.Hash) []byte {
	le := binary.LittleEndian

	batches := make([]byte, len(bounds)*8)
	for i, b := range bounds {
		le.PutUint64(batches[i*8:], b)
	}

	var secs []v2Section
	header := make([]byte, 16)
	le.PutUint32(header, uint32(layout))

	switch v := view.(type) {
	case sortedView:
		le.PutUint64(header[8:], uint64(len(v.leaves)))
		secs = []v2Section{
			{v2SecHeader, header},
			{v2SecLeaves, encodeLeaves(v.leaves)},
			{v2SecLevels, encodeHashLevels(v.levels)},
			{v2SecBatches, batches},
			{v2SecRoot, encodeRootSection(v.Root(), freshness, root, seed)},
		}

	case forestView:
		count := 0
		for _, b := range v.buckets {
			count += len(b.tree.leaves)
		}
		le.PutUint64(header[8:], uint64(count))

		leaves := make([]byte, count*v2LeafRecSize)
		leafHashes := make([]byte, 0, count*cryptoutil.HashSize)
		dir := make([]byte, len(v.buckets)*v2BucketRecSize)
		var blob []byte
		leafStart, levelsOff := 0, 0
		for bi, b := range v.buckets {
			for i, lf := range b.tree.leaves {
				putLeafRec(leaves[(leafStart+i)*v2LeafRecSize:], lf)
			}
			for _, h := range b.leafHashes() {
				leafHashes = append(leafHashes, h[:]...)
			}
			rec := dir[bi*v2BucketRecSize:]
			le.PutUint64(rec, uint64(leafStart))
			le.PutUint64(rec[8:], uint64(len(b.tree.leaves)))
			le.PutUint64(rec[16:], uint64(levelsOff))
			lo, hi := b.lo.Raw(), b.hi.Raw()
			rec[24], rec[25] = byte(len(lo)), byte(len(hi))
			copy(rec[32:], lo)
			copy(rec[52:], hi)
			copy(rec[72:], b.node[:])
			for _, lvl := range b.tree.levels[1:] {
				for i := range lvl {
					blob = append(blob, lvl[i][:]...)
				}
			}
			leafStart += len(b.tree.leaves)
			levelsOff += interiorLevelBytes(len(b.tree.leaves))
		}
		secs = []v2Section{
			{v2SecHeader, header},
			{v2SecLeaves, leaves},
			{v2SecLevels, leafHashes},
			{v2SecBucketDir, dir},
			{v2SecBucketLevels, blob},
			{v2SecSpine, encodeHashLevels(v.spine)},
			{v2SecBatches, batches},
			{v2SecRoot, encodeRootSection(v.Root(), freshness, root, seed)},
		}

	default:
		// Unknown view implementation: fall back to an empty structure of
		// the layout. Unreachable for the layouts this package defines.
		panic(fmt.Sprintf("dictionary: encodeStateV2 over unknown view %T", view))
	}
	return encodeV2Sections(secs)
}

// PersistentStateV2 exports the replica's current committed state encoded
// in checkpoint format v2. Like PersistentState it reads one published
// snapshot, so log, root, and freshness are mutually consistent; unlike
// v1 it persists the commitment structure itself, making the checkpoint
// mappable (MappedSnapshot) and the restart replay-free.
func (r *Replica) PersistentStateV2() []byte {
	snap := r.Snapshot()
	return encodeStateV2(r.layoutKind, snap.view, snap.bounds, snap.root, snap.freshness, nil)
}

// PersistentStateV2 exports the authority's committed state — structure,
// signed root, and chain seed — encoded in checkpoint format v2.
func (a *Authority) PersistentStateV2() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	seed := a.chain.Seed()
	return encodeStateV2(a.cfg.Layout, a.tree.view(), append([]uint64(nil), a.tree.BatchBounds()...), a.root, cryptoutil.Hash{}, &seed)
}

// MappedState is a validated, zero-copy view of one v2 checkpoint payload.
// Every accessor is pointer arithmetic over the underlying buffer; nothing
// is deserialized up front except the (small) signed-root section and the
// per-level offset tables. The buffer typically aliases an mmap'd file —
// the caller owns its lifetime and must keep it valid for the life of the
// MappedState and everything derived from it.
type MappedState struct {
	layout LayoutKind
	count  int

	leaves []byte // section 2: count × 32 B records
	levels []byte // section 3: global hash array(s)

	// Sorted layout: byte offset of each level inside levels.
	levelOffs  []int
	levelSizes []int

	// Forest layout.
	nb        int
	dir       []byte // section 4
	blob      []byte // section 5
	spine     []byte // section 6
	spineOffs []int
	spineSize []int

	bounds []byte // section 7: nBatches × u64

	treeRoot  cryptoutil.Hash
	freshness cryptoutil.Hash
	root      *SignedRoot
	seed      *cryptoutil.Hash
}

// Layout returns the layout descriptor the checkpoint was built with.
func (st *MappedState) Layout() LayoutKind { return st.layout }

// Count returns the number of revocations in the checkpoint.
func (st *MappedState) Count() uint64 { return uint64(st.count) }

// Root returns the embedded signed root (nil for a never-published
// dictionary). The caller must verify its signature before serving.
func (st *MappedState) Root() *SignedRoot { return st.root }

// RootHash returns the structural root recorded by the checkpoint.
func (st *MappedState) RootHash() cryptoutil.Hash { return st.treeRoot }

// Freshness returns the recorded freshness-statement value.
func (st *MappedState) Freshness() cryptoutil.Hash { return st.freshness }

// ChainSeed returns the recorded authority chain seed, nil on
// replica-side checkpoints.
func (st *MappedState) ChainSeed() *cryptoutil.Hash { return st.seed }

// Batches materializes the insertion-batch bounds.
func (st *MappedState) Batches() []uint64 {
	n := len(st.bounds) / 8
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(st.bounds[i*8:])
	}
	return out
}

// leafRaw returns the serial bytes and revocation number of sorted leaf i
// without copying or validating; the serial aliases the mapped buffer.
func (st *MappedState) leafRaw(i int) ([]byte, uint64) {
	rec := st.leaves[i*v2LeafRecSize : (i+1)*v2LeafRecSize]
	return rec[12 : 12+rec[8]], binary.LittleEndian.Uint64(rec)
}

// leafAt materializes sorted leaf i as a Leaf (the serial is copied).
func (st *MappedState) leafAt(i int) (Leaf, error) {
	raw, num := st.leafRaw(i)
	s, err := serial.New(raw)
	if err != nil {
		return Leaf{}, fmt.Errorf("%w: leaf %d: %v", ErrBadCheckpoint, i, err)
	}
	return Leaf{Serial: s, Num: num}, nil
}

// hashAt reads the 20-byte hash at index idx of a hash region.
func hashAt(region []byte, base, idx int) cryptoutil.Hash {
	var h cryptoutil.Hash
	copy(h[:], region[base+idx*cryptoutil.HashSize:])
	return h
}

// compareRaw orders two canonical serial encodings the way serial.Number
// does: by length, then lexicographically — numeric order for minimal
// big-endian encodings.
func compareRaw(a, b []byte) int {
	if d := len(a) - len(b); d != 0 {
		if d < 0 {
			return -1
		}
		return 1
	}
	return bytes.Compare(a, b)
}

// searchLeaf returns the index of the first leaf with serial ≥ s over the
// global sorted leaf array — binary search, two loads per probe.
func (st *MappedState) searchLeaf(s serial.Number) int {
	raw := s.Raw()
	lo, hi := 0, st.count
	for lo < hi {
		mid := (lo + hi) / 2
		leaf, _ := st.leafRaw(mid)
		if compareRaw(leaf, raw) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mlev is one hash level of a mapped structure: a region, a base offset,
// and a node count. appendMappedPath walks a []mlev the way pathAt walks
// heap levels, so mapped and heap proofs are byte-identical.
type mlev struct {
	region []byte
	base   int
	size   int
}

// appendMappedPath is appendHeapPath over a mapped level structure: the
// pathOver walk writing into the arena's shared path array.
func (a *proofArena) appendMappedPath(levels []mlev, idx int) []cryptoutil.Hash {
	if len(levels) == 0 || idx < 0 || idx >= levels[0].size {
		return nil
	}
	start := len(a.paths)
	for lvl := 0; lvl < len(levels)-1; lvl++ {
		sib := idx ^ 1
		if sib < levels[lvl].size {
			a.paths = append(a.paths, hashAt(levels[lvl].region, levels[lvl].base, sib))
		}
		idx /= 2
	}
	return a.paths[start:len(a.paths):len(a.paths)]
}

// fillMappedLeaf populates the arena's next inline ProofLeaf from mapped
// leaf leafStart+idx. The serial is copied off the map (leafAt) — the
// checkpoint may be unmapped while a cached Status still holds the proof.
func (a *proofArena) fillMappedLeaf(st *MappedState, leafStart, idx int, levels []mlev) *ProofLeaf {
	lf, err := st.leafAt(leafStart + idx)
	if err != nil {
		// OpenMappedState validated every leaf record; see mustLeaf.
		panic(err)
	}
	pl := &a.leaves[a.nleaf]
	a.nleaf++
	pl.Serial = lf.Serial
	pl.Num = lf.Num
	pl.Index = uint64(idx)
	pl.Path = a.appendMappedPath(levels, idx)
	return pl
}

// proveRun is proveLocal over a mapped leaf run: the sorted layout's whole
// leaf array (leafStart 0) or one forest bucket. lo is the caller's search
// result (first index in the run with serial ≥ s). The spine path, when sp
// is non-nil, comes from heapSpine (overlay-rebuilt) or mappedSpine
// (pure-mapped), whichever is non-nil. levels is hoisted here so the
// []mlev structure is built once per proof rather than once per leaf.
func (st *MappedState) proveRun(s serial.Number, leafStart, count, lo int, levels []mlev, sp *SpineSegment, heapSpine [][]cryptoutil.Hash, mappedSpine []mlev, spineIdx int) *Proof {
	kind := ProofAbsence
	li, ri := -1, -1
	equal := false
	if lo < count {
		raw, _ := st.leafRaw(leafStart + lo)
		equal = compareRaw(raw, s.Raw()) == 0
	}
	switch {
	case equal:
		kind, li = ProofPresence, lo
	case lo == 0:
		ri = 0
	case lo == count:
		li = count - 1
	default:
		li, ri = lo-1, lo
	}
	perLeaf := len(levels) - 1
	pathCap := 0
	if li >= 0 {
		pathCap += perLeaf
	}
	if ri >= 0 {
		pathCap += perLeaf
	}
	if sp != nil {
		if heapSpine != nil {
			pathCap += len(heapSpine) - 1
		} else if len(mappedSpine) > 0 {
			pathCap += len(mappedSpine) - 1
		}
	}
	a := newProofArena(kind, pathCap)
	if li >= 0 {
		a.proof.Left = a.fillMappedLeaf(st, leafStart, li, levels)
	}
	if ri >= 0 {
		a.proof.Right = a.fillMappedLeaf(st, leafStart, ri, levels)
	}
	if sp != nil {
		a.spine = *sp
		if heapSpine != nil {
			a.spine.Path = a.appendHeapPath(heapSpine, spineIdx)
		} else {
			a.spine.Path = a.appendMappedPath(mappedSpine, spineIdx)
		}
		a.proof.Spine = &a.spine
	}
	return &a.proof
}

// sortedLevels returns the mapped level structure of the sorted layout.
func (st *MappedState) sortedLevels() []mlev {
	out := make([]mlev, len(st.levelSizes))
	for i := range out {
		out[i] = mlev{region: st.levels, base: st.levelOffs[i], size: st.levelSizes[i]}
	}
	return out
}

// bucketRec returns the raw 96-byte directory record of bucket bi.
func (st *MappedState) bucketRec(bi int) []byte {
	return st.dir[bi*v2BucketRecSize : (bi+1)*v2BucketRecSize]
}

// bucketMeta decodes the directory entry of bucket bi.
type bucketMeta struct {
	leafStart, leafCount int
	levelsOff            int
	lo, hi               []byte // canonical serial bytes; empty = unbounded
	node                 cryptoutil.Hash
}

func (st *MappedState) bucketMeta(bi int) bucketMeta {
	rec := st.bucketRec(bi)
	le := binary.LittleEndian
	var m bucketMeta
	m.leafStart = int(le.Uint64(rec))
	m.leafCount = int(le.Uint64(rec[8:]))
	m.levelsOff = int(le.Uint64(rec[16:]))
	m.lo = rec[32 : 32+rec[24]]
	m.hi = rec[52 : 52+rec[25]]
	copy(m.node[:], rec[72:])
	return m
}

// bucketFor returns the bucket whose committed range contains s — the
// mapped analog of forestView.bucketFor, a binary search over the
// directory's lo bounds.
func (st *MappedState) bucketFor(s serial.Number) int {
	raw := s.Raw()
	lo, hi := 0, st.nb
	for lo < hi {
		mid := (lo + hi) / 2
		rec := st.bucketRec(mid)
		bLo := rec[32 : 32+rec[24]]
		// First bucket with a bounded lo strictly above s.
		if len(bLo) != 0 && compareRaw(bLo, raw) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo - 1
}

// bucketLevels returns the mapped level structure of bucket bi: level 0 is
// its slice of the global leaf-hash array, the rest live in the blob.
func (st *MappedState) bucketLevels(m bucketMeta) []mlev {
	sizes := levelSizesFor(m.leafCount)
	out := make([]mlev, len(sizes))
	out[0] = mlev{region: st.levels, base: m.leafStart * cryptoutil.HashSize, size: sizes[0]}
	off := m.levelsOff
	for i := 1; i < len(sizes); i++ {
		out[i] = mlev{region: st.blob, base: off, size: sizes[i]}
		off += sizes[i] * cryptoutil.HashSize
	}
	return out
}

// bucketSearch returns the first bucket-local leaf index with serial ≥ s.
func (st *MappedState) bucketSearch(m bucketMeta, s serial.Number) int {
	raw := s.Raw()
	lo, hi := 0, m.leafCount
	for lo < hi {
		mid := (lo + hi) / 2
		leaf, _ := st.leafRaw(m.leafStart + mid)
		if compareRaw(leaf, raw) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// spineLevels returns the mapped spine structure.
func (st *MappedState) spineLevels() []mlev {
	out := make([]mlev, len(st.spineSize))
	for i := range out {
		out[i] = mlev{region: st.spine, base: st.spineOffs[i], size: st.spineSize[i]}
	}
	return out
}

// spineNode returns spine level-0 node bi (== bucket bi's commitment).
func (st *MappedState) spineNode(bi int) cryptoutil.Hash {
	return hashAt(st.spine, 0, bi)
}

// sectionTable maps section ids to payload slices after bounds and CRC
// validation.
func sectionTable(buf []byte) (map[uint32][]byte, error) {
	if !IsStateV2(buf) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	le := binary.LittleEndian
	if len(buf) < v2HeaderLen {
		return nil, fmt.Errorf("%w: truncated header", ErrBadCheckpoint)
	}
	n := int(le.Uint32(buf[8:]))
	const maxSections = 64
	if n > maxSections || v2HeaderLen+n*v2TableEntry > len(buf) {
		return nil, fmt.Errorf("%w: section table of %d entries", ErrBadCheckpoint, n)
	}
	secs := make(map[uint32][]byte, n)
	for i := 0; i < n; i++ {
		e := buf[v2HeaderLen+i*v2TableEntry:]
		id := le.Uint32(e)
		crc := le.Uint32(e[4:])
		off := le.Uint64(e[8:])
		length := le.Uint64(e[16:])
		if off%8 != 0 || off > uint64(len(buf)) || length > uint64(len(buf))-off {
			return nil, fmt.Errorf("%w: section %d out of bounds", ErrBadCheckpoint, id)
		}
		data := buf[off : off+length]
		if crc32.ChecksumIEEE(data) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrBadCheckpoint, id)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrBadCheckpoint, id)
		}
		secs[id] = data
	}
	return secs, nil
}

// OpenMappedState validates a v2 checkpoint payload and returns its
// zero-copy view. Validation is structural — framing, section CRCs,
// leaf ordering, bucket tiling, and the recorded root's consistency with
// the stored top-level hash — and deliberately NOT a rehash of the
// interior (see the package trust note above). buf is retained; it must
// stay valid (and unmodified) for the life of the result.
func OpenMappedState(buf []byte) (*MappedState, error) {
	secs, err := sectionTable(buf)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian

	header, ok := secs[v2SecHeader]
	if !ok || len(header) != 16 {
		return nil, fmt.Errorf("%w: missing or misshapen header section", ErrBadCheckpoint)
	}
	st := &MappedState{layout: LayoutKind(le.Uint32(header))}
	switch st.layout.base() {
	case LayoutSorted, LayoutForest:
	default:
		return nil, fmt.Errorf("%w: unknown layout %v", ErrBadCheckpoint, st.layout)
	}
	count := le.Uint64(header[8:])
	const maxLog = 1 << 28
	if count > maxLog {
		return nil, fmt.Errorf("%w: %d leaves exceeds limit", ErrBadCheckpoint, count)
	}
	st.count = int(count)

	st.leaves, ok = secs[v2SecLeaves]
	if !ok || len(st.leaves) != st.count*v2LeafRecSize {
		return nil, fmt.Errorf("%w: leaf section holds %d bytes, want %d", ErrBadCheckpoint, len(st.leaves), st.count*v2LeafRecSize)
	}
	// One linear pass over the leaf records: canonical serials, strict
	// ascending order, revocation numbers in range. Byte compares only —
	// no hashing, no allocation.
	var prev []byte
	for i := 0; i < st.count; i++ {
		rec := st.leaves[i*v2LeafRecSize:]
		sl := int(rec[8])
		if sl < 1 || sl > serial.MaxLen || (sl > 1 && rec[12] == 0) {
			return nil, fmt.Errorf("%w: leaf %d has invalid serial", ErrBadCheckpoint, i)
		}
		raw := rec[12 : 12+sl]
		if prev != nil && compareRaw(prev, raw) >= 0 {
			return nil, fmt.Errorf("%w: leaves not strictly sorted at %d", ErrBadCheckpoint, i)
		}
		prev = raw
		if num := le.Uint64(rec); num < 1 || num > count {
			return nil, fmt.Errorf("%w: leaf %d revocation number %d outside [1,%d]", ErrBadCheckpoint, i, num, count)
		}
	}

	st.levels, ok = secs[v2SecLevels]
	if !ok {
		return nil, fmt.Errorf("%w: missing levels section", ErrBadCheckpoint)
	}

	if st.layout.base() == LayoutForest {
		if err := st.openForest(secs); err != nil {
			return nil, err
		}
	} else {
		st.levelSizes = levelSizesFor(st.count)
		if len(st.levels) != totalLevelNodes(st.count)*cryptoutil.HashSize {
			return nil, fmt.Errorf("%w: levels section holds %d bytes, want %d", ErrBadCheckpoint, len(st.levels), totalLevelNodes(st.count)*cryptoutil.HashSize)
		}
		st.levelOffs = make([]int, len(st.levelSizes))
		off := 0
		for i, s := range st.levelSizes {
			st.levelOffs[i] = off
			off += s * cryptoutil.HashSize
		}
	}

	st.bounds, ok = secs[v2SecBatches]
	if !ok || len(st.bounds)%8 != 0 {
		return nil, fmt.Errorf("%w: missing or misaligned batches section", ErrBadCheckpoint)
	}
	nB := len(st.bounds) / 8
	if uint64(nB) > count {
		return nil, fmt.Errorf("%w: %d batches for %d leaves", ErrBadCheckpoint, nB, count)
	}
	prevB := uint64(0)
	for i := 0; i < nB; i++ {
		b := le.Uint64(st.bounds[i*8:])
		if b <= prevB || b > count {
			return nil, fmt.Errorf("%w: batch bounds not strictly ascending at %d", ErrBadCheckpoint, i)
		}
		prevB = b
	}
	if count > 0 && (nB == 0 || prevB != count) {
		return nil, fmt.Errorf("%w: batch bounds end at %d, leaf count %d", ErrBadCheckpoint, prevB, count)
	}

	if err := st.openRoot(secs); err != nil {
		return nil, err
	}
	return st, nil
}

// openForest validates the forest-only sections: the bucket directory's
// tiling invariants, the per-bucket interior-level blob, and the spine.
func (st *MappedState) openForest(secs map[uint32][]byte) error {
	le := binary.LittleEndian
	if len(st.levels) != st.count*cryptoutil.HashSize {
		return fmt.Errorf("%w: leaf-hash section holds %d bytes, want %d", ErrBadCheckpoint, len(st.levels), st.count*cryptoutil.HashSize)
	}
	var ok bool
	st.dir, ok = secs[v2SecBucketDir]
	if !ok || len(st.dir)%v2BucketRecSize != 0 {
		return fmt.Errorf("%w: missing or misshapen bucket directory", ErrBadCheckpoint)
	}
	st.nb = len(st.dir) / v2BucketRecSize
	st.blob, ok = secs[v2SecBucketLevels]
	if !ok {
		return fmt.Errorf("%w: missing bucket-levels section", ErrBadCheckpoint)
	}
	st.spine, ok = secs[v2SecSpine]
	if !ok {
		return fmt.Errorf("%w: missing spine section", ErrBadCheckpoint)
	}
	if st.count == 0 {
		if st.nb != 0 || len(st.blob) != 0 || len(st.spine) != 0 {
			return fmt.Errorf("%w: empty forest with structure sections", ErrBadCheckpoint)
		}
		return nil
	}
	if st.nb == 0 {
		return fmt.Errorf("%w: %d leaves but no buckets", ErrBadCheckpoint, st.count)
	}
	cap := st.layout.ForestCap()
	leafStart, levelsOff := 0, 0
	var prevHi []byte
	for bi := 0; bi < st.nb; bi++ {
		rec := st.bucketRec(bi)
		loLen, hiLen := int(rec[24]), int(rec[25])
		if loLen > serial.MaxLen || hiLen > serial.MaxLen ||
			(loLen > 1 && rec[32] == 0) || (hiLen > 1 && rec[52] == 0) {
			return fmt.Errorf("%w: bucket %d bound encoding", ErrBadCheckpoint, bi)
		}
		lo, hi := rec[32:32+loLen], rec[52:52+hiLen]
		switch {
		case bi == 0 && loLen != 0:
			return fmt.Errorf("%w: first bucket bounded below", ErrBadCheckpoint)
		case bi > 0 && !bytes.Equal(prevHi, lo):
			return fmt.Errorf("%w: buckets %d/%d do not tile", ErrBadCheckpoint, bi-1, bi)
		case bi == st.nb-1 && hiLen != 0:
			return fmt.Errorf("%w: last bucket bounded above", ErrBadCheckpoint)
		case bi < st.nb-1 && hiLen == 0:
			return fmt.Errorf("%w: interior bucket %d unbounded above", ErrBadCheckpoint, bi)
		}
		prevHi = hi
		start := int(le.Uint64(rec))
		n := int(le.Uint64(rec[8:]))
		off := int(le.Uint64(rec[16:]))
		if start != leafStart || n < 1 || n > cap || leafStart+n > st.count {
			return fmt.Errorf("%w: bucket %d leaf range [%d,+%d) inconsistent", ErrBadCheckpoint, bi, start, n)
		}
		if off != levelsOff || levelsOff+interiorLevelBytes(n) > len(st.blob) {
			return fmt.Errorf("%w: bucket %d levels offset %d inconsistent", ErrBadCheckpoint, bi, off)
		}
		// Boundary containment: the bucket's first and last leaves must fall
		// in [lo, hi). Interior leaves are sorted (validated globally), so
		// the two checks cover the bucket.
		first, _ := st.leafRaw(leafStart)
		last, _ := st.leafRaw(leafStart + n - 1)
		if loLen != 0 && compareRaw(lo, first) > 0 {
			return fmt.Errorf("%w: bucket %d leaf below range", ErrBadCheckpoint, bi)
		}
		if hiLen != 0 && compareRaw(last, hi) >= 0 {
			return fmt.Errorf("%w: bucket %d leaf at/above range", ErrBadCheckpoint, bi)
		}
		leafStart += n
		levelsOff += interiorLevelBytes(n)
	}
	if leafStart != st.count || levelsOff != len(st.blob) {
		return fmt.Errorf("%w: buckets cover %d leaves / %d level bytes, want %d / %d", ErrBadCheckpoint, leafStart, levelsOff, st.count, len(st.blob))
	}
	st.spineSize = levelSizesFor(st.nb)
	if len(st.spine) != totalLevelNodes(st.nb)*cryptoutil.HashSize {
		return fmt.Errorf("%w: spine section holds %d bytes, want %d", ErrBadCheckpoint, len(st.spine), totalLevelNodes(st.nb)*cryptoutil.HashSize)
	}
	st.spineOffs = make([]int, len(st.spineSize))
	off := 0
	for i, s := range st.spineSize {
		st.spineOffs[i] = off
		off += s * cryptoutil.HashSize
	}
	// The spine's level 0 must be the bucket commitments.
	for bi := 0; bi < st.nb; bi++ {
		if !st.spineNode(bi).Equal(st.bucketMeta(bi).node) {
			return fmt.Errorf("%w: spine[0][%d] does not match bucket node", ErrBadCheckpoint, bi)
		}
	}
	return nil
}

// openRoot validates the root section and checks the recorded structural
// root against the stored top-level hash — the O(1) consistency check the
// trust model rests on (with the signed root itself verified by the
// caller against the trust anchor).
func (st *MappedState) openRoot(secs map[uint32][]byte) error {
	sec, ok := secs[v2SecRoot]
	if !ok || len(sec) < 48 {
		return fmt.Errorf("%w: missing or truncated root section", ErrBadCheckpoint)
	}
	copy(st.treeRoot[:], sec)
	copy(st.freshness[:], sec[20:])
	hasRoot, hasSeed := sec[40] != 0, sec[41] != 0
	rootLen := int(binary.LittleEndian.Uint32(sec[44:]))
	want := 48 + rootLen
	if hasSeed {
		want += cryptoutil.HashSize
	}
	if len(sec) != want {
		return fmt.Errorf("%w: root section holds %d bytes, want %d", ErrBadCheckpoint, len(sec), want)
	}
	if hasRoot {
		root, err := DecodeSignedRoot(sec[48 : 48+rootLen])
		if err != nil {
			return fmt.Errorf("%w: embedded signed root: %v", ErrBadCheckpoint, err)
		}
		st.root = root
	} else if rootLen != 0 {
		return fmt.Errorf("%w: root bytes without root flag", ErrBadCheckpoint)
	}
	if hasSeed {
		var seed cryptoutil.Hash
		copy(seed[:], sec[48+rootLen:])
		st.seed = &seed
	}

	// Structural root consistency: the recorded root must be what the
	// stored arrays commit to.
	var computed cryptoutil.Hash
	switch {
	case st.count == 0:
		computed = EmptyRoot
	case st.layout.base() == LayoutForest:
		top := hashAt(st.spine, st.spineOffs[len(st.spineOffs)-1], 0)
		computed = cryptoutil.HashForestRoot(uint64(st.nb), top)
	default:
		computed = hashAt(st.levels, st.levelOffs[len(st.levelOffs)-1], 0)
	}
	if !computed.Equal(st.treeRoot) {
		return fmt.Errorf("%w: recorded root does not match stored structure", ErrBadCheckpoint)
	}
	if st.root != nil && st.root.N != uint64(st.count) {
		return fmt.Errorf("%w: signed root commits %d revocations, checkpoint holds %d", ErrBadCheckpoint, st.root.N, st.count)
	}
	if st.root != nil && !st.root.Root.Equal(st.treeRoot) {
		return fmt.Errorf("%w: signed root does not match recorded structural root", ErrBadCheckpoint)
	}
	if st.root == nil && st.count != 0 {
		return fmt.Errorf("%w: %d revocations but no signed root", ErrBadCheckpoint, st.count)
	}
	return nil
}

// materializeLog inverts the leaf records' revocation numbers back into
// the issuance-ordered log. Filling every slot exactly once doubles as
// the permutation check deferred by OpenMappedState.
func (st *MappedState) materializeLog() ([]serial.Number, error) {
	log := make([]serial.Number, st.count)
	for i := 0; i < st.count; i++ {
		lf, err := st.leafAt(i)
		if err != nil {
			return nil, err
		}
		slot := lf.Num - 1
		if !log[slot].IsZero() {
			return nil, fmt.Errorf("%w: duplicate revocation number %d", ErrBadCheckpoint, lf.Num)
		}
		log[slot] = lf.Serial
	}
	return log, nil
}

// toPersistent materializes the v2 checkpoint into the v1 in-memory
// PersistentState (log + batches + root), the form full-replay restores
// consume. The CA-side recovery path uses it so its replay verification
// is unchanged by the format bump.
func (st *MappedState) toPersistent() (*PersistentState, error) {
	log, err := st.materializeLog()
	if err != nil {
		return nil, err
	}
	return &PersistentState{
		Layout:    st.layout,
		Log:       log,
		Batches:   st.Batches(),
		Root:      st.root,
		Freshness: st.freshness,
		ChainSeed: st.seed,
	}, nil
}
