package dictionary

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
	"ritm/internal/wire"
)

// CAID identifies a certification authority (and therefore one dictionary)
// across the whole system: in certificates, signed roots, and the
// dissemination API.
type CAID string

// signedRootContext domain-separates root signatures from any other Ed25519
// use of a CA key (for example certificate issuance).
const signedRootContext = "RITM/signed-root/v1"

// SignedRoot is the CA's commitment to one version of its dictionary,
// Eq (1) of the paper: {root, n, Hᵐ(v), t} signed with the CA's private
// key. The chain length m and the CA's ∆ are carried alongside so that a
// verifier can evaluate freshness with no out-of-band configuration; both
// are covered by the signature.
type SignedRoot struct {
	CA        CAID
	Root      cryptoutil.Hash
	N         uint64          // number of revocations in this version
	Anchor    cryptoutil.Hash // Hᵐ(v), the freshness-chain anchor
	Time      int64           // Unix seconds at signing, the t of Eq (1)
	ChainLen  uint32          // m, the freshness-chain length
	DeltaSecs uint32          // the CA's dissemination interval ∆ in seconds
	Signature []byte
}

// Delta returns the CA's dissemination interval.
func (r *SignedRoot) Delta() time.Duration {
	return time.Duration(r.DeltaSecs) * time.Second
}

// signingPayload returns the bytes covered by the signature.
func (r *SignedRoot) signingPayload() []byte {
	e := wire.NewEncoder(128)
	e.String(signedRootContext)
	e.String(string(r.CA))
	e.Raw(r.Root[:])
	e.Uvarint(r.N)
	e.Raw(r.Anchor[:])
	e.Int64(r.Time)
	e.Uint32(r.ChainLen)
	e.Uint32(r.DeltaSecs)
	return e.Bytes()
}

// sign populates the signature using the CA's signer.
func (r *SignedRoot) sign(signer *cryptoutil.Signer) {
	r.Signature = signer.Sign(r.signingPayload())
}

// VerifySignature checks the root's signature under the CA public key.
func (r *SignedRoot) VerifySignature(pub ed25519.PublicKey) error {
	if err := cryptoutil.Verify(pub, r.signingPayload(), r.Signature); err != nil {
		return fmt.Errorf("signed root for %s: %w", r.CA, err)
	}
	return nil
}

// Period returns p = ⌊(now − t)/∆⌋, the freshness period index at time now
// (Fig 2, refresh step 1). A non-positive ∆ or a time before t yields 0.
func (r *SignedRoot) Period(now int64) int {
	if r.DeltaSecs == 0 || now <= r.Time {
		return 0
	}
	return int((now - r.Time) / int64(r.DeltaSecs))
}

// Equal reports whether two signed roots commit to the same dictionary
// version (all signed fields equal; signatures may differ only if a CA
// signs twice, which Ed25519's determinism prevents in practice).
func (r *SignedRoot) Equal(other *SignedRoot) bool {
	if r == nil || other == nil {
		return r == other
	}
	return r.CA == other.CA && r.Root == other.Root && r.N == other.N &&
		r.Anchor == other.Anchor && r.Time == other.Time &&
		r.ChainLen == other.ChainLen && r.DeltaSecs == other.DeltaSecs
}

// Encode serializes the signed root including its signature.
func (r *SignedRoot) Encode() []byte {
	e := wire.NewEncoder(192)
	r.encodeTo(e)
	return e.Bytes()
}

func (r *SignedRoot) encodeTo(e *wire.Encoder) {
	e.String(string(r.CA))
	e.Raw(r.Root[:])
	e.Uvarint(r.N)
	e.Raw(r.Anchor[:])
	e.Int64(r.Time)
	e.Uint32(r.ChainLen)
	e.Uint32(r.DeltaSecs)
	e.BytesField(r.Signature)
}

// DecodeSignedRoot parses a signed root encoded by Encode.
func DecodeSignedRoot(buf []byte) (*SignedRoot, error) {
	d := wire.NewDecoder(buf)
	r, err := decodeSignedRootFrom(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode signed root: %w", err)
	}
	return r, nil
}

func decodeSignedRootFrom(d *wire.Decoder) (*SignedRoot, error) {
	var r SignedRoot
	r.CA = CAID(d.String())
	root, _ := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
	r.Root = root
	r.N = d.Uvarint()
	anchor, _ := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
	r.Anchor = anchor
	r.Time = d.Int64()
	r.ChainLen = d.Uint32()
	r.DeltaSecs = d.Uint32()
	r.Signature = d.BytesCopy()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode signed root: %w", d.Err())
	}
	return &r, nil
}

// FreshnessStatement is the per-∆ heartbeat of Eq (2): the hash-chain value
// H^{m−p}(v) for the current period p. It is authentic without a signature
// because only the CA can invert the chain (§III).
type FreshnessStatement struct {
	CA    CAID
	Value cryptoutil.Hash
}

// Encode serializes the statement.
func (f *FreshnessStatement) Encode() []byte {
	e := wire.NewEncoder(64)
	f.encodeTo(e)
	return e.Bytes()
}

func (f *FreshnessStatement) encodeTo(e *wire.Encoder) {
	e.String(string(f.CA))
	e.Raw(f.Value[:])
}

// DecodeFreshnessStatement parses a statement encoded by Encode.
func DecodeFreshnessStatement(buf []byte) (*FreshnessStatement, error) {
	d := wire.NewDecoder(buf)
	f, err := decodeFreshnessFrom(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode freshness statement: %w", err)
	}
	return f, nil
}

func decodeFreshnessFrom(d *wire.Decoder) (*FreshnessStatement, error) {
	var f FreshnessStatement
	f.CA = CAID(d.String())
	v, _ := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
	f.Value = v
	if d.Err() != nil {
		return nil, fmt.Errorf("decode freshness statement: %w", d.Err())
	}
	return &f, nil
}

// IssuanceMessage is what a CA sends to the distribution point when it
// revokes certificates: the new serials together with the new signed root
// (§III "Dissemination", Tab I). Replicas replay the serials and accept the
// message only if their rebuilt root matches.
type IssuanceMessage struct {
	Serials []serial.Number
	Root    *SignedRoot
}

// Encode serializes the issuance message.
func (m *IssuanceMessage) Encode() []byte {
	e := wire.NewEncoder(256 + 8*len(m.Serials))
	e.Uvarint(uint64(len(m.Serials)))
	for _, s := range m.Serials {
		e.BytesField(s.Raw())
	}
	m.Root.encodeTo(e)
	return e.Bytes()
}

// DecodeIssuanceMessage parses an issuance message encoded by Encode. The
// decoded serials own their bytes independently of buf: the whole batch is
// packed into a single arena sized off the input, so the decode costs one
// backing allocation for all serial bytes however large the batch. Paths
// whose input buffer is reused or shared must use this form (WAL replay —
// storage hands out records aliasing one shared read buffer).
func DecodeIssuanceMessage(buf []byte) (*IssuanceMessage, error) {
	return decodeIssuance(buf, false)
}

// DecodeIssuanceMessageView parses an issuance message whose serials ALIAS
// buf — zero copies of serial bytes. The caller guarantees buf is never
// modified and outlives every decoded serial; the pull-apply path
// qualifies because the PullResponse retains its body for re-encoding
// anyway, so the serials ride on bytes that already live as long as the
// message.
func DecodeIssuanceMessageView(buf []byte) (*IssuanceMessage, error) {
	return decodeIssuance(buf, true)
}

func decodeIssuance(buf []byte, view bool) (*IssuanceMessage, error) {
	d := wire.NewDecoder(buf)
	count := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode issuance message: %w", d.Err())
	}
	const maxBatch = 1 << 24 // sanity bound on a single batch
	if count > maxBatch {
		return nil, fmt.Errorf("decode issuance message: batch of %d serials exceeds limit", count)
	}
	msg := &IssuanceMessage{Serials: make([]serial.Number, 0, count)}
	var arena []byte
	if !view {
		// Every serial is a sub-slice of buf, so len(buf) bounds their total
		// length: the arena never reallocates, and each packed serial's
		// capacity-clipped sub-slice stays valid for good.
		arena = make([]byte, 0, len(buf))
	}
	for i := uint64(0); i < count; i++ {
		b := d.BytesField()
		if !view {
			start := len(arena)
			arena = append(arena, b...)
			b = arena[start:len(arena):len(arena)]
		}
		s, err := serial.View(b)
		if err != nil {
			return nil, fmt.Errorf("decode issuance message serial %d: %w", i, err)
		}
		msg.Serials = append(msg.Serials, s)
	}
	root, err := decodeSignedRootFrom(d)
	if err != nil {
		return nil, err
	}
	msg.Root = root
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode issuance message: %w", err)
	}
	return msg, nil
}

// Status is the revocation status delivered to a client, Eq (3):
// proof, {root, n, Hᵐ(v), t}_signed, and the current freshness statement.
//
// Subject optionally names the certificate serial the status is about. It
// is unset for plain leaf statuses (the client knows the connection's
// certificate); chain-proof statuses (§VIII "Certificate chains") set it
// so the client can match each status to the right chain element. Subject
// is advisory routing information — the proof itself is what binds the
// serial cryptographically, and Check always verifies against the serial
// the caller supplies.
type Status struct {
	Proof     *Proof
	Root      *SignedRoot
	Freshness cryptoutil.Hash // H^{m−p}(v) for the RA's current period
	Subject   serial.Number   // optional: the certificate this is about

	// rootEnc, when non-nil, is the memoized encoding of Root. Snapshots
	// populate it (a signed root is immutable for a whole generation, so
	// one encoding serves every status proved from that snapshot), and
	// Encode splices it instead of re-encoding the root per status.
	rootEnc []byte
}

// Encode serializes the status for piggybacking on TLS traffic.
func (st *Status) Encode() []byte {
	e := wire.PooledEncoder()
	st.Proof.encodeTo(e)
	if st.rootEnc != nil {
		e.Raw(st.rootEnc)
	} else {
		st.Root.encodeTo(e)
	}
	e.Raw(st.Freshness[:])
	if st.Subject.IsZero() {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.BytesField(st.Subject.Raw())
	}
	return e.Finish()
}

// DecodeStatus parses a status encoded by Encode.
func DecodeStatus(buf []byte) (*Status, error) {
	d := wire.NewDecoder(buf)
	p, err := decodeProofFrom(d)
	if err != nil {
		return nil, err
	}
	root, err := decodeSignedRootFrom(d)
	if err != nil {
		return nil, err
	}
	fresh, _ := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
	st := &Status{Proof: p, Root: root, Freshness: fresh}
	if d.Bool() {
		subject, err := serial.New(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode status subject: %w", err)
		}
		st.Subject = subject
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("decode status: %w", d.Err())
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// CheckResult is the outcome of verifying a Status.
type CheckResult int

// Check results.
const (
	// CheckValid means the certificate is proven not revoked, freshly.
	CheckValid CheckResult = iota + 1
	// CheckRevoked means the certificate is proven revoked.
	CheckRevoked
)

// Check verifies a revocation status for serial s under the CA public key
// at time now: the root signature, the proof against (root, n), and the
// freshness statement under the 2∆ policy of §III step 5c — the statement
// must hash to the anchor in p' or p'+1 steps, where p' = ⌊(now − t)/∆⌋.
//
// It returns CheckRevoked (with no error) when a valid presence proof is
// supplied: the status is authentic, and it proves revocation.
func (st *Status) Check(s serial.Number, pub ed25519.PublicKey, now int64) (CheckResult, error) {
	if st.Proof == nil || st.Root == nil {
		return 0, fmt.Errorf("%w: incomplete status", ErrBadProof)
	}
	if err := st.Root.VerifySignature(pub); err != nil {
		return 0, err
	}
	revoked, err := st.Proof.Verify(s, st.Root.Root, st.Root.N)
	if err != nil {
		return 0, err
	}
	if err := st.checkFreshness(now); err != nil {
		return 0, err
	}
	if revoked {
		return CheckRevoked, nil
	}
	return CheckValid, nil
}

// freshnessGap returns the gap k ∈ [1, limit] such that hashing value k
// times yields cur — i.e. value is the freshness statement exactly k
// periods newer than the currently adopted one — or 0 if no such gap
// exists. Walking the chain toward the adopted statement instead of the
// anchor both bounds the work by the period gap and accepts any genuinely
// newer statement, not just the {p, p−1} window a live pull sees:
// recovery replay and mapped readers re-validate records arbitrarily
// later than the writer adopted them, and dropping an old-but-genuine
// value there freezes freshness at the checkpoint's period. Adoption
// stays monotonic (k ≥ 1 is strictly newer); the 2∆ staleness *policy*
// is enforced where it belongs, at Status.Check.
func freshnessGap(value, cur cryptoutil.Hash, limit int) int {
	if limit <= 0 || value.Equal(cur) {
		return 0
	}
	h := value
	for k := 1; k <= limit; k++ {
		h = cryptoutil.HashStep(h)
		if h.Equal(cur) {
			return k
		}
	}
	return 0
}

// checkFreshness enforces §III step 5c / §V "Short Attack Window": the
// freshness statement must be no older than 2∆.
func (st *Status) checkFreshness(now int64) error {
	p := st.Root.Period(now)
	if p > int(st.Root.ChainLen) {
		return fmt.Errorf("%w: signed root expired (period %d beyond chain length %d)", ErrStale, p, st.Root.ChainLen)
	}
	if cryptoutil.VerifyChainValue(st.Root.Anchor, st.Freshness, p) == nil {
		return nil
	}
	if p > 0 && cryptoutil.VerifyChainValue(st.Root.Anchor, st.Freshness, p-1) == nil {
		// The statement is one period behind, tolerated because CA and RA
		// pull cycles are not synchronized (§V).
		return nil
	}
	return fmt.Errorf("%w: freshness statement older than 2∆ (period %d)", ErrStale, p)
}
