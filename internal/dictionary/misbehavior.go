package dictionary

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"ritm/internal/serial"
	"ritm/internal/wire"
)

// Misbehavior errors.
var (
	// ErrNoMisbehavior reports that two roots are consistent with an honest CA.
	ErrNoMisbehavior = errors.New("dictionary: roots are consistent")
	// ErrBadMisbehaviorProof reports a proof that does not demonstrate
	// misbehavior (bad signatures, different CAs, or equal roots).
	ErrBadMisbehaviorProof = errors.New("dictionary: invalid misbehavior proof")
)

// MisbehaviorProof is cryptographic evidence that a CA equivocated: two
// validly signed roots for the same dictionary size n with different root
// hashes (§V "Misbehaving CA"). Because dictionaries are append-only and
// revocation numbers are consecutive, an honest CA signs exactly one root
// per size, so such a pair is transferable proof of misbehavior that can be
// reported, for example, to software vendors (§III).
type MisbehaviorProof struct {
	A, B *SignedRoot
}

// CheckEquivocation compares two signed roots from (purportedly) the same
// CA. It returns a MisbehaviorProof if they demonstrate equivocation, and
// ErrNoMisbehavior if they are mutually consistent. Roots of different
// sizes are not comparable by this check alone (see VerifyPrefix for that
// case) and report no misbehavior.
func CheckEquivocation(a, b *SignedRoot, pub ed25519.PublicKey) (*MisbehaviorProof, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("dictionary: nil signed root")
	}
	if a.CA != b.CA {
		return nil, fmt.Errorf("dictionary: roots from different CAs (%s, %s)", a.CA, b.CA)
	}
	if err := a.VerifySignature(pub); err != nil {
		return nil, err
	}
	if err := b.VerifySignature(pub); err != nil {
		return nil, err
	}
	if a.N != b.N || a.Root.Equal(b.Root) {
		return nil, ErrNoMisbehavior
	}
	return &MisbehaviorProof{A: a, B: b}, nil
}

// Verify checks the proof end-to-end under the CA public key, so that a
// third party that receives a reported proof can validate it independently.
func (m *MisbehaviorProof) Verify(pub ed25519.PublicKey) error {
	if m == nil || m.A == nil || m.B == nil {
		return fmt.Errorf("%w: incomplete proof", ErrBadMisbehaviorProof)
	}
	proof, err := CheckEquivocation(m.A, m.B, pub)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadMisbehaviorProof, err)
	}
	_ = proof
	return nil
}

// Encode serializes the proof for reporting.
func (m *MisbehaviorProof) Encode() []byte {
	e := wire.NewEncoder(512)
	m.A.encodeTo(e)
	m.B.encodeTo(e)
	return e.Bytes()
}

// DecodeMisbehaviorProof parses a proof encoded by Encode.
func DecodeMisbehaviorProof(buf []byte) (*MisbehaviorProof, error) {
	d := wire.NewDecoder(buf)
	a, err := decodeSignedRootFrom(d)
	if err != nil {
		return nil, err
	}
	b, err := decodeSignedRootFrom(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode misbehavior proof: %w", err)
	}
	return &MisbehaviorProof{A: a, B: b}, nil
}

// VerifyPrefix checks an older root against a newer root using the full
// issuance log held by a replica: replaying the first a.N insertions must
// reproduce a.Root, and replaying all b.N must reproduce b.Root. A failure
// means the CA violated the append-only property between the two versions
// (revocations were reordered, deleted, or rewritten); the replica's log
// plus the two signed roots then constitute the evidence. The returned
// error is nil when the roots are prefix-consistent.
func VerifyPrefix(log []serial.Number, a, b *SignedRoot, pub ed25519.PublicKey) error {
	return VerifyPrefixWithLayout(log, a, b, pub, LayoutSorted)
}

// VerifyPrefixWithLayout is VerifyPrefix for a dictionary of the given
// commitment layout: roots are layout-specific, so the replay must use the
// layout the CA signs with or honest histories are reported as misbehavior.
func VerifyPrefixWithLayout(log []serial.Number, a, b *SignedRoot, pub ed25519.PublicKey, kind LayoutKind) error {
	if a.N > b.N {
		a, b = b, a
	}
	if err := a.VerifySignature(pub); err != nil {
		return err
	}
	if err := b.VerifySignature(pub); err != nil {
		return err
	}
	if uint64(len(log)) < b.N {
		return fmt.Errorf("%w: log has %d entries, roots cover %d", ErrDesynchronized, len(log), b.N)
	}
	tree := NewTreeWithLayout(kind)
	if err := tree.InsertBatch(log[:a.N]); err != nil {
		return fmt.Errorf("replay prefix: %w", err)
	}
	if !tree.Root().Equal(a.Root) {
		return fmt.Errorf("%w: prefix of size %d does not reproduce older root", ErrRootMismatch, a.N)
	}
	if err := tree.InsertBatch(log[a.N:b.N]); err != nil {
		return fmt.Errorf("replay suffix: %w", err)
	}
	if !tree.Root().Equal(b.Root) {
		return fmt.Errorf("%w: log of size %d does not reproduce newer root", ErrRootMismatch, b.N)
	}
	return nil
}
