package dictionary

import (
	"crypto/ed25519"
	"fmt"
	"sort"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// Mapped serving: LayoutView implementations that prove directly over a v2
// checkpoint's bytes (typically an mmap'd file), plus MappedSnapshot — the
// read side of the Snapshot contract for processes that share one
// checkpoint directory instead of owning a heap replica.
//
// The mapped views produce proofs BYTE-IDENTICAL to their heap
// counterparts: the binary searches, audit-path walks, and boundary cases
// below mirror sortedView.Prove / forestView.Prove line for line, only
// reading leaves and hashes out of the mapped arrays instead of Go slices.
// The cross-layout property suite pins this equivalence.
//
// WAL overlay. A checkpoint lags the WAL by up to CheckpointEvery records.
// A MappedSnapshot therefore applies the WAL suffix as a small in-heap
// delta on top of the mapped base:
//
//   - forest: only the buckets an overlaid batch touches are materialized
//     onto the heap (≤ cap leaves each); untouched buckets keep serving
//     from the map. The spine is rebuilt in heap over all bucket nodes —
//     O(#buckets), and deterministic, so the recomputed root must equal
//     each record's CA-signed root, which is verified loudly.
//   - sorted: the whole structure is materialized first (a sorted-layout
//     insert rewrites the arrays to the right of the insertion point, so
//     there is no small delta to isolate — the documented O(n) overlay
//     cost; deployments that co-locate RAs are expected to run the forest
//     layout).
//
// When the WAL suffix is empty — the steady state right after the writer's
// checkpoint — the snapshot serves pure-mapped with zero dictionary heap.

// mustLeaf materializes sorted leaf i; OpenMappedState validated every
// leaf record, so failure here is impossible by construction.
func (st *MappedState) mustLeaf(i int) Leaf {
	lf, err := st.leafAt(i)
	if err != nil {
		panic(err)
	}
	return lf
}

// mustNumber converts validated canonical serial bytes (possibly empty =
// unbounded bucket bound) into a serial.Number, copying.
func mustNumber(raw []byte) serial.Number {
	if len(raw) == 0 {
		return serial.Number{}
	}
	s, err := serial.New(raw)
	if err != nil {
		panic(err)
	}
	return s
}

// mappedSortedView proves over the mapped sorted layout. It mirrors
// sortedView.Prove exactly.
type mappedSortedView struct {
	st *MappedState
}

func (v mappedSortedView) Root() cryptoutil.Hash { return v.st.treeRoot }

func (v mappedSortedView) Revoked(s serial.Number) (uint64, bool) {
	lo := v.st.searchLeaf(s)
	if lo < v.st.count {
		if raw, num := v.st.leafRaw(lo); compareRaw(raw, s.Raw()) == 0 {
			return num, true
		}
	}
	return 0, false
}

func (v mappedSortedView) Prove(s serial.Number) *Proof {
	st := v.st
	if st.count == 0 {
		return &Proof{Kind: ProofAbsenceEmpty}
	}
	return st.proveRun(s, 0, st.count, st.searchLeaf(s), st.sortedLevels(), nil, nil, nil, 0)
}

// mappedForestView proves over the mapped forest layout, mirroring
// forestView.Prove.
type mappedForestView struct {
	st *MappedState
}

func (v mappedForestView) Root() cryptoutil.Hash { return v.st.treeRoot }

func (v mappedForestView) Revoked(s serial.Number) (uint64, bool) {
	st := v.st
	if st.nb == 0 {
		return 0, false
	}
	m := st.bucketMeta(st.bucketFor(s))
	idx := st.bucketSearch(m, s)
	if idx < m.leafCount {
		if raw, num := st.leafRaw(m.leafStart + idx); compareRaw(raw, s.Raw()) == 0 {
			return num, true
		}
	}
	return 0, false
}

func (v mappedForestView) Prove(s serial.Number) *Proof {
	st := v.st
	if st.nb == 0 {
		return &Proof{Kind: ProofAbsenceEmpty}
	}
	bi := st.bucketFor(s)
	m := st.bucketMeta(bi)
	sp := SpineSegment{
		BucketIndex: uint64(bi),
		NumBuckets:  uint64(st.nb),
		LeafCount:   uint64(m.leafCount),
		Lo:          mustNumber(m.lo),
		Hi:          mustNumber(m.hi),
	}
	return st.proveRun(s, m.leafStart, m.leafCount, st.bucketSearch(m, s), st.bucketLevels(m), &sp, nil, st.spineLevels(), bi)
}

// mappedView returns the pure-mapped LayoutView for the checkpoint.
func (st *MappedState) mappedView() LayoutView {
	if st.layout.base() == LayoutForest {
		return mappedForestView{st}
	}
	return mappedSortedView{st}
}

// overlay is the mutable in-heap delta a WAL suffix builds on top of a
// mapped base. Implementations are single-threaded: a MappedSnapshot
// constructs its overlay once and never mutates it again.
type overlay interface {
	insert(batch []Leaf)
	rootHash() cryptoutil.Hash
	layoutView() LayoutView
	revoked(s serial.Number) bool
}

// ovSorted is the sorted layout's overlay: a full heap materialization of
// the mapped base, then ordinary copy-on-write inserts.
type ovSorted struct {
	l *sortedLayout
}

func newOvSorted(st *MappedState) *ovSorted {
	leaves := make([]Leaf, st.count)
	for i := range leaves {
		leaves[i] = st.mustLeaf(i)
	}
	levels := make([][]cryptoutil.Hash, len(st.levelSizes))
	for li, size := range st.levelSizes {
		lvl := make([]cryptoutil.Hash, size)
		for i := 0; i < size; i++ {
			lvl[i] = hashAt(st.levels, st.levelOffs[li], i)
		}
		levels[li] = lvl
	}
	l := &sortedLayout{leaves: leaves, levels: levels}
	if len(levels) > 0 {
		l.leafHashes = levels[0]
	}
	return &ovSorted{l: l}
}

func (o *ovSorted) insert(batch []Leaf)       { o.l.insert(batch) }
func (o *ovSorted) rootHash() cryptoutil.Hash { return o.l.rootHash() }
func (o *ovSorted) layoutView() LayoutView    { return o.l.view() }
func (o *ovSorted) revoked(s serial.Number) bool {
	_, ok := o.l.view().Revoked(s)
	return ok
}

// ovBucket is one bucket of the forest overlay: either still mapped
// (mi ≥ 0) or materialized on the heap because an overlaid batch touched
// it. Metadata needed for routing and the spine is held inline either way.
type ovBucket struct {
	lo, hi serial.Number
	count  int
	node   cryptoutil.Hash
	mi     int // mapped bucket-directory index; -1 when heap
	heap   *forestBucket
}

// ovForest is the forest layout's overlay: the hybrid bucket list plus a
// heap-rebuilt spine. Untouched buckets keep serving from the map, so the
// heap cost is O(touched buckets · cap + #buckets), not O(n).
type ovForest struct {
	st          *MappedState
	cap, target int
	buckets     []ovBucket
	spine       [][]cryptoutil.Hash
	root        cryptoutil.Hash
	stale       bool // spine/root out of date after insert
}

func newOvForest(st *MappedState) *ovForest {
	cap := st.layout.ForestCap()
	if cap == 0 {
		cap = DefaultForestBucketCap
	}
	f := &ovForest{st: st, cap: cap, target: cap * 3 / 4, root: st.treeRoot}
	f.buckets = make([]ovBucket, st.nb)
	for bi := 0; bi < st.nb; bi++ {
		m := st.bucketMeta(bi)
		f.buckets[bi] = ovBucket{
			lo:    mustNumber(m.lo),
			hi:    mustNumber(m.hi),
			count: m.leafCount,
			node:  m.node,
			mi:    bi,
		}
	}
	if st.nb > 0 {
		f.stale = true // spine not yet materialized; built on first ensure
	}
	return f
}

// materialize returns a bucket's leaves and leaf hashes, copying them out
// of the map when the bucket has not been touched yet.
func (f *ovForest) materialize(b ovBucket) ([]Leaf, []cryptoutil.Hash) {
	if b.heap != nil {
		return b.heap.tree.leaves, b.heap.leafHashes()
	}
	m := f.st.bucketMeta(b.mi)
	leaves := make([]Leaf, m.leafCount)
	hashes := make([]cryptoutil.Hash, m.leafCount)
	for i := 0; i < m.leafCount; i++ {
		leaves[i] = f.st.mustLeaf(m.leafStart + i)
		hashes[i] = hashAt(f.st.levels, 0, m.leafStart+i)
	}
	return leaves, hashes
}

// heapOvBucket builds a heap bucket from merged leaves, exactly like
// forestLayout.buildBucket (buildLevels is deterministic in the leaf
// hashes, so reuse-free rebuilds produce identical nodes).
func heapOvBucket(lo, hi serial.Number, leaves []Leaf, hashes []cryptoutil.Hash) ovBucket {
	levels, _ := buildLevels(hashes, nil, 0)
	fb := &forestBucket{lo: lo, hi: hi, tree: miniTree{leaves: leaves, levels: levels}}
	fb.node = cryptoutil.HashBucket(lo.Raw(), hi.Raw(), uint64(len(leaves)), fb.tree.root())
	return ovBucket{lo: lo, hi: hi, count: len(leaves), node: fb.node, mi: -1, heap: fb}
}

// appendChunks splits an oversized merged run exactly like
// forestLayout.chunkBuckets, appending the resulting heap buckets to dst.
func (f *ovForest) appendChunks(dst []ovBucket, lo, hi serial.Number, leaves []Leaf, hashes []cryptoutil.Hash) []ovBucket {
	chunks := (len(leaves) + f.target - 1) / f.target
	size := (len(leaves) + chunks - 1) / chunks
	for start := 0; start < len(leaves); start += size {
		end := min(start+size, len(leaves))
		clo, chi := lo, hi
		if start > 0 {
			clo = leaves[start].Serial
		}
		if end < len(leaves) {
			chi = leaves[end].Serial
		}
		dst = append(dst, heapOvBucket(clo, chi, leaves[start:end], hashes[start:end]))
	}
	return dst
}

// insert merges one sorted, numbered sub-batch — the same cursor walk,
// merge, and split logic as forestLayout.insert, materializing only the
// buckets the batch lands in.
func (f *ovForest) insert(batch []Leaf) {
	if len(batch) == 0 {
		return
	}
	f.stale = true
	if len(f.buckets) == 0 {
		merged, mergedHashes, _, _ := mergeLeaves(nil, nil, batch)
		f.buckets = f.appendChunks(nil, serial.Number{}, serial.Number{}, merged, mergedHashes)
		return
	}
	next := make([]ovBucket, 0, len(f.buckets)+1)
	j := 0
	for _, b := range f.buckets {
		start := j
		for j < len(batch) && (b.hi.IsZero() || batch[j].Serial.Compare(b.hi) < 0) {
			j++
		}
		if start == j {
			next = append(next, b)
			continue
		}
		oldLeaves, oldHashes := f.materialize(b)
		merged, mergedHashes, _, _ := mergeLeaves(oldLeaves, oldHashes, batch[start:j])
		if len(merged) <= f.cap {
			next = append(next, heapOvBucket(b.lo, b.hi, merged, mergedHashes))
		} else {
			next = f.appendChunks(next, b.lo, b.hi, merged, mergedHashes)
		}
	}
	f.buckets = next
}

// ensure rebuilds the spine and root after inserts. buildLevels over the
// full bucket-node array is deterministic, so the result is identical to
// the writer's incrementally maintained spine — which is what lets the
// recomputed root be checked against each record's CA-signed root.
func (f *ovForest) ensure() {
	if !f.stale {
		return
	}
	f.stale = false
	if len(f.buckets) == 0 {
		f.spine = nil
		f.root = EmptyRoot
		return
	}
	spine0 := make([]cryptoutil.Hash, len(f.buckets))
	for i, b := range f.buckets {
		spine0[i] = b.node
	}
	f.spine, _ = buildLevels(spine0, nil, 0)
	f.root = cryptoutil.HashForestRoot(uint64(len(f.buckets)), f.spine[len(f.spine)-1][0])
}

func (f *ovForest) rootHash() cryptoutil.Hash {
	f.ensure()
	if len(f.buckets) == 0 {
		return EmptyRoot
	}
	return f.root
}

func (f *ovForest) layoutView() LayoutView {
	f.ensure()
	return ovForestView{f}
}

func (f *ovForest) revoked(s serial.Number) bool {
	_, ok := ovForestView{f}.Revoked(s)
	return ok
}

// ovForestView is the frozen proving view of a forest overlay. The
// overlay is never mutated after its MappedSnapshot is constructed, so
// the view is safe for unsynchronized concurrent use like every other
// LayoutView.
type ovForestView struct {
	f *ovForest
}

func (v ovForestView) Root() cryptoutil.Hash {
	if len(v.f.buckets) == 0 {
		return EmptyRoot
	}
	return v.f.root
}

func (v ovForestView) bucketFor(s serial.Number) int {
	bs := v.f.buckets
	return sort.Search(len(bs), func(i int) bool {
		return !bs[i].lo.IsZero() && bs[i].lo.Compare(s) > 0
	}) - 1
}

func (v ovForestView) Revoked(s serial.Number) (uint64, bool) {
	if len(v.f.buckets) == 0 {
		return 0, false
	}
	b := v.f.buckets[v.bucketFor(s)]
	if b.heap != nil {
		return b.heap.tree.revoked(s)
	}
	st := v.f.st
	m := st.bucketMeta(b.mi)
	idx := st.bucketSearch(m, s)
	if idx < m.leafCount {
		if raw, num := st.leafRaw(m.leafStart + idx); compareRaw(raw, s.Raw()) == 0 {
			return num, true
		}
	}
	return 0, false
}

func (v ovForestView) Prove(s serial.Number) *Proof {
	if len(v.f.buckets) == 0 {
		return &Proof{Kind: ProofAbsenceEmpty}
	}
	bi := v.bucketFor(s)
	b := v.f.buckets[bi]
	sp := SpineSegment{
		BucketIndex: uint64(bi),
		NumBuckets:  uint64(len(v.f.buckets)),
		LeafCount:   uint64(b.count),
		Lo:          b.lo,
		Hi:          b.hi,
	}
	if b.heap == nil {
		st := v.f.st
		m := st.bucketMeta(b.mi)
		return st.proveRun(s, m.leafStart, m.leafCount, st.bucketSearch(m, s), st.bucketLevels(m), &sp, v.f.spine, nil, bi)
	}
	return b.heap.tree.proveLocal(s, &sp, v.f.spine, bi)
}

// MappedSnapshot is one immutable version of a dictionary served from a
// mapped v2 checkpoint plus an in-heap WAL-suffix overlay. It implements
// the read side of the Snapshot contract — Prove, Revoked, Root,
// Freshness, Generation — without holding the issuance log or the serial
// index on the heap, which is what makes the marginal memory cost of an
// additional co-located RA O(overlay) instead of O(n).
//
// Construction verifies what the serving role requires: the embedded
// signed root's signature against the trust anchor, its agreement with
// the checkpoint's structural root and count (done by OpenMappedState),
// and — for every overlaid WAL record — that the recomputed root equals
// the record's CA-signed root, the same acceptance rule Replica.Update
// applies to a message fresh off the network.
//
// Like Snapshot, a constructed MappedSnapshot is immutable and safe for
// unsynchronized concurrent use. The caller owns the lifetime of the
// mapped checkpoint bytes, which must outlive the snapshot.
type MappedSnapshot struct {
	ca        CAID
	layout    LayoutKind
	view      LayoutView
	count     uint64
	root      *SignedRoot
	rootEnc   []byte // memoized root encoding; spliced into statuses
	freshness cryptoutil.Hash
	freshPer  int
	gen       uint64
	overlaid  int // WAL update records applied on top of the base
}

// NewMappedSnapshot opens state (a v2 checkpoint payload, typically
// mmap'd), overlays the WAL suffix, and returns the resulting serving
// snapshot. pub is the trust anchor; layout must equal the persisted
// descriptor. now is the Unix time used to evaluate freshness statements;
// gen is the reader-assigned generation (readers bump it per re-map, which
// preserves the strictly-increasing cache contract locally).
func NewMappedSnapshot(ca CAID, pub ed25519.PublicKey, layout LayoutKind, state []byte, wal [][]byte, now int64, gen uint64) (*MappedSnapshot, error) {
	st, err := OpenMappedState(state)
	if err != nil {
		return nil, err
	}
	if st.layout != layout {
		return nil, fmt.Errorf("dictionary: %s persisted with layout %v, configured for %v (the layout — bucket capacity included — is part of the committed state; wipe the data dir to change it)",
			ca, st.layout, layout)
	}
	root := st.root
	if root != nil {
		if root.CA != ca {
			return nil, fmt.Errorf("dictionary: checkpoint root names %s, mapping for %s", root.CA, ca)
		}
		if err := root.VerifySignature(pub); err != nil {
			return nil, fmt.Errorf("dictionary: mapped checkpoint for %s: %w", ca, err)
		}
	}

	s := &MappedSnapshot{ca: ca, layout: layout, count: st.Count(), root: root, gen: gen}
	// Base freshness, best-effort like RestoreReplica: adopt the recorded
	// value if it chains to the anchor at any period up to the current
	// one; otherwise the anchor (the period-0 statement) serves until the
	// writer refreshes.
	if root != nil {
		s.freshness = root.Anchor
		if !st.freshness.IsZero() {
			if k := freshnessGap(st.freshness, s.freshness, root.Period(now)); k > 0 {
				s.freshness = st.freshness
				s.freshPer = k
			}
		}
	}

	var ov overlay
	have := st.Count()
	currentRoot := func() cryptoutil.Hash {
		if ov != nil {
			return ov.rootHash()
		}
		return st.treeRoot
	}
	for i, raw := range wal {
		if IsFreshnessRecord(raw) {
			rec, err := DecodeFreshnessRecord(raw)
			if err != nil {
				return nil, fmt.Errorf("dictionary: decode WAL record %d for %s: %w", i, ca, err)
			}
			if s.root == nil {
				continue
			}
			// Adopt any strictly newer statement (the writer appended it at
			// its own pull time, arbitrarily many periods before this map).
			if k := freshnessGap(rec.Value, s.freshness, s.root.Period(now)-s.freshPer); k > 0 {
				s.freshness = rec.Value
				s.freshPer += k
			}
			continue
		}
		rec, err := DecodeUpdateRecord(raw)
		if err != nil {
			return nil, fmt.Errorf("dictionary: decode WAL record %d for %s: %w", i, ca, err)
		}
		msg := rec.Msg
		if msg == nil || msg.Root == nil {
			return nil, fmt.Errorf("dictionary: WAL record %d for %s carries no signed root", i, ca)
		}
		if msg.Root.CA != ca {
			return nil, fmt.Errorf("dictionary: WAL record %d root names %s, mapping for %s", i, msg.Root.CA, ca)
		}
		if err := msg.Root.VerifySignature(pub); err != nil {
			return nil, fmt.Errorf("dictionary: WAL record %d for %s: %w", i, ca, err)
		}
		switch n := msg.Root.N; {
		case n < have:
			// Entirely covered by the checkpoint (crash between install and
			// WAL truncation); nothing to verify against.
			continue
		case n == have:
			if !msg.Root.Root.Equal(currentRoot()) {
				return nil, fmt.Errorf("dictionary: WAL record %d for %s: %w: rotated root differs at n=%d", i, ca, ErrRootMismatch, have)
			}
			if msg.Root.Equal(s.root) {
				continue // re-delivered root; keep the freshness state
			}
		default:
			missing := n - have
			if uint64(len(msg.Serials)) < missing {
				return nil, fmt.Errorf("dictionary: WAL record %d for %s: %w: record covers up to %d, base has %d, batch of %d",
					i, ca, ErrDesynchronized, n, have, len(msg.Serials))
			}
			serials := msg.Serials[uint64(len(msg.Serials))-missing:]
			if ov == nil {
				if layout.base() == LayoutForest {
					ov = newOvForest(st)
				} else {
					ov = newOvSorted(st)
				}
			}
			if err := overlayRecord(ov, serials, have, rec.Bounds); err != nil {
				return nil, fmt.Errorf("dictionary: WAL record %d for %s: %w", i, ca, err)
			}
			have = n
			if !ov.rootHash().Equal(msg.Root.Root) {
				return nil, fmt.Errorf("dictionary: WAL record %d for %s: %w", i, ca, ErrRootMismatch)
			}
			s.overlaid++
		}
		s.root = msg.Root
		s.freshness = msg.Root.Anchor
		s.freshPer = 0
	}

	s.count = have
	if s.root != nil {
		// One root encoding per re-map; see Snapshot.rootEnc.
		s.rootEnc = s.root.Encode()
	}
	if ov != nil {
		s.view = ov.layoutView()
	} else {
		s.view = st.mappedView()
	}
	return s, nil
}

// overlayRecord replays one update record's serial suffix into the
// overlay as the sub-batches delimited by bounds — mirroring
// Replica.insertSubBatches, including the absolute-count bounds
// semantics.
func overlayRecord(ov overlay, serials []serial.Number, have uint64, bounds []uint64) error {
	start := uint64(0)
	end := have + uint64(len(serials))
	for _, b := range bounds {
		if b <= have+start || b >= end {
			continue
		}
		cut := b - have
		if err := overlayBatch(ov, serials[start:cut], have+start); err != nil {
			return err
		}
		start = cut
	}
	return overlayBatch(ov, serials[start:], have+start)
}

// overlayBatch numbers, validates, sorts, and inserts one sub-batch, the
// overlay analog of Tree.InsertBatch. Duplicates are rejected loudly —
// they would fail the signed-root check anyway, but a named error beats a
// bare mismatch.
func overlayBatch(ov overlay, serials []serial.Number, have uint64) error {
	if len(serials) == 0 {
		return nil
	}
	leaves := make([]Leaf, len(serials))
	for i, s := range serials {
		if s.IsZero() {
			return fmt.Errorf("dictionary: insert of zero-value serial")
		}
		if ov.revoked(s) {
			return fmt.Errorf("%w: %v", ErrDuplicateSerial, s)
		}
		leaves[i] = Leaf{Serial: s, Num: have + 1 + uint64(i)}
	}
	sortLeaves(leaves)
	for i := 1; i < len(leaves); i++ {
		if leaves[i].Serial.Equal(leaves[i-1].Serial) {
			return fmt.Errorf("%w: %v appears twice in batch", ErrDuplicateSerial, leaves[i].Serial)
		}
	}
	ov.insert(leaves)
	return nil
}

// CA returns the CA whose dictionary the snapshot serves.
func (s *MappedSnapshot) CA() CAID { return s.ca }

// Layout returns the snapshot's commitment layout.
func (s *MappedSnapshot) Layout() LayoutKind { return s.layout }

// Generation returns the reader-assigned publication counter; see
// Snapshot.Generation for the cache contract it carries.
func (s *MappedSnapshot) Generation() uint64 { return s.gen }

// Count returns the number of revocations served.
func (s *MappedSnapshot) Count() uint64 { return s.count }

// Root returns the signed root proofs verify against (nil before the
// dictionary's first publication).
func (s *MappedSnapshot) Root() *SignedRoot { return s.root }

// RootHash returns the structural root of the served version.
func (s *MappedSnapshot) RootHash() cryptoutil.Hash { return s.view.Root() }

// Freshness returns the freshness-statement value current at mapping time.
func (s *MappedSnapshot) Freshness() cryptoutil.Hash { return s.freshness }

// FreshnessPeriod returns the period the freshness value verified for.
func (s *MappedSnapshot) FreshnessPeriod() int { return s.freshPer }

// OverlayRecords returns how many WAL update records are overlaid in heap
// on top of the mapped base — 0 means pure-mapped serving.
func (s *MappedSnapshot) OverlayRecords() int { return s.overlaid }

// Revoked reports whether sn is revoked in this version.
func (s *MappedSnapshot) Revoked(sn serial.Number) bool {
	_, ok := s.view.Revoked(sn)
	return ok
}

// Prove produces the revocation status for sn from the mapped version —
// same contract as Snapshot.Prove, same proofs byte for byte.
func (s *MappedSnapshot) Prove(sn serial.Number) (*Status, error) {
	if s.root == nil {
		return nil, fmt.Errorf("%w: replica has no signed root", ErrDesynchronized)
	}
	return &Status{
		Proof:     s.view.Prove(sn),
		Root:      s.root,
		Freshness: s.freshness,
		rootEnc:   s.rootEnc,
	}, nil
}

// restoreReplicaV2 rebuilds a full heap Replica from a v2 checkpoint by
// materializing the persisted structure — copying leaves, hash levels,
// buckets, and spine straight off the checkpoint with ZERO rehashing —
// instead of replaying the issuance log. This is the map-don't-replay
// restart path: its cost is O(n) memory copies (plus the signature and
// structural-root checks), not the O(n) hashing of RestoreReplica.
// Nothing in the returned replica aliases the checkpoint buffer.
func restoreReplicaV2(ca CAID, pub ed25519.PublicKey, st *MappedState, now int64) (*Replica, error) {
	r := NewReplicaWithLayout(ca, pub, st.layout)
	if st.root == nil {
		return r, nil // validated empty (openRoot enforces root-for-content)
	}
	if st.root.CA != ca {
		return nil, fmt.Errorf("dictionary: restore %s: checkpoint root names %s", ca, st.root.CA)
	}
	if err := st.root.VerifySignature(pub); err != nil {
		return nil, fmt.Errorf("dictionary: restore %s: %w", ca, err)
	}

	log, err := st.materializeLog()
	if err != nil {
		return nil, fmt.Errorf("dictionary: restore %s: %w", ca, err)
	}
	bySerial := make(map[string]uint64, st.count)
	leaves := make([]Leaf, st.count)
	hashes := make([]cryptoutil.Hash, st.count)
	for i := 0; i < st.count; i++ {
		leaves[i] = st.mustLeaf(i)
		hashes[i] = hashAt(st.levels, 0, i)
		bySerial[string(leaves[i].Serial.Raw())] = leaves[i].Num
	}

	var commit Layout
	if st.layout.base() == LayoutForest {
		f := newForestLayout(st.layout)
		f.buckets = make([]*forestBucket, st.nb)
		for bi := 0; bi < st.nb; bi++ {
			m := st.bucketMeta(bi)
			sizes := levelSizesFor(m.leafCount)
			levels := make([][]cryptoutil.Hash, len(sizes))
			levels[0] = hashes[m.leafStart : m.leafStart+m.leafCount]
			off := m.levelsOff
			for li := 1; li < len(sizes); li++ {
				lvl := make([]cryptoutil.Hash, sizes[li])
				for k := range lvl {
					lvl[k] = hashAt(st.blob, off, k)
				}
				off += sizes[li] * cryptoutil.HashSize
				levels[li] = lvl
			}
			f.buckets[bi] = &forestBucket{
				lo:   mustNumber(m.lo),
				hi:   mustNumber(m.hi),
				tree: miniTree{leaves: leaves[m.leafStart : m.leafStart+m.leafCount], levels: levels},
				node: m.node,
			}
		}
		f.spine = make([][]cryptoutil.Hash, len(st.spineSize))
		for li, size := range st.spineSize {
			lvl := make([]cryptoutil.Hash, size)
			for k := range lvl {
				lvl[k] = hashAt(st.spine, st.spineOffs[li], k)
			}
			f.spine[li] = lvl
		}
		f.root = st.treeRoot
		commit = f
	} else {
		l := &sortedLayout{leaves: leaves, leafHashes: hashes}
		l.levels = make([][]cryptoutil.Hash, len(st.levelSizes))
		if len(l.levels) > 0 {
			l.levels[0] = hashes
		}
		for li := 1; li < len(st.levelSizes); li++ {
			lvl := make([]cryptoutil.Hash, st.levelSizes[li])
			for k := range lvl {
				lvl[k] = hashAt(st.levels, st.levelOffs[li], k)
			}
			l.levels[li] = lvl
		}
		commit = l
	}

	r.tree = &Tree{commit: commit, bySerial: bySerial, log: log, bounds: st.Batches()}
	r.root = st.root
	r.freshness = st.root.Anchor
	if !st.freshness.IsZero() {
		if k := freshnessGap(st.freshness, r.freshness, st.root.Period(now)); k > 0 {
			r.freshness = st.freshness
			r.freshPer = k
		}
	}
	r.publish()
	return r, nil
}
