package dictionary

import (
	"errors"
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// equivocatingCA builds two authorities sharing one key and CA id but with
// diverging dictionaries, modelling a CA that shows different views to
// different parts of the system (§V "Misbehaving CA").
func equivocatingCA(t *testing.T) (viewA, viewB *Authority) {
	t.Helper()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AuthorityConfig{CA: "evil", Signer: signer, Delta: 10 * time.Second, ChainLength: 8}
	a, err := NewAuthority(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAuthority(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestEquivocationDetected(t *testing.T) {
	viewA, viewB := equivocatingCA(t)
	// Same size (1), different content: the CA hides serial 2 from view B.
	msgA, err := viewA.Insert(mustSerials(t, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	msgB, err := viewB.Insert(mustSerials(t, 3), 1)
	if err != nil {
		t.Fatal(err)
	}

	proof, err := CheckEquivocation(msgA.Root, msgB.Root, viewA.PublicKey())
	if err != nil {
		t.Fatalf("CheckEquivocation: %v", err)
	}
	if err := proof.Verify(viewA.PublicKey()); err != nil {
		t.Errorf("misbehavior proof does not verify: %v", err)
	}

	// The proof survives serialization (it must be reportable).
	decoded, err := DecodeMisbehaviorProof(proof.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Verify(viewA.PublicKey()); err != nil {
		t.Errorf("decoded proof does not verify: %v", err)
	}
}

func TestNoMisbehaviorForHonestCA(t *testing.T) {
	a := newTestAuthority(t, 0)
	r1 := a.SignedRoot()
	if _, err := a.Insert(mustSerials(t, 1), 1); err != nil {
		t.Fatal(err)
	}
	r2 := a.SignedRoot()

	// Identical roots: consistent.
	if _, err := CheckEquivocation(r1, r1, a.PublicKey()); !errors.Is(err, ErrNoMisbehavior) {
		t.Errorf("identical roots: err = %v, want ErrNoMisbehavior", err)
	}
	// Different sizes: not comparable by equivocation check.
	if _, err := CheckEquivocation(r1, r2, a.PublicKey()); !errors.Is(err, ErrNoMisbehavior) {
		t.Errorf("different sizes: err = %v, want ErrNoMisbehavior", err)
	}
}

func TestEquivocationNeedsValidSignatures(t *testing.T) {
	viewA, viewB := equivocatingCA(t)
	msgA, err := viewA.Insert(mustSerials(t, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	msgB, err := viewB.Insert(mustSerials(t, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	// A proof must not be constructible from unsigned claims: break one sig.
	broken := *msgB.Root
	broken.Signature = append([]byte(nil), broken.Signature...)
	broken.Signature[0] ^= 1
	if _, err := CheckEquivocation(msgA.Root, &broken, viewA.PublicKey()); !errors.Is(err, cryptoutil.ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
	// And verification of a doctored proof fails.
	proof := &MisbehaviorProof{A: msgA.Root, B: &broken}
	if err := proof.Verify(viewA.PublicKey()); !errors.Is(err, ErrBadMisbehaviorProof) {
		t.Errorf("err = %v, want ErrBadMisbehaviorProof", err)
	}
}

func TestEquivocationDifferentCAsRejected(t *testing.T) {
	a1 := newTestAuthority(t, 0)
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAuthority(AuthorityConfig{CA: "CA2", Signer: signer, Delta: 10 * time.Second, ChainLength: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckEquivocation(a1.SignedRoot(), a2.SignedRoot(), a1.PublicKey()); err == nil {
		t.Error("cross-CA comparison produced a verdict")
	}
}

func TestVerifyPrefixHonestHistory(t *testing.T) {
	a, r := authorityAndReplica(t, 0)
	msg1, err := a.Insert(mustSerials(t, 10, 20), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(msg1); err != nil {
		t.Fatal(err)
	}
	root1 := msg1.Root
	msg2, err := a.Insert(mustSerials(t, 30), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(msg2); err != nil {
		t.Fatal(err)
	}
	if err := VerifyPrefix(r.Log(), root1, msg2.Root, a.PublicKey()); err != nil {
		t.Errorf("honest history flagged: %v", err)
	}
	// Argument order must not matter.
	if err := VerifyPrefix(r.Log(), msg2.Root, root1, a.PublicKey()); err != nil {
		t.Errorf("swapped args flagged: %v", err)
	}
}

func TestVerifyPrefixCatchesRewrittenHistory(t *testing.T) {
	// The CA signs a size-1 root with serial 1, then "deletes" it and signs
	// a size-2 root built from serials {2,3}. No single log can replay both.
	viewA, viewB := equivocatingCA(t)
	msgA, err := viewA.Insert(mustSerials(t, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := viewB.Insert(mustSerials(t, 2), 1); err != nil {
		t.Fatal(err)
	}
	msgB2, err := viewB.Insert(mustSerials(t, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	// The replica followed view B, so its log is {2, 3}.
	log := mustSerials(t, 2, 3)
	if err := VerifyPrefix(log, msgA.Root, msgB2.Root, viewA.PublicKey()); !errors.Is(err, ErrRootMismatch) {
		t.Errorf("err = %v, want ErrRootMismatch", err)
	}
}

func TestVerifyPrefixShortLog(t *testing.T) {
	a := newTestAuthority(t, 0)
	r0 := a.SignedRoot()
	msg, err := a.Insert(mustSerials(t, 1, 2, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPrefix(mustSerials(t, 1), r0, msg.Root, a.PublicKey()); !errors.Is(err, ErrDesynchronized) {
		t.Errorf("err = %v, want ErrDesynchronized", err)
	}
}

func TestVerifyPrefixFromEmptyRoot(t *testing.T) {
	a := newTestAuthority(t, 0)
	r0 := a.SignedRoot()
	msg, err := a.Insert(mustSerials(t, 5, 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPrefix(mustSerials(t, 5, 6), r0, msg.Root, a.PublicKey()); err != nil {
		t.Errorf("empty-prefix verification failed: %v", err)
	}
}

func TestAppendOnlyForcesPermanentFork(t *testing.T) {
	// §V: once a CA equivocates at size n, it must maintain both forks
	// forever; any later pair of same-size roots from the two forks remains
	// detectable evidence. Simulate three more batches on each fork and
	// check detection at every size.
	viewA, viewB := equivocatingCA(t)
	if _, err := viewA.Insert(mustSerials(t, 1), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := viewB.Insert(mustSerials(t, 2), 1); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		msgA, err := viewA.Insert([]serial.Number{serial.FromUint64(100 + i)}, int64(2+i))
		if err != nil {
			t.Fatal(err)
		}
		msgB, err := viewB.Insert([]serial.Number{serial.FromUint64(100 + i)}, int64(2+i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CheckEquivocation(msgA.Root, msgB.Root, viewA.PublicKey()); err != nil {
			t.Errorf("fork at size %d undetected: %v", 2+i, err)
		}
	}
}
