package dictionary

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ritm/internal/serial"
)

func mustSerials(t *testing.T, vals ...uint64) []serial.Number {
	t.Helper()
	out := make([]serial.Number, len(vals))
	for i, v := range vals {
		out[i] = serial.FromUint64(v)
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tree := NewTree()
	if tree.Count() != 0 {
		t.Errorf("Count() = %d, want 0", tree.Count())
	}
	if tree.Root() != EmptyRoot {
		t.Errorf("Root() = %v, want EmptyRoot", tree.Root())
	}
	p := tree.Prove(serial.FromUint64(5))
	if p.Kind != ProofAbsenceEmpty {
		t.Fatalf("Prove on empty tree: kind = %v, want absence-empty", p.Kind)
	}
	revoked, err := p.Verify(serial.FromUint64(5), tree.Root(), tree.Count())
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if revoked {
		t.Error("empty tree proved revocation")
	}
}

func TestInsertAssignsConsecutiveNumbers(t *testing.T) {
	tree := NewTree()
	if err := tree.InsertBatch(mustSerials(t, 30, 10, 20)); err != nil {
		t.Fatal(err)
	}
	if err := tree.InsertBatch(mustSerials(t, 5)); err != nil {
		t.Fatal(err)
	}
	// Numbers follow issuance order, not sorted order.
	wantNums := map[uint64]uint64{30: 1, 10: 2, 20: 3, 5: 4}
	for s, want := range wantNums {
		num, ok := tree.Revoked(serial.FromUint64(s))
		if !ok {
			t.Fatalf("serial %d not revoked", s)
		}
		if num != want {
			t.Errorf("serial %d: num = %d, want %d", s, num, want)
		}
	}
	log := tree.Log()
	wantLog := []uint64{30, 10, 20, 5}
	for i, w := range wantLog {
		if !log[i].Equal(serial.FromUint64(w)) {
			t.Errorf("log[%d] = %v, want %d", i, log[i], w)
		}
	}
}

func TestInsertDuplicateRejectedAtomically(t *testing.T) {
	tree := NewTree()
	if err := tree.InsertBatch(mustSerials(t, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	rootBefore := tree.Root()

	// Historical duplicate.
	err := tree.InsertBatch(mustSerials(t, 9, 2))
	if !errors.Is(err, ErrDuplicateSerial) {
		t.Fatalf("err = %v, want ErrDuplicateSerial", err)
	}
	// In-batch duplicate.
	err = tree.InsertBatch(mustSerials(t, 7, 7))
	if !errors.Is(err, ErrDuplicateSerial) {
		t.Fatalf("err = %v, want ErrDuplicateSerial", err)
	}
	// Tree unchanged: the serial 9 from the failed batch must be absent.
	if tree.Root() != rootBefore {
		t.Error("failed batch mutated the tree")
	}
	if _, ok := tree.Revoked(serial.FromUint64(9)); ok {
		t.Error("serial from failed batch is present")
	}
	if tree.Count() != 3 {
		t.Errorf("Count() = %d, want 3", tree.Count())
	}
}

func TestRootChangesOnInsert(t *testing.T) {
	tree := NewTree()
	seen := map[string]bool{tree.Root().String(): true}
	for i := uint64(1); i <= 40; i++ {
		if err := tree.InsertBatch(mustSerials(t, i*1000)); err != nil {
			t.Fatal(err)
		}
		r := tree.Root().String()
		if seen[r] {
			t.Fatalf("root repeated after insert %d", i)
		}
		seen[r] = true
	}
}

func TestProvePresenceAllSizes(t *testing.T) {
	// Exercise odd and even tree sizes including the promoted-node edge.
	for size := 1; size <= 33; size++ {
		tree := NewTree()
		serials := make([]serial.Number, size)
		for i := range serials {
			serials[i] = serial.FromUint64(uint64(i*10 + 5))
		}
		if err := tree.InsertBatch(serials); err != nil {
			t.Fatal(err)
		}
		for _, s := range serials {
			p := tree.Prove(s)
			if p.Kind != ProofPresence {
				t.Fatalf("size %d: Prove(%v) kind = %v", size, s, p.Kind)
			}
			revoked, err := p.Verify(s, tree.Root(), tree.Count())
			if err != nil {
				t.Fatalf("size %d: Verify(%v): %v", size, s, err)
			}
			if !revoked {
				t.Fatalf("size %d: presence proof verified as absence", size)
			}
		}
	}
}

func TestProveAbsenceAllGaps(t *testing.T) {
	tree := NewTree()
	// Leaves at 10, 20, ..., 150: gaps before, between each pair, after.
	var serials []serial.Number
	for v := uint64(10); v <= 150; v += 10 {
		serials = append(serials, serial.FromUint64(v))
	}
	if err := tree.InsertBatch(serials); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []uint64{1, 15, 25, 95, 149, 151, 100000} {
		s := serial.FromUint64(absent)
		p := tree.Prove(s)
		if p.Kind != ProofAbsence {
			t.Fatalf("Prove(%d) kind = %v, want absence", absent, p.Kind)
		}
		revoked, err := p.Verify(s, tree.Root(), tree.Count())
		if err != nil {
			t.Fatalf("Verify absence of %d: %v", absent, err)
		}
		if revoked {
			t.Fatalf("absence proof for %d verified as presence", absent)
		}
	}
}

func TestProofDoesNotVerifyAgainstWrongRoot(t *testing.T) {
	tree := NewTree()
	if err := tree.InsertBatch(mustSerials(t, 10, 20, 30, 40, 50)); err != nil {
		t.Fatal(err)
	}
	s := serial.FromUint64(30)
	p := tree.Prove(s)
	oldRoot, oldCount := tree.Root(), tree.Count()

	if err := tree.InsertBatch(mustSerials(t, 25)); err != nil {
		t.Fatal(err)
	}
	// Old proof fails against the new root.
	if _, err := p.Verify(s, tree.Root(), tree.Count()); err == nil {
		t.Error("stale proof verified against new root")
	}
	// Old proof still verifies against the old root (roots pin versions).
	if _, err := p.Verify(s, oldRoot, oldCount); err != nil {
		t.Errorf("proof against its own version failed: %v", err)
	}
}

func TestProofTamperingRejected(t *testing.T) {
	tree := NewTree()
	if err := tree.InsertBatch(mustSerials(t, 10, 20, 30, 40, 50, 60, 70)); err != nil {
		t.Fatal(err)
	}
	root, n := tree.Root(), tree.Count()

	t.Run("wrong serial in presence proof", func(t *testing.T) {
		p := tree.Prove(serial.FromUint64(30))
		if _, err := p.Verify(serial.FromUint64(40), root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("err = %v, want ErrBadProof", err)
		}
	})
	t.Run("tampered path element", func(t *testing.T) {
		p := tree.Prove(serial.FromUint64(30))
		p.Left.Path[0][0] ^= 1
		if _, err := p.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("err = %v, want ErrBadProof", err)
		}
	})
	t.Run("tampered revocation number", func(t *testing.T) {
		p := tree.Prove(serial.FromUint64(30))
		p.Left.Num++
		if _, err := p.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("err = %v, want ErrBadProof", err)
		}
	})
	t.Run("tampered index", func(t *testing.T) {
		p := tree.Prove(serial.FromUint64(30))
		p.Left.Index++
		if _, err := p.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("err = %v, want ErrBadProof", err)
		}
	})
	t.Run("index outside tree", func(t *testing.T) {
		p := tree.Prove(serial.FromUint64(30))
		p.Left.Index = n + 5
		if _, err := p.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("err = %v, want ErrBadProof", err)
		}
	})
	t.Run("truncated path", func(t *testing.T) {
		p := tree.Prove(serial.FromUint64(30))
		p.Left.Path = p.Left.Path[:len(p.Left.Path)-1]
		if _, err := p.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("err = %v, want ErrBadProof", err)
		}
	})
	t.Run("extended path", func(t *testing.T) {
		p := tree.Prove(serial.FromUint64(30))
		p.Left.Path = append(p.Left.Path, p.Left.Path[0])
		if _, err := p.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("err = %v, want ErrBadProof", err)
		}
	})
}

func TestAbsenceProofCannotHideRevocation(t *testing.T) {
	// An attacker (compromised RA) holds valid leaves but tries to prove
	// absence of a serial that IS revoked, using non-adjacent leaves.
	tree := NewTree()
	if err := tree.InsertBatch(mustSerials(t, 10, 20, 30, 40, 50)); err != nil {
		t.Fatal(err)
	}
	root, n := tree.Root(), tree.Count()

	// Honest absence proof for 25 exhibits leaves 20 and 30. Forge a proof
	// for revoked serial 30 from the leaves around it: indices 1 (20) and
	// 3 (40) are not adjacent, so verification must fail.
	p20 := tree.Prove(serial.FromUint64(20))
	p40 := tree.Prove(serial.FromUint64(40))
	forged := &Proof{Kind: ProofAbsence, Left: p20.Left, Right: p40.Left}
	if _, err := forged.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
		t.Errorf("forged absence proof accepted: err = %v", err)
	}

	// Boundary forgeries: claim 30 is below the first or above the last.
	first := tree.Prove(serial.FromUint64(5)) // genuine left-boundary proof
	forged = &Proof{Kind: ProofAbsence, Right: first.Right}
	if _, err := forged.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
		t.Errorf("left-boundary forgery accepted: err = %v", err)
	}
	last := tree.Prove(serial.FromUint64(60)) // genuine right-boundary proof
	forged = &Proof{Kind: ProofAbsence, Left: last.Left}
	if _, err := forged.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
		t.Errorf("right-boundary forgery accepted: err = %v", err)
	}

	// Empty-tree claim against a non-empty dictionary.
	forged = &Proof{Kind: ProofAbsenceEmpty}
	if _, err := forged.Verify(serial.FromUint64(30), root, n); !errors.Is(err, ErrBadProof) {
		t.Errorf("empty-tree forgery accepted: err = %v", err)
	}
}

func TestLogSuffix(t *testing.T) {
	tree := NewTree()
	if err := tree.InsertBatch(mustSerials(t, 11, 22, 33, 44)); err != nil {
		t.Fatal(err)
	}
	got, err := tree.LogSuffix(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(serial.FromUint64(22)) || !got[1].Equal(serial.FromUint64(33)) {
		t.Errorf("LogSuffix(1,3) = %v", got)
	}
	if _, err := tree.LogSuffix(3, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := tree.LogSuffix(0, 9); err == nil {
		t.Error("out-of-range suffix accepted")
	}
}

func TestRebuildFromLogReproducesRoot(t *testing.T) {
	tree := NewTree()
	if err := tree.InsertBatch(mustSerials(t, 5, 3, 9, 1, 7)); err != nil {
		t.Fatal(err)
	}
	clone := NewTree()
	if err := clone.RebuildFromLog(tree.Log()); err != nil {
		t.Fatal(err)
	}
	if clone.Root() != tree.Root() {
		t.Error("rebuilt tree root differs")
	}
	if clone.Count() != tree.Count() {
		t.Error("rebuilt tree count differs")
	}
}

func TestInsertOrderIndependentOfBatchOrderWithinSortedResult(t *testing.T) {
	// The same issuance history must give the same root regardless of how
	// it is batched (Tab I batches vs. single inserts).
	history := mustSerials(t, 90, 10, 50, 30, 70, 20)
	one := NewTree()
	if err := one.InsertBatch(history); err != nil {
		t.Fatal(err)
	}
	batched := NewTree()
	if err := batched.InsertBatch(history[:2]); err != nil {
		t.Fatal(err)
	}
	if err := batched.InsertBatch(history[2:5]); err != nil {
		t.Fatal(err)
	}
	if err := batched.InsertBatch(history[5:]); err != nil {
		t.Fatal(err)
	}
	if one.Root() != batched.Root() {
		t.Error("batching changed the root for identical issuance history")
	}
}

func TestSerializedSizeAndMemoryFootprint(t *testing.T) {
	tree := NewTree()
	gen := serial.NewGenerator(3, serial.SizeDistribution{{Bytes: 3, Weight: 1}})
	if err := tree.InsertBatch(gen.NextN(1000)); err != nil {
		t.Fatal(err)
	}
	// 1000 three-byte serials, each 1 length byte + 3 bytes.
	if got := tree.SerializedSize(); got != 4000 {
		t.Errorf("SerializedSize() = %d, want 4000", got)
	}
	if got := tree.MemoryFootprint(); got < 4000 {
		t.Errorf("MemoryFootprint() = %d, implausibly small", got)
	}
}

func TestProofEncodeDecodeRoundTrip(t *testing.T) {
	tree := NewTree()
	if err := tree.InsertBatch(mustSerials(t, 10, 20, 30, 40, 50)); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{30, 25, 5, 55} {
		s := serial.FromUint64(v)
		p := tree.Prove(s)
		decoded, err := DecodeProof(p.Encode())
		if err != nil {
			t.Fatalf("DecodeProof(%d): %v", v, err)
		}
		wantRevoked := p.Kind == ProofPresence
		revoked, err := decoded.Verify(s, tree.Root(), tree.Count())
		if err != nil {
			t.Fatalf("decoded proof for %d: %v", v, err)
		}
		if revoked != wantRevoked {
			t.Errorf("decoded proof for %d: revoked = %v, want %v", v, revoked, wantRevoked)
		}
	}
	// Empty-tree proof round-trips too.
	empty := NewTree()
	p := empty.Prove(serial.FromUint64(1))
	if _, err := DecodeProof(p.Encode()); err != nil {
		t.Fatalf("decode empty proof: %v", err)
	}
}

func TestDecodeProofJunk(t *testing.T) {
	if _, err := DecodeProof([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Error("junk decoded as proof")
	}
	if _, err := DecodeProof(nil); err == nil {
		t.Error("empty buffer decoded as proof")
	}
}

// Property: for a random set of revoked serials, Prove/Verify agree with
// membership for arbitrary queried serials. This is the core soundness/
// completeness property of the authenticated dictionary.
func TestQuickProveVerifyAgreesWithMembership(t *testing.T) {
	f := func(seed uint64, queries []uint32) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		tree := NewTree()
		revoked := make(map[uint64]bool)
		var batch []serial.Number
		n := 1 + rng.IntN(200)
		for i := 0; i < n; i++ {
			v := uint64(rng.Uint32N(1 << 16))
			if revoked[v] {
				continue
			}
			revoked[v] = true
			batch = append(batch, serial.FromUint64(v))
		}
		if err := tree.InsertBatch(batch); err != nil {
			return false
		}
		for _, q := range queries {
			s := serial.FromUint64(uint64(q % (1 << 16)))
			p := tree.Prove(s)
			got, err := p.Verify(s, tree.Root(), tree.Count())
			if err != nil {
				return false
			}
			if got != revoked[uint64(q%(1<<16))] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: proof encode/decode round-trips preserve verifiability.
func TestQuickProofCodecRoundTrip(t *testing.T) {
	tree := NewTree()
	gen := serial.NewGenerator(11, nil)
	if err := tree.InsertBatch(gen.NextN(64)); err != nil {
		t.Fatal(err)
	}
	root, n := tree.Root(), tree.Count()
	f := func(raw []byte) bool {
		s, err := serial.New(normalizeSerialBytes(raw))
		if err != nil {
			return true // skip unencodable inputs
		}
		p := tree.Prove(s)
		decoded, err := DecodeProof(p.Encode())
		if err != nil {
			return false
		}
		want, err1 := p.Verify(s, root, n)
		got, err2 := decoded.Verify(s, root, n)
		return err1 == nil && err2 == nil && want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// normalizeSerialBytes coerces arbitrary bytes into a plausible serial
// encoding (non-empty, ≤20 bytes, minimal).
func normalizeSerialBytes(raw []byte) []byte {
	if len(raw) == 0 {
		return []byte{1}
	}
	if len(raw) > serial.MaxLen {
		raw = raw[:serial.MaxLen]
	}
	if len(raw) > 1 && raw[0] == 0 {
		out := make([]byte, len(raw))
		copy(out, raw)
		out[0] = 1
		return out
	}
	return raw
}
