package dictionary

import (
	"crypto/ed25519"
	"fmt"
	"sync"
	"sync/atomic"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// Replica is the RA side of a dictionary: a full copy of one CA's
// dictionary that is updated only through verified issuance messages
// (Fig 2, update) and freshness statements, and that produces revocation
// statuses for clients (Fig 2, prove).
//
// Replica is safe for concurrent use and optimized for the RA's workload:
// one fetcher goroutine writing every ∆, thousands of DPI goroutines
// proving on the TLS handshake path. Writers serialize on an internal
// mutex, rebuild the tree copy-on-write, and publish the result as an
// immutable Snapshot through an atomic pointer; readers load the pointer
// and never block — a Prove observes either the previous or the new
// version, both of which verify against a CA-signed root.
type Replica struct {
	ca         CAID
	pub        ed25519.PublicKey
	layoutKind LayoutKind

	// snap is the current published version; never nil (the initial
	// snapshot is empty with a nil signed root).
	snap atomic.Pointer[Snapshot]

	mu        sync.Mutex
	tree      *Tree
	root      *SignedRoot     // latest verified signed root, nil until first update
	freshness cryptoutil.Hash // latest verified freshness statement value
	freshPer  int             // period the statement was verified for
	gen       uint64          // publication counter behind the snapshots
}

// NewReplica creates an empty replica of the dictionary of the given CA,
// with the default sorted layout. The public key is the trust anchor
// against which every signed root is verified; it normally comes from the
// CA's certificate.
func NewReplica(ca CAID, pub ed25519.PublicKey) *Replica {
	return NewReplicaWithLayout(ca, pub, LayoutSorted)
}

// NewReplicaWithLayout creates an empty replica using the given commitment
// layout. The layout MUST match the authority's: a replayed update is
// accepted only when the locally rebuilt root equals the signed root, and
// roots are layout-specific. Recovery paths that rebuild a replica (see
// ra.RA.Resync) read the layout back through Layout so the replacement
// reuses it.
func NewReplicaWithLayout(ca CAID, pub ed25519.PublicKey, kind LayoutKind) *Replica {
	r := &Replica{ca: ca, pub: pub, layoutKind: kind, tree: NewTreeWithLayout(kind)}
	r.snap.Store(newSnapshot(ca, r.tree, nil, cryptoutil.Hash{}, 0, 0))
	return r
}

// Layout returns the replica's commitment layout.
func (r *Replica) Layout() LayoutKind { return r.layoutKind }

// publish freezes the current state as the next snapshot. Caller holds mu.
func (r *Replica) publish() {
	r.gen++
	r.snap.Store(newSnapshot(r.ca, r.tree, r.root, r.freshness, r.freshPer, r.gen))
}

// Snapshot returns the current published version. The result is immutable
// and remains provable forever; callers needing several consistent reads
// (root + proof + freshness) should take one snapshot and use it for all
// of them.
func (r *Replica) Snapshot() *Snapshot { return r.snap.Load() }

// CurrentGeneration returns the generation of the current snapshot.
// Generation-validated caches (ra's status cache) use it to test entry
// staleness without retaining the snapshot itself.
func (r *Replica) CurrentGeneration() uint64 { return r.snap.Load().Generation() }

// CA returns the CA whose dictionary this replica mirrors.
func (r *Replica) CA() CAID { return r.ca }

// PublicKey returns the trust anchor every signed root is verified
// against. Recovery paths use it to build a replacement replica with the
// same trust relationship (see ra.RA.Resync).
func (r *Replica) PublicKey() ed25519.PublicKey { return r.pub }

// Count returns the replica's revocation count n.
func (r *Replica) Count() uint64 { return r.snap.Load().Count() }

// Root returns the latest verified signed root, or nil before the first
// successful update.
func (r *Replica) Root() *SignedRoot { return r.snap.Load().Root() }

// Revoked reports whether s is revoked in the replica's current view.
func (r *Replica) Revoked(s serial.Number) bool { return r.snap.Load().Revoked(s) }

// Update applies an issuance message (Fig 2, update): it verifies the
// signature, checks that the batch extends the local count contiguously,
// replays the insertions, and commits only if the rebuilt root and count
// equal the signed values. On any failure the replica is left unchanged.
// On success the new version is published atomically; in-flight Prove
// calls keep using the previous snapshot, which stays valid.
//
// A count gap (the message starts beyond our log) returns
// ErrDesynchronized; the caller should resynchronize via the sync protocol
// (§III), requesting the log suffix after Count().
func (r *Replica) Update(msg *IssuanceMessage) error {
	return r.UpdateWithBounds(msg, nil)
}

// UpdateWithBounds is Update for a message that coalesces several of the
// authority's insertion batches (a catch-up suffix): bounds lists the
// cumulative counts, strictly between the replica's count and the signed
// count, at which the original batches ended, and the replay inserts the
// serials in exactly those sub-batches.
//
// The bounds matter because the forest layout's bucketization — and so
// the root it commits to — depends on the batch structure of the
// insertion history, not only on the final content: replaying a multi-
// batch suffix as one batch can split buckets differently and fail the
// root match even though every serial agrees. The bounds are an unsigned
// hint with no trust requirement: the commit rule is still "the rebuilt
// root equals the CA-signed root", so wrong or malicious bounds can only
// cause a rejection (exactly as dropping the message would), never an
// accepted forgery. Out-of-range or non-increasing bounds are ignored.
func (r *Replica) UpdateWithBounds(msg *IssuanceMessage, bounds []uint64) error {
	if msg == nil || msg.Root == nil {
		return fmt.Errorf("dictionary: nil issuance message")
	}
	if msg.Root.CA != r.ca {
		return fmt.Errorf("dictionary: issuance message for %s applied to replica of %s", msg.Root.CA, r.ca)
	}
	if err := msg.Root.VerifySignature(r.pub); err != nil {
		return err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	have := r.tree.Count()
	want := msg.Root.N
	switch {
	case want == have && len(msg.Serials) == 0:
		// Root-only refresh (chain rotation with no new revocations).
		if !msg.Root.Root.Equal(r.tree.Root()) {
			return fmt.Errorf("%w: rotated root differs at n=%d", ErrRootMismatch, have)
		}
		if msg.Root.Equal(r.root) {
			// The dissemination network re-delivered the root we already
			// hold (every pull carries the latest root). Publishing would
			// bump the snapshot generation and flush every cached status
			// of this CA for nothing — and regress the freshness value to
			// the anchor until the statement is re-applied. Keep the
			// current snapshot.
			return nil
		}
	case want != have+uint64(len(msg.Serials)):
		if want > have+uint64(len(msg.Serials)) {
			return fmt.Errorf("%w: have %d revocations, message covers up to %d", ErrDesynchronized, have, want)
		}
		return fmt.Errorf("%w: message count %d does not extend local count %d by %d",
			ErrCount, want, have, len(msg.Serials))
	default:
		cp := r.tree.checkpoint()
		if err := r.insertSubBatches(msg.Serials, have, bounds); err != nil {
			r.tree.rollback(cp)
			return err
		}
		if !r.tree.Root().Equal(msg.Root.Root) || r.tree.Count() != want {
			// Reject and roll back: the signed root does not match what an
			// honest replay produces (update step 3). The checkpoint is the
			// state of the last published snapshot, so restoring it costs
			// O(batch) — not the full-log re-insert the old rollback paid.
			r.tree.rollback(cp)
			return ErrRootMismatch
		}
	}
	r.root = msg.Root
	// A new signed root restarts the freshness chain at period 0; its
	// anchor doubles as the period-0 statement.
	r.freshness = msg.Root.Anchor
	r.freshPer = 0
	r.publish()
	return nil
}

// insertSubBatches replays serials (covering counts (have, have+len])
// into the tree as the sub-batches delimited by bounds — cumulative
// counts, each meaningful only if strictly inside the covered range and
// increasing; bounds outside that range are skipped. Caller holds mu and
// owns rollback on error.
func (r *Replica) insertSubBatches(serials []serial.Number, have uint64, bounds []uint64) error {
	if r.layoutKind.base() == LayoutSorted {
		// The sorted layout's root depends only on content, never on the
		// batch structure of the insertion history — bounds exist solely to
		// reproduce the forest's bucketization. Coalescing the whole suffix
		// into one merge turns a lagging replica's catch-up from one O(n)
		// rebuild per original ∆ batch into a single O(n) merge.
		return r.tree.InsertBatch(serials)
	}
	start := uint64(0)
	end := have + uint64(len(serials))
	for _, b := range bounds {
		if b <= have+start || b >= end {
			continue
		}
		cut := b - have
		if err := r.tree.InsertBatch(serials[start:cut]); err != nil {
			return err
		}
		start = cut
	}
	return r.tree.InsertBatch(serials[start:])
}

// ApplyFreshness verifies a freshness statement against the chain and,
// if it is strictly newer than the adopted one (and no newer than the
// current period), replaces it (§III "Dissemination"), publishing a new
// snapshot generation. Any genuinely newer statement is adopted — not
// just the {p, p−1} window a live pull sees — because recovery replay
// and shared readers re-verify statements long after they were first
// adopted; the client's 2∆ tolerance is enforced at Status.Check.
func (r *Replica) ApplyFreshness(st *FreshnessStatement, now int64) error {
	if st == nil {
		return fmt.Errorf("dictionary: nil freshness statement")
	}
	if st.CA != r.ca {
		return fmt.Errorf("dictionary: freshness statement for %s applied to replica of %s", st.CA, r.ca)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.root == nil {
		return fmt.Errorf("%w: no signed root yet", ErrDesynchronized)
	}
	p := r.root.Period(now)
	if p > int(r.root.ChainLen) {
		return fmt.Errorf("%w: signed root expired", ErrStale)
	}
	if st.Value.Equal(r.freshness) {
		return nil // no change; keep the published generation
	}
	if k := freshnessGap(st.Value, r.freshness, p-r.freshPer); k > 0 {
		r.freshness = st.Value
		r.freshPer += k
		r.publish()
		return nil
	}
	return fmt.Errorf("%w: freshness statement does not verify for period %d", ErrStale, p)
}

// Prove produces the revocation status for s (Fig 2, prove): the
// presence/absence proof, the signed root, and the latest freshness
// statement, all read from one consistent snapshot with no locking. It
// fails with ErrDesynchronized before the first update.
func (r *Replica) Prove(s serial.Number) (*Status, error) {
	return r.snap.Load().Prove(s)
}

// FreshnessAge returns how many periods old the stored freshness statement
// is relative to now; RAs use it to decide whether a new status must be
// pushed on established connections (§III step 6).
func (r *Replica) FreshnessAge(now int64) (int, error) {
	snap := r.snap.Load()
	if snap.Root() == nil {
		return 0, fmt.Errorf("%w: replica has no signed root", ErrDesynchronized)
	}
	return snap.Root().Period(now) - snap.FreshnessPeriod(), nil
}

// Log returns a copy of the replica's issuance log (for consistency
// checking and resynchronization serving between RAs). It reads the
// published snapshot, lock-free: a mid-update, not-yet-verified log is
// never exposed.
func (r *Replica) Log() []serial.Number {
	return r.snap.Load().Log()
}

// LogSuffix returns the serials with revocation numbers in (from, to]; the
// distribution point serves it to resynchronize lagging replicas (§III).
// Like Log it reads the published snapshot without locking; callers
// needing the suffix consistent with a root should take one Snapshot and
// use its accessors.
func (r *Replica) LogSuffix(from, to uint64) ([]serial.Number, error) {
	return r.snap.Load().LogSuffix(from, to)
}

// Freshness returns the latest verified freshness-statement value. Before
// any statement arrives it is the signed root's anchor (the period-0 value),
// and before the first update it is the zero hash.
func (r *Replica) Freshness() cryptoutil.Hash {
	return r.snap.Load().Freshness()
}

// SerializedSize reports the canonical serialized size of the replica's
// dictionary (the §VII-D storage-overhead metric).
func (r *Replica) SerializedSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tree.SerializedSize()
}

// MemoryFootprint estimates resident memory of the replica's tree.
func (r *Replica) MemoryFootprint() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tree.MemoryFootprint()
}
