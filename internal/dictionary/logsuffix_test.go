package dictionary

import (
	"sync"
	"testing"

	"ritm/internal/serial"
)

// TestLayoutLogSuffixImmutableUnderConcurrentInsert pins LogSuffix's
// aliasing contract: the returned sub-slice shares the tree's log backing,
// and stays byte-for-byte stable while InsertBatch keeps appending — the
// log is append-only, and the three-index clip keeps even a caller's own
// append out of the tree's array. The "Layout" name places it in CI's
// dictionary race suite, where the race detector additionally proves the
// reader and the inserter never touch the same memory.
func TestLayoutLogSuffixImmutableUnderConcurrentInsert(t *testing.T) {
	for _, kind := range []LayoutKind{LayoutSorted, LayoutForest} {
		t.Run(kind.String(), func(t *testing.T) {
			tree := NewTreeWithLayout(kind)
			gen := serial.NewGenerator(0x10F5, nil)
			if err := tree.InsertBatch(gen.NextN(500)); err != nil {
				t.Fatal(err)
			}
			suffix, err := tree.LogSuffix(100, 500)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]serial.Number, len(suffix))
			copy(want, suffix)

			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					if err := tree.InsertBatch(gen.NextN(100)); err != nil {
						t.Error(err)
						return
					}
				}
				close(stop)
			}()
			// Read the previously returned suffix concurrently with the
			// inserts; under -race any overlapping write is a hard failure,
			// and value equality catches non-racy clobbering too.
			for {
				for i := range suffix {
					if !suffix[i].Equal(want[i]) {
						t.Errorf("suffix[%d] mutated by concurrent insert", i)
						wg.Wait()
						return
					}
				}
				select {
				case <-stop:
					wg.Wait()
					for i := range suffix {
						if !suffix[i].Equal(want[i]) {
							t.Fatalf("suffix[%d] mutated after inserts finished", i)
						}
					}
					// A caller append must grow into fresh backing, not the
					// tree's log (capacity is clipped to the suffix length).
					grown := append(suffix, serial.FromUint64(7))
					if got, err := tree.LogSuffix(500, 501); err != nil {
						t.Fatal(err)
					} else if got[0].Equal(grown[len(grown)-1]) {
						t.Fatal("caller append wrote into the tree's log")
					}
					return
				default:
				}
			}
		})
	}
}
