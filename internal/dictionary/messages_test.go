package dictionary

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// randomSerial draws a valid serial from a quick-check source.
func randomSerial(r *rand.Rand) serial.Number {
	size := 1 + r.Intn(serial.MaxLen)
	b := make([]byte, size)
	r.Read(b)
	if size > 1 && b[0] == 0 {
		b[0] = 1
	}
	n, err := serial.New(b)
	if err != nil {
		// Regenerate deterministically; New only fails on structure we
		// just excluded, so this is unreachable.
		return serial.FromUint64(r.Uint64() | 1)
	}
	return n
}

func randomHash(r *rand.Rand) cryptoutil.Hash {
	var h cryptoutil.Hash
	r.Read(h[:])
	return h
}

func TestSignedRootEncodeDecodeProperty(t *testing.T) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(n uint64, tstamp int64, chainLen, deltaSecs uint32, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := &SignedRoot{
			CA:        "prop-ca",
			Root:      randomHash(r),
			N:         n,
			Anchor:    randomHash(r),
			Time:      tstamp,
			ChainLen:  chainLen,
			DeltaSecs: deltaSecs,
		}
		root.sign(signer)
		got, err := DecodeSignedRoot(root.Encode())
		if err != nil {
			return false
		}
		return got.Equal(root) && got.VerifySignature(signer.Public()) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatusEncodeDecodeProperty(t *testing.T) {
	// Round-trip real statuses (with and without subjects) produced from a
	// live dictionary, over randomized serial populations.
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, withSubject bool) bool {
		r := rand.New(rand.NewSource(seed))
		auth, err := NewAuthority(AuthorityConfig{
			CA:          "prop-ca",
			Signer:      signer,
			Delta:       10 * time.Second,
			ChainLength: 8,
		}, 1000)
		if err != nil {
			return false
		}
		count := 1 + r.Intn(40)
		serials := make([]serial.Number, 0, count)
		seen := map[string]bool{}
		for len(serials) < count {
			s := randomSerial(r)
			if !seen[string(s.Raw())] {
				seen[string(s.Raw())] = true
				serials = append(serials, s)
			}
		}
		if _, err := auth.Insert(serials, 1000); err != nil {
			return false
		}
		subject := serials[r.Intn(len(serials))]
		st, err := auth.Prove(subject, 1001)
		if err != nil {
			return false
		}
		if withSubject {
			st.Subject = subject
		}
		got, err := DecodeStatus(st.Encode())
		if err != nil {
			return false
		}
		if withSubject && !got.Subject.Equal(subject) {
			return false
		}
		if !withSubject && !got.Subject.IsZero() {
			return false
		}
		res, err := got.Check(subject, signer.Public(), 1001)
		return err == nil && res == CheckRevoked
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIssuanceMessageRoundTripProperty(t *testing.T) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		auth, err := NewAuthority(AuthorityConfig{
			CA:          "prop-ca",
			Signer:      signer,
			Delta:       10 * time.Second,
			ChainLength: 8,
		}, 1000)
		if err != nil {
			return false
		}
		gen := serial.NewGenerator(uint64(seed), nil)
		msg, err := auth.Insert(gen.NextN(1+r.Intn(50)), 1000)
		if err != nil {
			return false
		}
		got, err := DecodeIssuanceMessage(msg.Encode())
		if err != nil {
			return false
		}
		if len(got.Serials) != len(msg.Serials) || !got.Root.Equal(msg.Root) {
			return false
		}
		// The decoded message replays into a fresh replica.
		replica := NewReplica("prop-ca", signer.Public())
		return replica.Update(got) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecodersNeverPanicOnTruncation(t *testing.T) {
	// Every prefix of every valid encoding must be rejected cleanly (or,
	// for the empty suffix case, decoded identically) — never panic.
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	auth, err := NewAuthority(AuthorityConfig{
		CA:          "trunc-ca",
		Signer:      signer,
		Delta:       10 * time.Second,
		ChainLength: 8,
	}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	gen := serial.NewGenerator(7, nil)
	msg, err := auth.Insert(gen.NextN(5), 1000)
	if err != nil {
		t.Fatal(err)
	}
	status, err := auth.Prove(gen.Next(), 1001)
	if err != nil {
		t.Fatal(err)
	}
	status.Subject = gen.Next()

	encodings := map[string][]byte{
		"root":      auth.SignedRoot().Encode(),
		"issuance":  msg.Encode(),
		"status":    status.Encode(),
		"freshness": (&FreshnessStatement{CA: "trunc-ca", Value: cryptoutil.HashBytes([]byte("x"))}).Encode(),
	}
	for name, enc := range encodings {
		for cut := 0; cut < len(enc); cut++ {
			prefix := enc[:cut]
			var decodeErr error
			switch name {
			case "root":
				_, decodeErr = DecodeSignedRoot(prefix)
			case "issuance":
				_, decodeErr = DecodeIssuanceMessage(prefix)
			case "status":
				_, decodeErr = DecodeStatus(prefix)
			case "freshness":
				_, decodeErr = DecodeFreshnessStatement(prefix)
			}
			if decodeErr == nil {
				t.Fatalf("%s: %d-byte prefix of %d decoded successfully", name, cut, len(enc))
			}
		}
	}
}

func TestStatusSubjectMismatchStillChecksSuppliedSerial(t *testing.T) {
	// Subject is advisory routing data: Check always verifies the serial
	// the caller supplies, so a lying Subject cannot redirect a proof.
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	auth, err := NewAuthority(AuthorityConfig{
		CA:     "subj-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	gen := serial.NewGenerator(8, nil)
	revoked := gen.Next()
	if _, err := auth.Insert([]serial.Number{revoked}, 1000); err != nil {
		t.Fatal(err)
	}
	st, err := auth.Prove(revoked, 1001)
	if err != nil {
		t.Fatal(err)
	}
	st.Subject = gen.Next() // lie about the subject

	// Checking the real revoked serial still reports revocation; checking
	// the lie fails (the presence proof is for a different serial).
	if res, err := st.Check(revoked, signer.Public(), 1001); err != nil || res != CheckRevoked {
		t.Errorf("check(real) = %v, %v", res, err)
	}
	if _, err := st.Check(st.Subject, signer.Public(), 1001); err == nil {
		t.Error("presence proof accepted for the lying subject")
	}
}
