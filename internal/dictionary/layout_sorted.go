package dictionary

import (
	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// sortedLayout is the original commitment structure: one flat sorted hash
// tree over all leaves, with every interior level kept so audit paths are
// produced in O(log n) without recomputation. A batch insert merges the new
// leaves into the sorted order and recomputes interior levels incrementally:
// every node left of the first changed leaf position is copied from the
// previous version, and only nodes at or right of it are rehashed. A batch
// landing at the right edge of the serial space therefore costs O(k·log n);
// a batch landing at position p costs O(n−p) (positions shift, so everything
// to the right re-pairs), with the full O(n) of the paper's "insert sₓ,n
// into the tree and rebuild it" as the worst case.
type sortedLayout struct {
	leaves     []Leaf            // sorted by serial
	leafHashes []cryptoutil.Hash // parallel to leaves; == levels[0]
	levels     [][]cryptoutil.Hash
	hashed     uint64
	// owned marks the arrays above as private scratch: (re)built since the
	// last view/checkpoint, so no published snapshot or captured checkpoint
	// can reach them and insert may extend them in place (the zero-realloc
	// arena path). view and checkpoint expose the arrays and clear it.
	owned bool
}

func (l *sortedLayout) kind() LayoutKind { return LayoutSorted }

func (l *sortedLayout) insert(batch []Leaf) {
	total := len(l.leaves) + len(batch)
	if l.owned && cap(l.leaves) >= total && cap(l.leafHashes) >= total {
		merged, mergedHashes, firstChanged, leafOps := mergeLeavesInPlace(l.leaves, l.leafHashes, batch)
		levels, nodeOps := buildLevelsInPlace(l.levels, mergedHashes, firstChanged)
		l.leaves = merged
		l.leafHashes = mergedHashes
		l.levels = levels
		l.hashed += leafOps + nodeOps
		return
	}
	merged, mergedHashes, firstChanged, leafOps := mergeLeaves(l.leaves, l.leafHashes, batch)
	levels, nodeOps := buildLevels(mergedHashes, l.levels, firstChanged)
	l.leaves = merged
	l.leafHashes = mergedHashes
	l.levels = levels
	l.hashed += leafOps + nodeOps
	l.owned = true
}

func (l *sortedLayout) view() LayoutView {
	l.owned = false
	return sortedView{miniTree{leaves: l.leaves, levels: l.levels}}
}

func (l *sortedLayout) rootHash() cryptoutil.Hash {
	if len(l.leaves) == 0 {
		return EmptyRoot
	}
	return l.levels[len(l.levels)-1][0]
}

func (l *sortedLayout) hashedNodes() uint64 { return l.hashed }

func (l *sortedLayout) memoryFootprint() int {
	const (
		hashBytes    = cryptoutil.HashSize
		leafOverhead = 24 + 8 // slice header of serial + num
	)
	total := 0
	for _, lvl := range l.levels {
		total += len(lvl) * hashBytes
	}
	for _, lf := range l.leaves {
		total += leafOverhead + lf.Serial.Len()
	}
	return total
}

// sortedState is the O(1) checkpoint of a sorted layout: because every
// insert is copy-on-write, the slice headers of one version pin it forever.
type sortedState struct {
	leaves     []Leaf
	leafHashes []cryptoutil.Hash
	levels     [][]cryptoutil.Hash
}

func (l *sortedLayout) checkpoint() layoutState {
	// The captured slice headers may be held until an arbitrarily later
	// restore: expose the arrays so no in-place merge rewrites them.
	l.owned = false
	return sortedState{leaves: l.leaves, leafHashes: l.leafHashes, levels: l.levels}
}

func (l *sortedLayout) restore(st layoutState) {
	s := st.(sortedState)
	l.leaves, l.leafHashes, l.levels = s.leaves, s.leafHashes, s.levels
	// The reinstated arrays are the checkpointed (exposed) version; the
	// private scratch a failed replay built is dropped for the collector.
	l.owned = false
}

// sortedView is one immutable version of the sorted layout's proving state.
type sortedView struct {
	miniTree
}

func (v sortedView) Root() cryptoutil.Hash {
	if len(v.leaves) == 0 {
		return EmptyRoot
	}
	return v.miniTree.root()
}

func (v sortedView) Revoked(s serial.Number) (uint64, bool) {
	return v.revoked(s)
}

// Prove produces a presence or absence proof for s. The proof verifies
// against Root() and the leaf count.
func (v sortedView) Prove(s serial.Number) *Proof {
	if len(v.leaves) == 0 {
		return &Proof{Kind: ProofAbsenceEmpty}
	}
	return v.miniTree.proveLocal(s, nil, nil, 0)
}
