package dictionary

import (
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

func newShardedAuthority(t *testing.T, width time.Duration) *ShardedAuthority {
	t.Helper()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShardedAuthority(ShardConfig{
		Base: AuthorityConfig{
			CA:     "ShardCA",
			Signer: signer,
			Delta:  10 * time.Second,
		},
		Width: width,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedAuthorityRoutesByExpiry(t *testing.T) {
	const quarter = 90 * 24 * time.Hour
	s := newShardedAuthority(t, quarter)
	now := int64(1_400_000_000)
	gen := serial.NewGenerator(1, nil)

	// Two certificates expiring two quarters apart land in different
	// shards; two expiring the same week share one.
	expA := now + 30*24*3600
	expB := now + 200*24*3600
	expA2 := expA + 3*24*3600

	if _, err := s.Insert(gen.Next(), expA, now); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(gen.Next(), expB, now); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(gen.Next(), expA2, now); err != nil {
		t.Fatal(err)
	}
	shards := s.Shards()
	if len(shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(shards))
	}
	if got := shards[0].Count() + shards[1].Count(); got != 3 {
		t.Errorf("total revocations across shards = %d", got)
	}
	if s.ShardIDFor(expA) != s.ShardIDFor(expA2) {
		t.Error("same-quarter expiries mapped to different shards")
	}
	if s.ShardIDFor(expA) == s.ShardIDFor(expB) {
		t.Error("distant expiries share a shard")
	}
}

func TestShardedProofsVerifyPerShard(t *testing.T) {
	const quarter = 90 * 24 * time.Hour
	s := newShardedAuthority(t, quarter)
	now := int64(1_400_000_000)
	gen := serial.NewGenerator(2, nil)
	exp := now + 40*24*3600

	revoked := gen.Next()
	if _, err := s.Insert(revoked, exp, now); err != nil {
		t.Fatal(err)
	}

	// Presence for the revoked serial, absence for a fresh one — both
	// verified against the shard's signed root.
	shard := s.Shards()[0]
	status, err := s.Prove(revoked, exp, now)
	if err != nil {
		t.Fatal(err)
	}
	res, err := status.Check(revoked, shard.PublicKey(), now)
	if err != nil || res != CheckRevoked {
		t.Fatalf("presence check = %v, %v", res, err)
	}
	other := gen.Next()
	status, err = s.Prove(other, exp, now)
	if err != nil {
		t.Fatal(err)
	}
	res, err = status.Check(other, shard.PublicKey(), now)
	if err != nil || res != CheckValid {
		t.Fatalf("absence check = %v, %v", res, err)
	}

	// Proving against an expiry with no shard yet creates an empty shard
	// whose absence proof is still sound.
	farFuture := now + 400*24*3600
	status, err = s.Prove(other, farFuture, now)
	if err != nil {
		t.Fatal(err)
	}
	if status.Proof.Kind != ProofAbsenceEmpty {
		t.Errorf("empty-shard proof kind = %v", status.Proof.Kind)
	}
}

func TestPruneExpiredDropsWholeShards(t *testing.T) {
	const quarter = 90 * 24 * time.Hour
	s := newShardedAuthority(t, quarter)
	now := int64(1_400_000_000)
	gen := serial.NewGenerator(3, nil)

	soon := now + 10*24*3600   // expires within the current quarter-ish
	later := now + 300*24*3600 // expires next year
	for i := 0; i < 5; i++ {
		if _, err := s.Insert(gen.Next(), soon, now); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Insert(gen.Next(), later, now); err != nil {
		t.Fatal(err)
	}
	if len(s.Shards()) != 2 {
		t.Fatalf("shards = %d", len(s.Shards()))
	}

	// Nothing prunable yet.
	if dropped, _ := s.PruneExpired(now); dropped != 0 {
		t.Fatalf("premature prune dropped %d shards", dropped)
	}
	// Move past the first bucket's end: its five revocations are freed.
	future := soon + int64(quarter/time.Second)
	dropped, freed := s.PruneExpired(future)
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if freed <= 0 {
		t.Error("no bytes reported freed")
	}
	remaining := s.Shards()
	if len(remaining) != 1 || remaining[0].Count() != 1 {
		t.Errorf("remaining shards: %d", len(remaining))
	}
}

func TestShardedAuthorityValidation(t *testing.T) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	base := AuthorityConfig{CA: "X", Signer: signer, Delta: 10 * time.Second}
	if _, err := NewShardedAuthority(ShardConfig{Base: base, Width: time.Minute}); err == nil {
		t.Error("sub-hour shard width accepted")
	}
	if _, err := NewShardedAuthority(ShardConfig{Width: time.Hour}); err == nil {
		t.Error("missing base config accepted")
	}
}
