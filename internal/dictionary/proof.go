package dictionary

import (
	"fmt"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
	"ritm/internal/wire"
)

// ProofKind distinguishes the three shapes a dictionary proof can take.
type ProofKind uint8

// Proof kinds. Values are part of the wire format.
const (
	// ProofPresence proves the serial is revoked (it is a leaf).
	ProofPresence ProofKind = iota + 1
	// ProofAbsence proves the serial is not revoked, by exhibiting the
	// adjacent leaf or leaves that bracket it in sorted order.
	ProofAbsence
	// ProofAbsenceEmpty proves absence trivially: the dictionary is empty.
	ProofAbsenceEmpty
)

// proofSpineFlag marks, on the encoded kind byte, that a SpineSegment
// follows the leaves — the versioning bit of the wire format. Encodings
// without the bit are exactly the pre-forest format and still decode.
const proofSpineFlag = 0x80

// maxProofPath bounds decoded audit-path lengths: a structure of 2⁶⁴
// positions, far beyond any real tree or spine.
const maxProofPath = 64

// String returns a human-readable kind name.
func (k ProofKind) String() string {
	switch k {
	case ProofPresence:
		return "presence"
	case ProofAbsence:
		return "absence"
	case ProofAbsenceEmpty:
		return "absence-empty"
	default:
		return fmt.Sprintf("ProofKind(%d)", uint8(k))
	}
}

// ProofLeaf is one leaf exhibited by a proof, together with the audit path
// that authenticates it against the signed root (for the sorted layout) or
// against its bucket's root (for the forest layout).
type ProofLeaf struct {
	Serial serial.Number
	Num    uint64
	Index  uint64
	Path   []cryptoutil.Hash
}

// climb walks an audit path from position idx of a structure with size
// positions up to its root, consuming exactly the whole path. The promotion
// rule for odd rightmost nodes is reproduced from (index, size) alone.
func climb(h cryptoutil.Hash, idx, size uint64, path []cryptoutil.Hash) (cryptoutil.Hash, error) {
	pi := 0
	for size > 1 {
		if idx%2 == 0 {
			if idx+1 < size {
				if pi >= len(path) {
					return h, fmt.Errorf("%w: audit path too short", ErrBadProof)
				}
				h = cryptoutil.HashNode(h, path[pi])
				pi++
			}
			// Rightmost node of an odd level is promoted unchanged.
		} else {
			if pi >= len(path) {
				return h, fmt.Errorf("%w: audit path too short", ErrBadProof)
			}
			h = cryptoutil.HashNode(path[pi], h)
			pi++
		}
		idx /= 2
		size = (size + 1) / 2
	}
	if pi != len(path) {
		return h, fmt.Errorf("%w: audit path has %d extra elements", ErrBadProof, len(path)-pi)
	}
	return h, nil
}

// computeRoot recomputes the tree root the leaf's audit path leads to, for
// a tree of n leaves.
func (pl *ProofLeaf) computeRoot(n uint64) (cryptoutil.Hash, error) {
	if pl.Index >= n {
		return cryptoutil.Hash{}, fmt.Errorf("%w: leaf index %d outside tree of size %d", ErrBadProof, pl.Index, n)
	}
	h := Leaf{Serial: pl.Serial, Num: pl.Num}.hash()
	return climb(h, pl.Index, n, pl.Path)
}

// verify checks the leaf's audit path against root for a tree of size n.
func (pl *ProofLeaf) verify(root cryptoutil.Hash, n uint64) error {
	h, err := pl.computeRoot(n)
	if err != nil {
		return err
	}
	if !h.Equal(root) {
		return fmt.Errorf("%w: audit path does not reach root", ErrBadProof)
	}
	return nil
}

// SpineSegment extends a proof produced by a forest-layout dictionary
// (LayoutForest): it authenticates the bucket the exhibited leaves live in.
// The verifier recomputes the bucket root from the leaf audit paths, binds
// it to the committed bucket header (range bounds and leaf count), climbs
// the spine path, and compares the forest root against the signed root.
//
// The committed range [Lo, Hi) is what keeps absence proofs sound with
// bucket-local neighbors: buckets tile the serial space disjointly, so a
// serial inside this bucket's range cannot be a leaf of any other bucket.
type SpineSegment struct {
	// BucketIndex is the bucket's position among NumBuckets spine leaves.
	BucketIndex uint64
	// NumBuckets is the total bucket count committed by the forest root.
	NumBuckets uint64
	// LeafCount is the number of leaves in this bucket.
	LeafCount uint64
	// Lo and Hi bound the bucket's serial range [Lo, Hi); a zero Number
	// means unbounded on that side.
	Lo, Hi serial.Number
	// Path is the spine audit path from the bucket commitment to the spine
	// root.
	Path []cryptoutil.Hash
}

// contains reports whether s falls in the bucket's committed range.
func (sp *SpineSegment) contains(s serial.Number) bool {
	if !sp.Lo.IsZero() && sp.Lo.Compare(s) > 0 {
		return false
	}
	if !sp.Hi.IsZero() && s.Compare(sp.Hi) >= 0 {
		return false
	}
	return true
}

// Proof is a presence or absence proof for one serial number against one
// version (root, n) of a dictionary. Proofs are produced by Tree.Prove and
// verified with Proof.Verify; they are sound against any prover, including
// a compromised RA or CDN (§V).
type Proof struct {
	Kind ProofKind
	// Left is the proven leaf for presence proofs, or the predecessor leaf
	// for absence proofs (nil when the serial precedes the whole tree — or,
	// with a spine segment, its whole bucket).
	Left *ProofLeaf
	// Right is the successor leaf for absence proofs (nil when the serial
	// follows the whole tree or bucket). Unused by presence proofs.
	Right *ProofLeaf
	// Spine is present exactly when the proof comes from a forest-layout
	// dictionary; leaf indices and paths are then bucket-local.
	Spine *SpineSegment
}

// Verify checks that the proof is a valid statement about s in the
// dictionary version committed to by (root, n). On success it returns
// revoked=true for a presence proof and revoked=false for an absence proof.
// Proofs carrying a SpineSegment verify against forest-layout roots; plain
// proofs against sorted-layout roots — the layouts' root constructions are
// domain-separated, so a proof can never verify against the other layout's
// root.
func (p *Proof) Verify(s serial.Number, root cryptoutil.Hash, n uint64) (revoked bool, err error) {
	if p.Spine != nil {
		return p.verifyForest(s, root, n)
	}
	switch p.Kind {
	case ProofPresence:
		if p.Left == nil || p.Right != nil {
			return false, fmt.Errorf("%w: malformed presence proof", ErrBadProof)
		}
		if !p.Left.Serial.Equal(s) {
			return false, fmt.Errorf("%w: presence proof is for serial %v, not %v", ErrBadProof, p.Left.Serial, s)
		}
		if err := p.Left.verify(root, n); err != nil {
			return false, err
		}
		return true, nil

	case ProofAbsenceEmpty:
		if p.Left != nil || p.Right != nil {
			return false, fmt.Errorf("%w: malformed empty-tree proof", ErrBadProof)
		}
		if n != 0 || !root.Equal(EmptyRoot) {
			return false, fmt.Errorf("%w: empty-tree proof against non-empty dictionary", ErrBadProof)
		}
		return false, nil

	case ProofAbsence:
		return false, p.verifyAbsence(s, root, n)

	default:
		return false, fmt.Errorf("%w: unknown proof kind %d", ErrBadProof, p.Kind)
	}
}

func (p *Proof) verifyAbsence(s serial.Number, root cryptoutil.Hash, n uint64) error {
	if n == 0 {
		return fmt.Errorf("%w: absence proof against empty dictionary", ErrBadProof)
	}
	switch {
	case p.Left == nil && p.Right == nil:
		return fmt.Errorf("%w: absence proof with no leaves", ErrBadProof)

	case p.Left == nil:
		// s precedes the entire tree: Right must be the first leaf.
		if p.Right.Index != 0 {
			return fmt.Errorf("%w: left-boundary proof not anchored at index 0", ErrBadProof)
		}
		if s.Compare(p.Right.Serial) >= 0 {
			return fmt.Errorf("%w: serial %v not below first leaf %v", ErrBadProof, s, p.Right.Serial)
		}
		return p.Right.verify(root, n)

	case p.Right == nil:
		// s follows the entire tree: Left must be the last leaf.
		if p.Left.Index != n-1 {
			return fmt.Errorf("%w: right-boundary proof not anchored at index n-1", ErrBadProof)
		}
		if s.Compare(p.Left.Serial) <= 0 {
			return fmt.Errorf("%w: serial %v not above last leaf %v", ErrBadProof, s, p.Left.Serial)
		}
		return p.Left.verify(root, n)

	default:
		// s falls strictly between two leaves that must be adjacent.
		if p.Right.Index != p.Left.Index+1 {
			return fmt.Errorf("%w: absence leaves not adjacent (%d, %d)", ErrBadProof, p.Left.Index, p.Right.Index)
		}
		if p.Left.Serial.Compare(s) >= 0 || s.Compare(p.Right.Serial) >= 0 {
			return fmt.Errorf("%w: serial %v not bracketed by (%v, %v)", ErrBadProof, s, p.Left.Serial, p.Right.Serial)
		}
		if err := p.Left.verify(root, n); err != nil {
			return err
		}
		return p.Right.verify(root, n)
	}
}

// verifyForest checks a proof carrying a SpineSegment: the exhibited leaves
// authenticate a bucket root, the bucket header binds the root to the
// committed range and count, the spine path authenticates the bucket, and
// the forest root must match the signed root.
func (p *Proof) verifyForest(s serial.Number, root cryptoutil.Hash, n uint64) (bool, error) {
	sp := p.Spine
	if n == 0 || sp.NumBuckets == 0 || sp.LeafCount == 0 ||
		sp.BucketIndex >= sp.NumBuckets || sp.LeafCount > n || sp.NumBuckets > n {
		return false, fmt.Errorf("%w: malformed spine segment", ErrBadProof)
	}
	var (
		revoked    bool
		bucketRoot cryptoutil.Hash
		err        error
	)
	switch p.Kind {
	case ProofPresence:
		if p.Left == nil || p.Right != nil {
			return false, fmt.Errorf("%w: malformed presence proof", ErrBadProof)
		}
		if !p.Left.Serial.Equal(s) {
			return false, fmt.Errorf("%w: presence proof is for serial %v, not %v", ErrBadProof, p.Left.Serial, s)
		}
		if bucketRoot, err = p.Left.computeRoot(sp.LeafCount); err != nil {
			return false, err
		}
		revoked = true

	case ProofAbsence:
		// The range check is what makes a bucket-local absence proof a
		// global one: s belongs to this bucket and no other.
		if !sp.contains(s) {
			return false, fmt.Errorf("%w: serial %v outside the proof bucket's range", ErrBadProof, s)
		}
		switch {
		case p.Left == nil && p.Right == nil:
			return false, fmt.Errorf("%w: absence proof with no leaves", ErrBadProof)
		case p.Left == nil:
			if p.Right.Index != 0 {
				return false, fmt.Errorf("%w: left-boundary proof not anchored at bucket index 0", ErrBadProof)
			}
			if s.Compare(p.Right.Serial) >= 0 {
				return false, fmt.Errorf("%w: serial %v not below first bucket leaf %v", ErrBadProof, s, p.Right.Serial)
			}
			if bucketRoot, err = p.Right.computeRoot(sp.LeafCount); err != nil {
				return false, err
			}
		case p.Right == nil:
			if p.Left.Index != sp.LeafCount-1 {
				return false, fmt.Errorf("%w: right-boundary proof not anchored at last bucket leaf", ErrBadProof)
			}
			if s.Compare(p.Left.Serial) <= 0 {
				return false, fmt.Errorf("%w: serial %v not above last bucket leaf %v", ErrBadProof, s, p.Left.Serial)
			}
			if bucketRoot, err = p.Left.computeRoot(sp.LeafCount); err != nil {
				return false, err
			}
		default:
			if p.Right.Index != p.Left.Index+1 {
				return false, fmt.Errorf("%w: absence leaves not adjacent (%d, %d)", ErrBadProof, p.Left.Index, p.Right.Index)
			}
			if p.Left.Serial.Compare(s) >= 0 || s.Compare(p.Right.Serial) >= 0 {
				return false, fmt.Errorf("%w: serial %v not bracketed by (%v, %v)", ErrBadProof, s, p.Left.Serial, p.Right.Serial)
			}
			if bucketRoot, err = p.Left.computeRoot(sp.LeafCount); err != nil {
				return false, err
			}
			rightRoot, err := p.Right.computeRoot(sp.LeafCount)
			if err != nil {
				return false, err
			}
			if !bucketRoot.Equal(rightRoot) {
				return false, fmt.Errorf("%w: absence leaves authenticate different buckets", ErrBadProof)
			}
		}

	default:
		// ProofAbsenceEmpty (and anything else) never carries a spine.
		return false, fmt.Errorf("%w: proof kind %v cannot carry a spine segment", ErrBadProof, p.Kind)
	}

	node := cryptoutil.HashBucket(sp.Lo.Raw(), sp.Hi.Raw(), sp.LeafCount, bucketRoot)
	spineRoot, err := climb(node, sp.BucketIndex, sp.NumBuckets, sp.Path)
	if err != nil {
		return false, err
	}
	if !cryptoutil.HashForestRoot(sp.NumBuckets, spineRoot).Equal(root) {
		return false, fmt.Errorf("%w: spine path does not reach root", ErrBadProof)
	}
	return revoked, nil
}

// Size returns the encoded size of the proof in bytes; the paper reports
// 500–900 bytes for the largest CRL observed (§VII-D).
func (p *Proof) Size() int { return len(p.Encode()) }

// Encode serializes the proof.
func (p *Proof) Encode() []byte {
	e := wire.PooledEncoder()
	p.encodeTo(e)
	return e.Finish()
}

func (p *Proof) encodeTo(e *wire.Encoder) {
	k := uint8(p.Kind)
	if p.Spine != nil {
		k |= proofSpineFlag
	}
	e.Uint8(k)
	encodeProofLeaf(e, p.Left)
	encodeProofLeaf(e, p.Right)
	if p.Spine != nil {
		encodeSpineSegment(e, p.Spine)
	}
}

func encodeProofLeaf(e *wire.Encoder, pl *ProofLeaf) {
	if pl == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.BytesField(pl.Serial.Raw())
	e.Uvarint(pl.Num)
	e.Uvarint(pl.Index)
	e.Uvarint(uint64(len(pl.Path)))
	for _, h := range pl.Path {
		e.Raw(h[:])
	}
}

func encodeSpineSegment(e *wire.Encoder, sp *SpineSegment) {
	e.BytesField(sp.Lo.Raw()) // zero serial encodes as empty = unbounded
	e.BytesField(sp.Hi.Raw())
	e.Uvarint(sp.BucketIndex)
	e.Uvarint(sp.NumBuckets)
	e.Uvarint(sp.LeafCount)
	e.Uvarint(uint64(len(sp.Path)))
	for _, h := range sp.Path {
		e.Raw(h[:])
	}
}

// DecodeProof parses a proof encoded by Encode, including pre-forest
// encodings (no spine flag on the kind byte).
func DecodeProof(buf []byte) (*Proof, error) {
	d := wire.NewDecoder(buf)
	p, err := decodeProofFrom(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode proof: %w", err)
	}
	return p, nil
}

func decodeProofFrom(d *wire.Decoder) (*Proof, error) {
	var p Proof
	k := d.Uint8()
	hasSpine := k&proofSpineFlag != 0
	p.Kind = ProofKind(k &^ proofSpineFlag)
	var err error
	if p.Left, err = decodeProofLeaf(d); err != nil {
		return nil, err
	}
	if p.Right, err = decodeProofLeaf(d); err != nil {
		return nil, err
	}
	if hasSpine {
		if p.Spine, err = decodeSpineSegment(d); err != nil {
			return nil, err
		}
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("decode proof: %w", d.Err())
	}
	return &p, nil
}

func decodeProofLeaf(d *wire.Decoder) (*ProofLeaf, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	var pl ProofLeaf
	serialBytes := d.BytesCopy()
	pl.Num = d.Uvarint()
	pl.Index = d.Uvarint()
	pathLen := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode proof leaf: %w", d.Err())
	}
	if pathLen > maxProofPath {
		return nil, fmt.Errorf("%w: audit path of %d elements", ErrBadProof, pathLen)
	}
	pl.Path = make([]cryptoutil.Hash, pathLen)
	for i := range pl.Path {
		h, err := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
		if err != nil || d.Err() != nil {
			return nil, fmt.Errorf("decode proof leaf path: %w", ErrBadProof)
		}
		pl.Path[i] = h
	}
	s, err := serial.New(serialBytes)
	if err != nil {
		return nil, fmt.Errorf("decode proof leaf serial: %w", err)
	}
	pl.Serial = s
	return &pl, nil
}

func decodeSpineSegment(d *wire.Decoder) (*SpineSegment, error) {
	var sp SpineSegment
	loBytes := d.BytesCopy()
	hiBytes := d.BytesCopy()
	sp.BucketIndex = d.Uvarint()
	sp.NumBuckets = d.Uvarint()
	sp.LeafCount = d.Uvarint()
	pathLen := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode spine segment: %w", d.Err())
	}
	if pathLen > maxProofPath {
		return nil, fmt.Errorf("%w: spine path of %d elements", ErrBadProof, pathLen)
	}
	sp.Path = make([]cryptoutil.Hash, pathLen)
	for i := range sp.Path {
		h, err := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
		if err != nil || d.Err() != nil {
			return nil, fmt.Errorf("decode spine path: %w", ErrBadProof)
		}
		sp.Path[i] = h
	}
	var err error
	if len(loBytes) > 0 {
		if sp.Lo, err = serial.New(loBytes); err != nil {
			return nil, fmt.Errorf("decode spine lower bound: %w", err)
		}
	}
	if len(hiBytes) > 0 {
		if sp.Hi, err = serial.New(hiBytes); err != nil {
			return nil, fmt.Errorf("decode spine upper bound: %w", err)
		}
	}
	return &sp, nil
}
