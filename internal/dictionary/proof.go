package dictionary

import (
	"fmt"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
	"ritm/internal/wire"
)

// ProofKind distinguishes the three shapes a dictionary proof can take.
type ProofKind uint8

// Proof kinds. Values are part of the wire format.
const (
	// ProofPresence proves the serial is revoked (it is a leaf).
	ProofPresence ProofKind = iota + 1
	// ProofAbsence proves the serial is not revoked, by exhibiting the
	// adjacent leaf or leaves that bracket it in sorted order.
	ProofAbsence
	// ProofAbsenceEmpty proves absence trivially: the dictionary is empty.
	ProofAbsenceEmpty
)

// String returns a human-readable kind name.
func (k ProofKind) String() string {
	switch k {
	case ProofPresence:
		return "presence"
	case ProofAbsence:
		return "absence"
	case ProofAbsenceEmpty:
		return "absence-empty"
	default:
		return fmt.Sprintf("ProofKind(%d)", uint8(k))
	}
}

// ProofLeaf is one leaf exhibited by a proof, together with the audit path
// that authenticates it against the signed root.
type ProofLeaf struct {
	Serial serial.Number
	Num    uint64
	Index  uint64
	Path   []cryptoutil.Hash
}

// verify checks the leaf's audit path against root for a tree of size n.
func (pl *ProofLeaf) verify(root cryptoutil.Hash, n uint64) error {
	if pl.Index >= n {
		return fmt.Errorf("%w: leaf index %d outside tree of size %d", ErrBadProof, pl.Index, n)
	}
	h := Leaf{Serial: pl.Serial, Num: pl.Num}.hash()
	idx, size := pl.Index, n
	pi := 0
	for size > 1 {
		if idx%2 == 0 {
			if idx+1 < size {
				if pi >= len(pl.Path) {
					return fmt.Errorf("%w: audit path too short", ErrBadProof)
				}
				h = cryptoutil.HashNode(h, pl.Path[pi])
				pi++
			}
			// Rightmost node of an odd level is promoted unchanged.
		} else {
			if pi >= len(pl.Path) {
				return fmt.Errorf("%w: audit path too short", ErrBadProof)
			}
			h = cryptoutil.HashNode(pl.Path[pi], h)
			pi++
		}
		idx /= 2
		size = (size + 1) / 2
	}
	if pi != len(pl.Path) {
		return fmt.Errorf("%w: audit path has %d extra elements", ErrBadProof, len(pl.Path)-pi)
	}
	if !h.Equal(root) {
		return fmt.Errorf("%w: audit path does not reach root", ErrBadProof)
	}
	return nil
}

// Proof is a presence or absence proof for one serial number against one
// version (root, n) of a dictionary. Proofs are produced by Tree.Prove and
// verified with Proof.Verify; they are sound against any prover, including
// a compromised RA or CDN (§V).
type Proof struct {
	Kind ProofKind
	// Left is the proven leaf for presence proofs, or the predecessor leaf
	// for absence proofs (nil when the serial precedes the whole tree).
	Left *ProofLeaf
	// Right is the successor leaf for absence proofs (nil when the serial
	// follows the whole tree). Unused by presence proofs.
	Right *ProofLeaf
}

// Verify checks that the proof is a valid statement about s in the
// dictionary version committed to by (root, n). On success it returns
// revoked=true for a presence proof and revoked=false for an absence proof.
func (p *Proof) Verify(s serial.Number, root cryptoutil.Hash, n uint64) (revoked bool, err error) {
	switch p.Kind {
	case ProofPresence:
		if p.Left == nil || p.Right != nil {
			return false, fmt.Errorf("%w: malformed presence proof", ErrBadProof)
		}
		if !p.Left.Serial.Equal(s) {
			return false, fmt.Errorf("%w: presence proof is for serial %v, not %v", ErrBadProof, p.Left.Serial, s)
		}
		if err := p.Left.verify(root, n); err != nil {
			return false, err
		}
		return true, nil

	case ProofAbsenceEmpty:
		if p.Left != nil || p.Right != nil {
			return false, fmt.Errorf("%w: malformed empty-tree proof", ErrBadProof)
		}
		if n != 0 || !root.Equal(EmptyRoot) {
			return false, fmt.Errorf("%w: empty-tree proof against non-empty dictionary", ErrBadProof)
		}
		return false, nil

	case ProofAbsence:
		return false, p.verifyAbsence(s, root, n)

	default:
		return false, fmt.Errorf("%w: unknown proof kind %d", ErrBadProof, p.Kind)
	}
}

func (p *Proof) verifyAbsence(s serial.Number, root cryptoutil.Hash, n uint64) error {
	if n == 0 {
		return fmt.Errorf("%w: absence proof against empty dictionary", ErrBadProof)
	}
	switch {
	case p.Left == nil && p.Right == nil:
		return fmt.Errorf("%w: absence proof with no leaves", ErrBadProof)

	case p.Left == nil:
		// s precedes the entire tree: Right must be the first leaf.
		if p.Right.Index != 0 {
			return fmt.Errorf("%w: left-boundary proof not anchored at index 0", ErrBadProof)
		}
		if s.Compare(p.Right.Serial) >= 0 {
			return fmt.Errorf("%w: serial %v not below first leaf %v", ErrBadProof, s, p.Right.Serial)
		}
		return p.Right.verify(root, n)

	case p.Right == nil:
		// s follows the entire tree: Left must be the last leaf.
		if p.Left.Index != n-1 {
			return fmt.Errorf("%w: right-boundary proof not anchored at index n-1", ErrBadProof)
		}
		if s.Compare(p.Left.Serial) <= 0 {
			return fmt.Errorf("%w: serial %v not above last leaf %v", ErrBadProof, s, p.Left.Serial)
		}
		return p.Left.verify(root, n)

	default:
		// s falls strictly between two leaves that must be adjacent.
		if p.Right.Index != p.Left.Index+1 {
			return fmt.Errorf("%w: absence leaves not adjacent (%d, %d)", ErrBadProof, p.Left.Index, p.Right.Index)
		}
		if p.Left.Serial.Compare(s) >= 0 || s.Compare(p.Right.Serial) >= 0 {
			return fmt.Errorf("%w: serial %v not bracketed by (%v, %v)", ErrBadProof, s, p.Left.Serial, p.Right.Serial)
		}
		if err := p.Left.verify(root, n); err != nil {
			return err
		}
		return p.Right.verify(root, n)
	}
}

// Size returns the encoded size of the proof in bytes; the paper reports
// 500–900 bytes for the largest CRL observed (§VII-D).
func (p *Proof) Size() int { return len(p.Encode()) }

// Encode serializes the proof.
func (p *Proof) Encode() []byte {
	e := wire.NewEncoder(256)
	p.encodeTo(e)
	return e.Bytes()
}

func (p *Proof) encodeTo(e *wire.Encoder) {
	e.Uint8(uint8(p.Kind))
	encodeProofLeaf(e, p.Left)
	encodeProofLeaf(e, p.Right)
}

func encodeProofLeaf(e *wire.Encoder, pl *ProofLeaf) {
	if pl == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.BytesField(pl.Serial.Raw())
	e.Uvarint(pl.Num)
	e.Uvarint(pl.Index)
	e.Uvarint(uint64(len(pl.Path)))
	for _, h := range pl.Path {
		e.Raw(h[:])
	}
}

// DecodeProof parses a proof encoded by Encode.
func DecodeProof(buf []byte) (*Proof, error) {
	d := wire.NewDecoder(buf)
	p, err := decodeProofFrom(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode proof: %w", err)
	}
	return p, nil
}

func decodeProofFrom(d *wire.Decoder) (*Proof, error) {
	var p Proof
	p.Kind = ProofKind(d.Uint8())
	var err error
	if p.Left, err = decodeProofLeaf(d); err != nil {
		return nil, err
	}
	if p.Right, err = decodeProofLeaf(d); err != nil {
		return nil, err
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("decode proof: %w", d.Err())
	}
	return &p, nil
}

func decodeProofLeaf(d *wire.Decoder) (*ProofLeaf, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	var pl ProofLeaf
	serialBytes := d.BytesCopy()
	pl.Num = d.Uvarint()
	pl.Index = d.Uvarint()
	pathLen := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode proof leaf: %w", d.Err())
	}
	const maxPath = 64 // a dictionary of 2⁶⁴ leaves; far beyond any real tree
	if pathLen > maxPath {
		return nil, fmt.Errorf("%w: audit path of %d elements", ErrBadProof, pathLen)
	}
	pl.Path = make([]cryptoutil.Hash, pathLen)
	for i := range pl.Path {
		h, err := cryptoutil.HashFromBytes(d.Raw(cryptoutil.HashSize))
		if err != nil || d.Err() != nil {
			return nil, fmt.Errorf("decode proof leaf path: %w", ErrBadProof)
		}
		pl.Path[i] = h
	}
	s, err := serial.New(serialBytes)
	if err != nil {
		return nil, fmt.Errorf("decode proof leaf serial: %w", err)
	}
	pl.Serial = s
	return &pl, nil
}
