package dictionary

import (
	"fmt"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// Snapshot is one immutable, self-contained version of a replicated
// dictionary: the frozen proving view of the commitment layout (sorted
// leaves and levels, or forest buckets and spine), the signed root it
// verifies against, and the freshness statement for the period the snapshot
// was published in. A Replica publishes a new Snapshot atomically after
// every verified update or freshness refresh; readers obtain one with
// Replica.Snapshot and may then call Prove, Revoked, and the accessors with
// zero locking, forever — the arrays are never written again (the layouts'
// copy-on-write rebuild guarantees it).
//
// The paper's observation that makes snapshots worthwhile (§III, §VI): a
// revocation status is immutable for a whole ∆ window. Proof, signed root,
// and freshness statement only change when a new root or freshness
// statement arrives, so one Generation value summarizes everything a
// status depends on. Caches key on (CA, serial) and compare generations:
// equal generation ⇒ byte-identical status.
type Snapshot struct {
	ca        CAID
	view      LayoutView
	log       []serial.Number // issuance order, length == Count(); immutable
	bounds    []uint64        // batch structure of the history; immutable
	root      *SignedRoot     // nil until the replica's first verified update
	rootEnc   []byte          // memoized root encoding; spliced into statuses
	freshness cryptoutil.Hash
	freshPer  int    // period the freshness value was verified for
	gen       uint64 // publication counter; strictly increasing per replica
}

// newSnapshot freezes the tree's current version together with the
// authentication state. The caller (Replica) must hold its writer lock so
// that tree, root, and freshness are mutually consistent. The log slice is
// shared with the tree: InsertBatch only ever appends (and a failed-update
// rollback replaces the whole array), so the first Count() elements this
// header covers are never written again.
func newSnapshot(ca CAID, t *Tree, root *SignedRoot, freshness cryptoutil.Hash, freshPer int, gen uint64) *Snapshot {
	s := &Snapshot{
		ca:        ca,
		view:      t.view(),
		log:       t.log,
		bounds:    t.bounds,
		root:      root,
		freshness: freshness,
		freshPer:  freshPer,
		gen:       gen,
	}
	if root != nil {
		// Encode the root once per publication: every status proved from
		// this snapshot splices these bytes instead of re-encoding the
		// (immutable) root per call.
		s.rootEnc = root.Encode()
	}
	return s
}

// CA returns the CA whose dictionary the snapshot belongs to.
func (s *Snapshot) CA() CAID { return s.ca }

// Generation returns the snapshot's publication counter. Generations are
// strictly increasing per replica; two statuses proved from snapshots of
// equal generation are identical, which is the cache-invalidation contract
// the RA's status cache builds on.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Root returns the signed root the snapshot's proofs verify against, or
// nil for the initial (never-updated) snapshot.
func (s *Snapshot) Root() *SignedRoot { return s.root }

// Freshness returns the freshness-statement value current at publication.
func (s *Snapshot) Freshness() cryptoutil.Hash { return s.freshness }

// FreshnessPeriod returns the period index the freshness value was
// verified for.
func (s *Snapshot) FreshnessPeriod() int { return s.freshPer }

// Count returns the number of revocations in the snapshot.
func (s *Snapshot) Count() uint64 { return uint64(len(s.log)) }

// RootHash returns the tree root hash of the snapshot.
func (s *Snapshot) RootHash() cryptoutil.Hash { return s.view.Root() }

// Log returns a copy of the issuance-ordered serial log of this version.
func (s *Snapshot) Log() []serial.Number {
	return append([]serial.Number(nil), s.log...)
}

// LogSuffix returns the serials with revocation numbers in (from, to] of
// this version, lock-free: the dissemination network serves catch-up
// suffixes from the same frozen version as the signed root and freshness
// statement, so a response can never tear across a concurrent update.
//
// Aliasing contract: the result is a capacity-clipped sub-slice of the
// snapshot's log, not a copy. The snapshot was taken at a published state
// — a rollback never rewinds below it, and appends only write positions
// past its length — so every position the suffix covers is frozen forever
// (same contract as Tree.LogSuffix).
func (s *Snapshot) LogSuffix(from, to uint64) ([]serial.Number, error) {
	if from > to || to > uint64(len(s.log)) {
		return nil, fmt.Errorf("dictionary: log suffix (%d, %d] of %d", from, to, len(s.log))
	}
	return s.log[from:to:to], nil
}

// BatchBounds returns the cumulative counts strictly inside (from, to) at
// which this version's insertion batches ended. The dissemination network
// serves them alongside a log suffix so the puller can replay the suffix
// under the origin's batch structure — which the forest layout's
// bucketization (and so its root) depends on. The result is freshly
// allocated.
func (s *Snapshot) BatchBounds(from, to uint64) []uint64 {
	var out []uint64
	for _, b := range s.bounds {
		if b > from && b < to {
			out = append(out, b)
		}
	}
	return out
}

// Batches returns the full batch-structure record of this version: the
// cumulative count at the end of each insertion batch, newest last (empty
// for an empty dictionary). Checkpoints persist it so a restore rebuilds
// the exact commitment structure. The result is freshly allocated.
func (s *Snapshot) Batches() []uint64 {
	return append([]uint64(nil), s.bounds...)
}

// Revoked reports whether sn is revoked in this version.
func (s *Snapshot) Revoked(sn serial.Number) bool {
	_, ok := s.view.Revoked(sn)
	return ok
}

// Prove produces the revocation status for sn (Fig 2, prove) from the
// frozen version: presence/absence proof, signed root, and freshness
// statement. It takes no locks and allocates only the proof itself. It
// fails with ErrDesynchronized on the initial snapshot, before the
// replica's first verified update.
func (s *Snapshot) Prove(sn serial.Number) (*Status, error) {
	if s.root == nil {
		return nil, fmt.Errorf("%w: replica has no signed root", ErrDesynchronized)
	}
	return &Status{
		Proof:     s.view.Prove(sn),
		Root:      s.root,
		Freshness: s.freshness,
		rootEnc:   s.rootEnc,
	}, nil
}
