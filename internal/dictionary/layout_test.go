package dictionary

import (
	"errors"
	"math/rand/v2"
	"testing"

	"ritm/internal/serial"
	"ritm/internal/workload"
)

// forestTree returns an empty forest-layout tree.
func forestTree() *Tree { return NewTreeWithLayout(LayoutForest) }

func TestParseLayout(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want LayoutKind
		ok   bool
	}{
		{"sorted", LayoutSorted, true},
		{"forest", LayoutForest, true},
		{"", LayoutSorted, true},
		{"btree", 0, false},
	} {
		got, err := ParseLayout(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseLayout(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseLayout(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if err == nil && got.String() != tc.in && tc.in != "" {
			t.Errorf("round trip: %v.String() = %q", got, got.String())
		}
	}
}

func TestForestEmptyTree(t *testing.T) {
	tree := forestTree()
	if tree.Root() != EmptyRoot {
		t.Errorf("empty forest root = %v, want EmptyRoot", tree.Root())
	}
	p := tree.Prove(serial.FromUint64(5))
	if p.Kind != ProofAbsenceEmpty {
		t.Fatalf("Prove on empty forest: kind = %v", p.Kind)
	}
	revoked, err := p.Verify(serial.FromUint64(5), tree.Root(), tree.Count())
	if err != nil || revoked {
		t.Fatalf("empty forest proof: revoked=%v err=%v", revoked, err)
	}
}

// TestForestProveAllSizes crosses several bucket-split boundaries and
// verifies every presence proof plus absence proofs in each gap region.
func TestForestProveAllSizes(t *testing.T) {
	for _, size := range []int{1, 2, DefaultForestBucketCap - 1, DefaultForestBucketCap, DefaultForestBucketCap + 1, 3 * DefaultForestBucketCap, 1000} {
		tree := forestTree()
		serials := make([]serial.Number, size)
		for i := range serials {
			serials[i] = serial.FromUint64(uint64(i*10 + 5))
		}
		// Insert in a few batches so merges hit existing buckets too.
		for start := 0; start < size; start += 300 {
			end := min(start+300, size)
			if err := tree.InsertBatch(serials[start:end]); err != nil {
				t.Fatal(err)
			}
		}
		root, n := tree.Root(), tree.Count()
		for i, s := range serials {
			p := tree.Prove(s)
			if p.Kind != ProofPresence || p.Spine == nil {
				t.Fatalf("size %d: Prove(%v) kind=%v spine=%v", size, s, p.Kind, p.Spine != nil)
			}
			revoked, err := p.Verify(s, root, n)
			if err != nil || !revoked {
				t.Fatalf("size %d leaf %d: revoked=%v err=%v", size, i, revoked, err)
			}
		}
		for _, v := range []uint64{1, 6, 23, uint64(size)*10 + 6, uint64(size) * 1000} {
			s := serial.FromUint64(v)
			if _, present := tree.Revoked(s); present {
				continue
			}
			p := tree.Prove(s)
			if p.Kind != ProofAbsence || p.Spine == nil {
				t.Fatalf("size %d: absence Prove(%d) kind=%v spine=%v", size, v, p.Kind, p.Spine != nil)
			}
			revoked, err := p.Verify(s, root, n)
			if err != nil || revoked {
				t.Fatalf("size %d: absence of %d: revoked=%v err=%v", size, v, revoked, err)
			}
		}
	}
}

// TestForestBucketInvariants checks the structural contract the absence
// proofs rely on: buckets tile the serial space contiguously, stay within
// capacity, keep sorted in-range leaves, and the spine mirrors the bucket
// commitments.
func TestForestBucketInvariants(t *testing.T) {
	tree := forestTree()
	gen := serial.NewGenerator(0xF02E57, nil)
	for i := 0; i < 40; i++ {
		if err := tree.InsertBatch(gen.NextN(100)); err != nil {
			t.Fatal(err)
		}
	}
	f := tree.commit.(*forestLayout)
	if len(f.buckets) < 2 {
		t.Fatalf("expected splits, got %d buckets", len(f.buckets))
	}
	if !f.buckets[0].lo.IsZero() {
		t.Error("first bucket must be unbounded below")
	}
	if !f.buckets[len(f.buckets)-1].hi.IsZero() {
		t.Error("last bucket must be unbounded above")
	}
	total := 0
	for i, b := range f.buckets {
		if len(b.tree.leaves) == 0 {
			t.Fatalf("bucket %d is empty", i)
		}
		if len(b.tree.leaves) > DefaultForestBucketCap {
			t.Fatalf("bucket %d holds %d leaves, cap %d", i, len(b.tree.leaves), DefaultForestBucketCap)
		}
		total += len(b.tree.leaves)
		if i > 0 && !f.buckets[i-1].hi.Equal(b.lo) {
			t.Fatalf("buckets %d/%d do not tile: hi=%v lo=%v", i-1, i, f.buckets[i-1].hi, b.lo)
		}
		for j, lf := range b.tree.leaves {
			if !b.lo.IsZero() && b.lo.Compare(lf.Serial) > 0 {
				t.Fatalf("bucket %d leaf %d below lo", i, j)
			}
			if !b.hi.IsZero() && lf.Serial.Compare(b.hi) >= 0 {
				t.Fatalf("bucket %d leaf %d at/above hi", i, j)
			}
			if j > 0 && b.tree.leaves[j-1].Serial.Compare(lf.Serial) >= 0 {
				t.Fatalf("bucket %d unsorted at %d", i, j)
			}
		}
		if !f.spine[0][i].Equal(b.node) {
			t.Fatalf("spine[0][%d] does not match bucket node", i)
		}
	}
	if total != int(tree.Count()) {
		t.Fatalf("buckets hold %d leaves, tree count %d", total, tree.Count())
	}
}

// TestCrossLayoutAgreement is the cross-layout property test: over random
// issuance logs drawn from the workload corpus, both layouts agree on
// Revoked for present and absent serials, every proof verifies against its
// own layout's root — and never against the other layout's.
func TestCrossLayoutAgreement(t *testing.T) {
	corpus := workload.NewCorpus(0xD1C7)
	rng := rand.New(rand.NewPCG(41, 43))
	tested := 0
	for i := 0; i < corpus.Len() && tested < 3; i++ {
		if corpus.Size(i) > 4000 || corpus.Size(i) < 50 {
			continue
		}
		tested++
		log := corpus.Serials(i)
		sorted := NewTree()
		forest := forestTree()
		// Replay the same issuance history in identical random batches.
		for start := 0; start < len(log); {
			end := min(start+1+rng.IntN(400), len(log))
			if err := sorted.InsertBatch(log[start:end]); err != nil {
				t.Fatal(err)
			}
			if err := forest.InsertBatch(log[start:end]); err != nil {
				t.Fatal(err)
			}
			start = end
		}
		if sorted.Count() != forest.Count() {
			t.Fatalf("crl %d: counts differ: %d vs %d", i, sorted.Count(), forest.Count())
		}
		if sorted.Root().Equal(forest.Root()) {
			t.Fatalf("crl %d: layouts share a root; domain separation broken", i)
		}
		queries := make([]serial.Number, 0, 192)
		for j := 0; j < 128; j++ {
			queries = append(queries, log[rng.IntN(len(log))])
		}
		queries = append(queries, corpus.SampleAbsent(i, 64)...)
		for _, q := range queries {
			sNum, sOK := sorted.Revoked(q)
			fNum, fOK := forest.Revoked(q)
			if sOK != fOK || sNum != fNum {
				t.Fatalf("crl %d: layouts disagree on %v: (%d,%v) vs (%d,%v)", i, q, sNum, sOK, fNum, fOK)
			}
			sp, fp := sorted.Prove(q), forest.Prove(q)
			sRev, err := sp.Verify(q, sorted.Root(), sorted.Count())
			if err != nil || sRev != sOK {
				t.Fatalf("crl %d: sorted proof for %v: revoked=%v err=%v", i, q, sRev, err)
			}
			fRev, err := fp.Verify(q, forest.Root(), forest.Count())
			if err != nil || fRev != fOK {
				t.Fatalf("crl %d: forest proof for %v: revoked=%v err=%v", i, q, fRev, err)
			}
			// Cross-verification must fail: roots are layout-specific.
			if _, err := sp.Verify(q, forest.Root(), forest.Count()); err == nil {
				t.Fatalf("crl %d: sorted proof verified against forest root", i)
			}
			if _, err := fp.Verify(q, sorted.Root(), sorted.Count()); err == nil {
				t.Fatalf("crl %d: forest proof verified against sorted root", i)
			}
			// And both proofs survive a wire round trip.
			decoded, err := DecodeProof(fp.Encode())
			if err != nil {
				t.Fatalf("crl %d: decode forest proof: %v", i, err)
			}
			if rev, err := decoded.Verify(q, forest.Root(), forest.Count()); err != nil || rev != fOK {
				t.Fatalf("crl %d: decoded forest proof: revoked=%v err=%v", i, rev, err)
			}
		}
	}
	if tested == 0 {
		t.Fatal("corpus provided no CRLs in the tested size band")
	}
}

// TestForestProofTampering drives the forest-specific forgery vectors: a
// bucket-range violation (absence claimed from the wrong bucket), spine
// tampering, and count lies.
func TestForestProofTampering(t *testing.T) {
	tree := forestTree()
	gen := serial.NewGenerator(0x7A3, nil)
	if err := tree.InsertBatch(gen.NextN(1000)); err != nil {
		t.Fatal(err)
	}
	root, n := tree.Root(), tree.Count()
	f := tree.commit.(*forestLayout)
	if len(f.buckets) < 3 {
		t.Fatalf("need ≥3 buckets, got %d", len(f.buckets))
	}

	// A revoked serial from the middle of bucket 2.
	b2 := f.buckets[2]
	victim := b2.tree.leaves[len(b2.tree.leaves)/2].Serial

	t.Run("absence from another bucket rejected by range", func(t *testing.T) {
		// Genuine right-boundary absence machinery of bucket 1, replayed as
		// an absence claim for the victim (which lives in bucket 2): the
		// committed range check must catch it.
		b1 := f.buckets[1]
		view := tree.view().(forestView)
		last := len(b1.tree.leaves) - 1
		forged := &Proof{
			Kind: ProofAbsence,
			Left: b1.tree.proofLeaf(last),
			Spine: &SpineSegment{
				BucketIndex: 1,
				NumBuckets:  uint64(len(f.buckets)),
				LeafCount:   uint64(len(b1.tree.leaves)),
				Lo:          b1.lo,
				Hi:          b1.hi,
				Path:        pathAt(view.spine, 1),
			},
		}
		if _, err := forged.Verify(victim, root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("cross-bucket absence accepted: err = %v", err)
		}
	})

	t.Run("widened bucket range rejected by spine", func(t *testing.T) {
		// Same forgery but lying about the bucket's range so the range check
		// passes: the bucket commitment hash then differs, so the spine walk
		// cannot reach the signed root.
		b1 := f.buckets[1]
		view := tree.view().(forestView)
		forged := &Proof{
			Kind: ProofAbsence,
			Left: b1.tree.proofLeaf(len(b1.tree.leaves) - 1),
			Spine: &SpineSegment{
				BucketIndex: 1,
				NumBuckets:  uint64(len(f.buckets)),
				LeafCount:   uint64(len(b1.tree.leaves)),
				Lo:          b1.lo,
				Hi:          serial.Number{}, // lie: pretend unbounded above
				Path:        pathAt(view.spine, 1),
			},
		}
		if _, err := forged.Verify(victim, root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("range-widened absence accepted: err = %v", err)
		}
	})

	t.Run("tampered spine path", func(t *testing.T) {
		p := tree.Prove(victim)
		if len(p.Spine.Path) == 0 {
			t.Skip("single-bucket spine")
		}
		p.Spine.Path[0][0] ^= 1
		if _, err := p.Verify(victim, root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("tampered spine accepted: err = %v", err)
		}
	})

	t.Run("wrong bucket index", func(t *testing.T) {
		p := tree.Prove(victim)
		p.Spine.BucketIndex ^= 1
		if _, err := p.Verify(victim, root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("relocated bucket accepted: err = %v", err)
		}
	})

	t.Run("wrong bucket count", func(t *testing.T) {
		p := tree.Prove(victim)
		p.Spine.NumBuckets++
		if _, err := p.Verify(victim, root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("bucket-count lie accepted: err = %v", err)
		}
	})

	t.Run("wrong leaf count", func(t *testing.T) {
		p := tree.Prove(victim)
		p.Spine.LeafCount++
		if _, err := p.Verify(victim, root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("leaf-count lie accepted: err = %v", err)
		}
	})

	t.Run("spine on empty-tree proof", func(t *testing.T) {
		p := &Proof{Kind: ProofAbsenceEmpty, Spine: &SpineSegment{NumBuckets: 1, LeafCount: 1}}
		if _, err := p.Verify(victim, root, n); !errors.Is(err, ErrBadProof) {
			t.Errorf("spined empty proof accepted: err = %v", err)
		}
	})
}

// TestForestAuthorityReplicaEndToEnd runs the Fig 2 loop on the forest
// layout: authority inserts, replica replays and matches the signed root,
// statuses check under the CA key.
func TestForestAuthorityReplicaEndToEnd(t *testing.T) {
	a := newTestAuthorityWithLayout(t, 7, LayoutForest)
	r := NewReplicaWithLayout(a.CA(), a.PublicKey(), LayoutForest)
	if r.Layout() != LayoutForest {
		t.Fatal("replica lost its layout")
	}
	gen := serial.NewGenerator(99, nil)
	var revoked []serial.Number
	for i := 0; i < 8; i++ {
		batch := gen.NextN(150)
		revoked = append(revoked, batch...)
		msg, err := a.Insert(batch, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(msg); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	now := int64(9)
	for _, s := range []serial.Number{revoked[0], revoked[len(revoked)-1], gen.Next()} {
		st, err := r.Prove(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Check(s, a.PublicKey(), now)
		if err != nil {
			t.Fatalf("Check(%v): %v", s, err)
		}
		_, isRevoked := r.Snapshot().view.Revoked(s)
		if isRevoked && res != CheckRevoked || !isRevoked && res != CheckValid {
			t.Fatalf("Check(%v) = %v, revoked=%v", s, res, isRevoked)
		}
	}
}

// TestForestReplicaRollback feeds a forest replica an issuance message whose
// signed root lies about the content: the update must be rejected and the
// replica left exactly at its previous (published) state — the
// checkpoint/rollback path that replaced the full log replay.
func TestForestReplicaRollback(t *testing.T) {
	for _, kind := range Layouts() {
		t.Run(kind.String(), func(t *testing.T) {
			a := newTestAuthorityWithLayout(t, 3, kind)
			r := NewReplicaWithLayout(a.CA(), a.PublicKey(), kind)
			gen := serial.NewGenerator(17, nil)
			msg, err := a.Insert(gen.NextN(600), 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Update(msg); err != nil {
				t.Fatal(err)
			}
			before := r.Snapshot()
			rootBefore, genBefore := before.RootHash(), before.Generation()

			// A validly signed root over DIFFERENT content: replaying the
			// message's serials cannot reproduce it.
			evil, err := a.Insert(gen.NextN(5), 2)
			if err != nil {
				t.Fatal(err)
			}
			forged := &IssuanceMessage{Serials: gen.NextN(5), Root: evil.Root}
			if err := r.Update(forged); !errors.Is(err, ErrRootMismatch) {
				t.Fatalf("forged update: err = %v, want ErrRootMismatch", err)
			}
			after := r.Snapshot()
			if after.Generation() != genBefore {
				t.Error("rejected update published a snapshot")
			}
			if !after.RootHash().Equal(rootBefore) {
				t.Error("rollback did not restore the tree root")
			}
			for _, s := range forged.Serials {
				if r.Revoked(s) {
					t.Errorf("serial %v from the rejected batch is present", s)
				}
			}
			// The replica must accept the honest continuation: state,
			// serial index, and log all rewound correctly.
			if err := r.Update(evil); err != nil {
				t.Fatalf("honest update after rollback: %v", err)
			}
			if !r.Snapshot().RootHash().Equal(evil.Root.Root) {
				t.Error("post-rollback update did not converge to the signed root")
			}
		})
	}
}

// TestForestUniformInsertHashingAdvantage pins the tentpole claim at the
// paper's largest-CRL size: uniform-serial ∆ batches must cost the forest
// layout at least 10× fewer hash computations per cycle than the sorted
// layout (which rehashes O(n) per uniform batch).
func TestForestUniformInsertHashingAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("339k-entry corpus build in -short mode")
	}
	const n = 339_557 // workload.LargestCRLEntries
	const cycles, batch = 4, 64
	gen := serial.NewGenerator(0xBEEF, nil)
	corpus := gen.NextN(n)
	perCycle := make(map[LayoutKind]uint64)
	for _, kind := range Layouts() {
		tree := NewTreeWithLayout(kind)
		if err := tree.InsertBatch(corpus); err != nil {
			t.Fatal(err)
		}
		start := tree.HashedNodes()
		for c := 0; c < cycles; c++ {
			if err := tree.InsertBatch(gen.NextN(batch)); err != nil {
				t.Fatal(err)
			}
		}
		perCycle[kind] = (tree.HashedNodes() - start) / cycles
	}
	t.Logf("hashed nodes per uniform %d-insert cycle at n=%d: sorted=%d forest=%d (%.1fx)",
		batch, n, perCycle[LayoutSorted], perCycle[LayoutForest],
		float64(perCycle[LayoutSorted])/float64(perCycle[LayoutForest]))
	if perCycle[LayoutForest]*10 > perCycle[LayoutSorted] {
		t.Errorf("forest advantage below 10x: sorted=%d forest=%d",
			perCycle[LayoutSorted], perCycle[LayoutForest])
	}
}
