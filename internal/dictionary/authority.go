package dictionary

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
	"sync"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// DefaultChainLength is the default freshness-chain length m. With
// ∆ = 10 s a chain of 8,640 periods lasts one day before the CA must sign a
// fresh root; with ∆ = 1 h it lasts almost a year. The value of m is a CA
// parameter per Fig 2 ("m: parameter chosen by CA").
const DefaultChainLength = 8640

// AuthorityConfig configures a CA-side dictionary.
type AuthorityConfig struct {
	// CA is the dictionary's identity, carried in every signed root.
	CA CAID
	// Signer is the CA's Ed25519 identity.
	Signer *cryptoutil.Signer
	// Delta is the dissemination interval ∆.
	Delta time.Duration
	// ChainLength is m, the number of freshness periods one signed root
	// supports. Zero selects DefaultChainLength.
	ChainLength int
	// Layout selects the dictionary's commitment structure (zero value:
	// LayoutSorted). Every replica of this dictionary must be configured
	// with the same layout — roots are layout-specific, and the Fig 2
	// signed-root match contract is evaluated against a local rebuild.
	Layout LayoutKind
	// Rand is the randomness source for hash-chain seeds; nil selects
	// crypto/rand.Reader. Tests inject deterministic readers.
	Rand io.Reader
}

func (c *AuthorityConfig) validate() error {
	if c.CA == "" {
		return fmt.Errorf("dictionary: authority config missing CA id")
	}
	if c.Signer == nil {
		return fmt.Errorf("dictionary: authority config missing signer")
	}
	if c.Delta < time.Second {
		return fmt.Errorf("dictionary: ∆ = %v, must be at least one second", c.Delta)
	}
	if c.ChainLength < 0 {
		return fmt.Errorf("dictionary: negative chain length %d", c.ChainLength)
	}
	return nil
}

// Authority is the CA side of a dictionary: it owns the tree, the signing
// key, and the freshness chain, and implements the insert and refresh
// operations of Fig 2. Authority is safe for concurrent use.
type Authority struct {
	cfg AuthorityConfig

	mu    sync.Mutex
	tree  *Tree
	chain *cryptoutil.Chain
	root  *SignedRoot
}

// NewAuthority creates a CA-side dictionary, signing an initial (empty)
// root at time now.
func NewAuthority(cfg AuthorityConfig, now int64) (*Authority, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ChainLength == 0 {
		cfg.ChainLength = DefaultChainLength
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	a := &Authority{cfg: cfg, tree: NewTreeWithLayout(cfg.Layout)}
	if err := a.rotateChainAndSign(now); err != nil {
		return nil, err
	}
	return a, nil
}

// CA returns the dictionary's CA identifier.
func (a *Authority) CA() CAID { return a.cfg.CA }

// PublicKey returns the CA's verification key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.cfg.Signer.Public() }

// Delta returns the CA's dissemination interval ∆.
func (a *Authority) Delta() time.Duration { return a.cfg.Delta }

// Layout returns the dictionary's commitment layout.
func (a *Authority) Layout() LayoutKind { return a.cfg.Layout }

// HashedNodes returns the cumulative hash computations the dictionary has
// performed across inserts — the per-∆-cycle cost the layout ablation
// tracks.
func (a *Authority) HashedNodes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tree.HashedNodes()
}

// Count returns the number of revocations issued so far.
func (a *Authority) Count() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tree.Count()
}

// SignedRoot returns the latest signed root.
func (a *Authority) SignedRoot() *SignedRoot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.root
}

// rotateChainAndSign draws a fresh chain seed (Fig 2 insert step 2) and
// signs a root for the current tree at time now. Caller must hold mu or be
// the constructor.
func (a *Authority) rotateChainAndSign(now int64) error {
	chain, err := cryptoutil.NewChain(a.cfg.Rand, a.cfg.ChainLength)
	if err != nil {
		return fmt.Errorf("rotate freshness chain: %w", err)
	}
	a.chain = chain
	root := &SignedRoot{
		CA:        a.cfg.CA,
		Root:      a.tree.Root(),
		N:         a.tree.Count(),
		Anchor:    chain.Anchor(),
		Time:      now,
		ChainLen:  uint32(a.cfg.ChainLength),
		DeltaSecs: uint32(a.cfg.Delta / time.Second),
	}
	root.sign(a.cfg.Signer)
	a.root = root
	return nil
}

// Insert revokes the given serials as one batch (Fig 2, insert): it inserts
// them into the tree, rebuilds it, rotates the freshness chain, and returns
// the issuance message (serials + new signed root) for dissemination.
func (a *Authority) Insert(serials []serial.Number, now int64) (*IssuanceMessage, error) {
	if len(serials) == 0 {
		return nil, fmt.Errorf("dictionary: empty revocation batch")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.tree.InsertBatch(serials); err != nil {
		return nil, err
	}
	if err := a.rotateChainAndSign(now); err != nil {
		return nil, err
	}
	batch := make([]serial.Number, len(serials))
	copy(batch, serials)
	return &IssuanceMessage{Serials: batch, Root: a.root}, nil
}

// Refresh is Fig 2's refresh operation, executed at least every ∆ when no
// new revocation was issued. While the chain lasts (p < m) it returns the
// freshness statement H^{m−p}(v); once exhausted it signs a fresh root with
// a new chain and returns that instead.
type Refresh struct {
	// Statement is non-nil when the existing root is still serviceable.
	Statement *FreshnessStatement
	// NewRoot is non-nil when the chain was exhausted and a new signed root
	// (with its period-0 statement in Statement) replaces the old one.
	NewRoot *SignedRoot
}

// Refresh produces the dissemination payload for the current period.
func (a *Authority) Refresh(now int64) (*Refresh, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.root.Period(now)
	if p < int(a.root.ChainLen) {
		v, err := a.chain.Value(p)
		if err != nil {
			return nil, fmt.Errorf("refresh %s: %w", a.cfg.CA, err)
		}
		return &Refresh{Statement: &FreshnessStatement{CA: a.cfg.CA, Value: v}}, nil
	}
	// p ≥ m: the chain is exhausted; sign a new root (refresh step 3).
	if err := a.rotateChainAndSign(now); err != nil {
		return nil, err
	}
	return &Refresh{
		Statement: &FreshnessStatement{CA: a.cfg.CA, Value: a.chain.Anchor()},
		NewRoot:   a.root,
	}, nil
}

// Statement returns the freshness statement for time now without rotating
// anything; it fails if the chain is exhausted.
func (a *Authority) Statement(now int64) (*FreshnessStatement, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, err := a.chain.Value(a.root.Period(now))
	if err != nil {
		return nil, fmt.Errorf("statement %s: %w", a.cfg.CA, err)
	}
	return &FreshnessStatement{CA: a.cfg.CA, Value: v}, nil
}

// Prove produces a revocation status directly from the authority's own
// dictionary. CAs are provers too (the RA is simply the usual one); this is
// used by tests and by the OCSP-style baseline comparison.
func (a *Authority) Prove(s serial.Number, now int64) (*Status, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, err := a.chain.Value(a.root.Period(now))
	if err != nil {
		return nil, fmt.Errorf("prove %s: %w", a.cfg.CA, err)
	}
	return &Status{Proof: a.tree.Prove(s), Root: a.root, Freshness: v}, nil
}

// Revoked reports whether the authority has revoked s.
func (a *Authority) Revoked(s serial.Number) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.tree.Revoked(s)
	return ok
}

// LogSuffix exposes the issuance log range (from, to] for the distribution
// point's synchronization endpoint.
func (a *Authority) LogSuffix(from, to uint64) ([]serial.Number, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tree.LogSuffix(from, to)
}

// SerializedSize reports the canonical serialized size of the dictionary
// (the issuance log), the §VII-D storage-overhead metric.
func (a *Authority) SerializedSize() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tree.SerializedSize()
}

// MemoryFootprint estimates the resident bytes of the dictionary tree.
func (a *Authority) MemoryFootprint() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tree.MemoryFootprint()
}
