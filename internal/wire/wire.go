// Package wire implements the deterministic binary encoding used by every
// RITM message that crosses a trust boundary: dictionary roots, proofs,
// freshness statements, certificates, and TLS-sim handshake payloads.
//
// The format is deliberately simple so that two independent implementations
// (CA-side and RA-side) can reproduce byte-identical encodings, which the
// authenticated dictionary requires: an RA accepts an update only if its
// locally rebuilt root equals the CA-signed root, so any encoding ambiguity
// would break synchronization.
//
// Primitives:
//
//   - unsigned integers: unsigned LEB128 (same as encoding/binary varints
//     without the zig-zag step)
//   - byte strings: uvarint length prefix followed by the raw bytes
//   - fixed-width integers: big-endian
//
// Encoder appends to a growing buffer; Decoder is a cursor with a sticky
// error so that callers can decode a whole message and check the error once.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Sticky decoding errors. They are compared with errors.Is by callers that
// need to distinguish truncation from malformed values.
var (
	// ErrTruncated reports that the buffer ended before a value was complete.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrOverflow reports a varint that does not fit in 64 bits.
	ErrOverflow = errors.New("wire: varint overflows 64 bits")
	// ErrTooLong reports a length prefix exceeding the decoder's limit.
	ErrTooLong = errors.New("wire: length prefix exceeds limit")
	// ErrTrailing reports unconsumed bytes after a complete message.
	ErrTrailing = errors.New("wire: trailing bytes after message")
)

// MaxBytesLen caps the length prefix a Decoder will accept for a single
// byte-string field. It exists purely as a safety valve against corrupt or
// hostile length prefixes causing huge allocations; legitimate RITM messages
// are far smaller.
const MaxBytesLen = 1 << 26 // 64 MiB

// Encoder builds a deterministic binary message. The zero value is ready to
// use. Encoder methods never fail: encoding is total over the accepted input
// types.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder whose buffer has the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded message. The returned slice aliases the
// encoder's internal buffer; callers that keep encoding must copy it first.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the encoder so the buffer can be reused.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// encoderPool recycles encoder buffers across hot-path encodings (statuses
// are encoded once per cache miss, proofs once per Size call): the buffer
// grows to the working set's message size once and is then reused, so a
// steady state encodes with a single right-sized output allocation instead
// of one buffer allocation plus O(log size) growth reallocations per call.
var encoderPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, 1024)} },
}

// PooledEncoder returns an empty encoder drawn from a package-level pool.
// The caller must finish with exactly one Finish call and must not retain
// the encoder (or any Bytes alias) afterwards.
func PooledEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// Finish returns a right-sized copy of the encoded message and recycles the
// encoder into the pool. The encoder must not be used after Finish.
func (e *Encoder) Finish() []byte {
	out := append(make([]byte, 0, len(e.buf)), e.buf...)
	encoderPool.Put(e)
	return out
}

// Uvarint appends v as an unsigned LEB128 varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Uint16 appends v big-endian.
func (e *Encoder) Uint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// Uint32 appends v big-endian.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends v big-endian.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends v big-endian as its two's-complement bit pattern. RITM uses
// it for Unix timestamps.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool appends 0x01 for true and 0x00 for false.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Bytes16 appends a byte string with a uvarint length prefix.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends s with a uvarint length prefix.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends b verbatim with no length prefix. Use it only for fixed-width
// fields whose size is implied by the message type.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder is a cursor over an encoded message with a sticky error: after the
// first failure every subsequent read returns a zero value and the error is
// reported by Err. This lets message decoders read all fields linearly and
// validate once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder reading from buf. The decoder does not copy
// buf; byte-string reads alias it unless otherwise documented.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int {
	if d.off > len(d.buf) {
		return 0
	}
	return len(d.buf) - d.off
}

// Finish reports an error if decoding failed or if unread bytes remain.
// Message decoders call it last to enforce canonical encodings.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, d.Remaining())
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint reads an unsigned LEB128 varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrTruncated)
	default:
		d.fail(ErrOverflow)
	}
	return 0
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 1 {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Uint16 reads a big-endian uint16.
func (d *Decoder) Uint16() uint16 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 2 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 4 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Int64 reads a big-endian two's-complement int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool reads a single byte and reports whether it is nonzero. A canonical
// encoder only emits 0 or 1; any nonzero byte is accepted as true to keep
// Bool total, and strict validation belongs to the message layer.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// BytesField reads a uvarint-prefixed byte string. The returned slice
// aliases the decoder's buffer.
func (d *Decoder) BytesField() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		d.fail(fmt.Errorf("%w: %d", ErrTooLong, n))
		return nil
	}
	if uint64(d.Remaining()) < n {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// BytesCopy reads a uvarint-prefixed byte string into fresh storage, for
// callers that retain the value beyond the lifetime of the input buffer.
func (d *Decoder) BytesCopy() []byte {
	b := d.BytesField()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String reads a uvarint-prefixed string. The result copies the bytes, as
// Go strings are immutable.
func (d *Decoder) String() string {
	return string(d.BytesField())
}

// Raw reads exactly n bytes with no length prefix. The returned slice
// aliases the decoder's buffer.
func (d *Decoder) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// RawCopy reads exactly n bytes into fresh storage.
func (d *Decoder) RawCopy(n int) []byte {
	b := d.Raw(n)
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
