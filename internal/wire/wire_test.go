package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder(64)
	e.Uvarint(0)
	e.Uvarint(300)
	e.Uvarint(math.MaxUint64)
	e.Uint8(0xAB)
	e.Uint16(0xBEEF)
	e.Uint32(0xDEADBEEF)
	e.Uint64(0x0102030405060708)
	e.Int64(-42)
	e.Bool(true)
	e.Bool(false)

	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("Uvarint() = %d, want 0", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Errorf("Uvarint() = %d, want 300", got)
	}
	if got := d.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint() = %d, want MaxUint64", got)
	}
	if got := d.Uint8(); got != 0xAB {
		t.Errorf("Uint8() = %#x, want 0xAB", got)
	}
	if got := d.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16() = %#x, want 0xBEEF", got)
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32() = %#x, want 0xDEADBEEF", got)
	}
	if got := d.Uint64(); got != 0x0102030405060708 {
		t.Errorf("Uint64() = %#x", got)
	}
	if got := d.Int64(); got != -42 {
		t.Errorf("Int64() = %d, want -42", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool() = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("Bool() = true, want false")
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish() = %v", err)
	}
}

func TestRoundTripBytesAndString(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
		s    string
	}{
		{name: "empty", b: nil, s: ""},
		{name: "short", b: []byte{1, 2, 3}, s: "abc"},
		{name: "binary", b: []byte{0, 255, 0}, s: "\x00\xff"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewEncoder(0)
			e.BytesField(tt.b)
			e.String(tt.s)

			d := NewDecoder(e.Bytes())
			if got := d.BytesField(); !bytes.Equal(got, tt.b) {
				t.Errorf("BytesField() = %v, want %v", got, tt.b)
			}
			if got := d.String(); got != tt.s {
				t.Errorf("String() = %q, want %q", got, tt.s)
			}
			if err := d.Finish(); err != nil {
				t.Fatalf("Finish() = %v", err)
			}
		})
	}
}

func TestBytesCopyDoesNotAlias(t *testing.T) {
	e := NewEncoder(0)
	e.BytesField([]byte{1, 2, 3})
	buf := e.Bytes()

	d := NewDecoder(buf)
	got := d.BytesCopy()
	buf[1] = 99 // mutate the input; the copy must be unaffected
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("BytesCopy aliases input: got %v", got)
	}
}

func TestTruncatedErrors(t *testing.T) {
	tests := []struct {
		name string
		read func(*Decoder)
	}{
		{"uvarint", func(d *Decoder) { d.Uvarint() }},
		{"uint8", func(d *Decoder) { d.Uint8() }},
		{"uint16", func(d *Decoder) { d.Uint16() }},
		{"uint32", func(d *Decoder) { d.Uint32() }},
		{"uint64", func(d *Decoder) { d.Uint64() }},
		{"bytes", func(d *Decoder) { d.BytesField() }},
		{"raw", func(d *Decoder) { d.Raw(5) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewDecoder(nil)
			tt.read(d)
			if !errors.Is(d.Err(), ErrTruncated) {
				t.Errorf("Err() = %v, want ErrTruncated", d.Err())
			}
		})
	}
}

func TestBytesLengthPrefixTruncated(t *testing.T) {
	// Length prefix says 10 bytes but only 2 follow.
	e := NewEncoder(0)
	e.Uvarint(10)
	e.Raw([]byte{1, 2})
	d := NewDecoder(e.Bytes())
	if got := d.BytesField(); got != nil {
		t.Errorf("BytesField() = %v, want nil", got)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("Err() = %v, want ErrTruncated", d.Err())
	}
}

func TestBytesLengthLimit(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(MaxBytesLen + 1)
	d := NewDecoder(e.Bytes())
	d.BytesField()
	if !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("Err() = %v, want ErrTooLong", d.Err())
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder([]byte{0x01})
	d.Uint64() // fails: truncated
	if d.Err() == nil {
		t.Fatal("expected error after truncated read")
	}
	first := d.Err()
	// Subsequent reads must not clobber the first error or panic.
	d.Uint8()
	d.BytesField()
	if !errors.Is(d.Err(), first) {
		t.Errorf("sticky error replaced: %v != %v", d.Err(), first)
	}
}

func TestFinishTrailing(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	d.Uint8()
	err := d.Finish()
	if !errors.Is(err, ErrTrailing) {
		t.Errorf("Finish() = %v, want ErrTrailing", err)
	}
}

func TestOverflowVarint(t *testing.T) {
	// 11 continuation bytes with high bits set overflow uint64.
	buf := bytes.Repeat([]byte{0xFF}, 11)
	d := NewDecoder(buf)
	d.Uvarint()
	if !errors.Is(d.Err(), ErrOverflow) {
		t.Errorf("Err() = %v, want ErrOverflow", d.Err())
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(7)
	e.Reset()
	if e.Len() != 0 {
		t.Errorf("Len() after Reset = %d, want 0", e.Len())
	}
	e.Uint8(9)
	if !bytes.Equal(e.Bytes(), []byte{9}) {
		t.Errorf("Bytes() = %v, want [9]", e.Bytes())
	}
}

// Property: any (uint64, []byte, string) tuple round-trips through the
// encoder and decoder unchanged, and the decoder consumes the whole buffer.
func TestQuickRoundTrip(t *testing.T) {
	f := func(v uint64, b []byte, s string, x uint16) bool {
		e := NewEncoder(0)
		e.Uvarint(v)
		e.BytesField(b)
		e.String(s)
		e.Uint16(x)

		d := NewDecoder(e.Bytes())
		gv := d.Uvarint()
		gb := d.BytesField()
		gs := d.String()
		gx := d.Uint16()
		if err := d.Finish(); err != nil {
			return false
		}
		return gv == v && bytes.Equal(gb, b) && gs == s && gx == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary junk never panics and either fails or leaves
// a consistent remaining count.
func TestQuickDecodeJunkNoPanic(t *testing.T) {
	f := func(junk []byte) bool {
		d := NewDecoder(junk)
		d.Uvarint()
		d.BytesField()
		d.Uint32()
		_ = d.String()
		_ = d.Finish()
		return d.Remaining() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
