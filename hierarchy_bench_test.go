// Hierarchy benchmarks: the two-tier dissemination topology (regions ×
// PoPs) under a full RA fleet. The contract being measured is the fan-out
// arithmetic of §VI: per ∆ cycle the origin sees at most one pull per
// REGIONAL edge — origin load O(regions), independent of PoP count and RA
// count — while the PoP tier absorbs the fleet. The netsim companion
// metrics translate the measured hit rates into the client-visible
// latency distribution of the paper's Fig 5 testbed.
package ritm_test

import (
	"sync"
	"testing"
	"time"

	"ritm"
	"ritm/internal/netsim"
	"ritm/internal/serial"
)

// hierarchyFleet is one origin, an R×P topology, and RAs spread evenly
// across the PoPs (region-major).
type hierarchyFleet struct {
	dp     *ritm.DistributionPoint
	ca     *ritm.CA
	topo   *ritm.Topology
	agents []*ritm.RA
	gen    *serial.Generator
}

func newHierarchyFleet(tb testing.TB, regions, pops, ras int, popTTL, regionalTTL time.Duration) *hierarchyFleet {
	tb.Helper()
	if ras%(regions*pops) != 0 {
		tb.Fatalf("%d RAs do not spread evenly over %d×%d PoPs", ras, regions, pops)
	}
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "HierCA", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		tb.Fatal(err)
	}
	if err := dp.RegisterCA("HierCA", authority.PublicKey()); err != nil {
		tb.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		tb.Fatal(err)
	}
	topo, err := ritm.NewTopology(dp, ritm.TopologyConfig{
		Regions:       regions,
		PoPsPerRegion: pops,
		PoPTTL:        popTTL,
		RegionalTTL:   regionalTTL,
	})
	if err != nil {
		tb.Fatal(err)
	}
	perPoP := ras / (regions * pops)
	agents := make([]*ritm.RA, 0, ras)
	for r := 0; r < regions; r++ {
		for p := 0; p < pops; p++ {
			for i := 0; i < perPoP; i++ {
				agent, err := ritm.NewRA(ritm.RAConfig{
					Roots:  []*ritm.Certificate{authority.RootCertificate()},
					Origin: topo.PoP(r, p),
					Delta:  10 * time.Second,
				})
				if err != nil {
					tb.Fatal(err)
				}
				agents = append(agents, agent)
			}
		}
	}
	return &hierarchyFleet{
		dp:     dp,
		ca:     authority,
		topo:   topo,
		agents: agents,
		gen:    serial.NewGenerator(0x41E6E, nil),
	}
}

// cycle publishes one revocation batch and syncs the whole fleet
// concurrently — one ∆ boundary of a lockstep deployment.
func (f *hierarchyFleet) cycle(tb testing.TB, revocations int) {
	tb.Helper()
	if revocations > 0 {
		if _, err := f.ca.Revoke(f.gen.NextN(revocations)...); err != nil {
			tb.Fatal(err)
		}
	}
	errs := make(chan error, len(f.agents))
	var wg sync.WaitGroup
	for _, a := range f.agents {
		wg.Add(1)
		go func(a *ritm.RA) {
			defer wg.Done()
			if err := a.SyncOnce(); err != nil {
				errs <- err
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		tb.Fatal(err)
	}
}

// TestHierarchyFanOutMath is the acceptance contract of the hierarchy,
// checked on the full stack (real RAs, real stores): 2 regions × 4 PoPs
// × 32 RAs over `cycles` ∆ boundaries cost the origin at most
// regions·cycles pulls, with per-tier hit rates at their combinatorial
// floors.
func TestHierarchyFanOutMath(t *testing.T) {
	const (
		regions = 2
		pops    = 4
		ras     = 32
		cycles  = 12
	)
	f := newHierarchyFleet(t, regions, pops, ras, time.Hour, time.Hour)
	for i := 0; i < cycles; i++ {
		f.cycle(t, 50)
	}

	if origin := f.dp.Stats().Pulls; origin > regions*cycles {
		t.Errorf("origin saw %d pulls for %d keys, want ≤ %d (one per regional edge per key)",
			origin, cycles, regions*cycles)
	}
	st := f.topo.Stats()
	popTotal := st.PoP.Hits + st.PoP.Misses + st.PoP.CollapsedPulls
	if want := ras * cycles; popTotal != want {
		t.Fatalf("PoP tier served %d pulls, want %d", popTotal, want)
	}
	if st.PoP.Misses > regions*pops*cycles {
		t.Errorf("PoP misses = %d, want ≤ %d", st.PoP.Misses, regions*pops*cycles)
	}
	perPoP := ras / (regions * pops)
	if hr, floor := ritm.EdgeHitRate(st.PoP), float64(perPoP-1)/float64(perPoP)-0.01; hr < floor {
		t.Errorf("PoP-tier hit rate = %.3f, want ≥ %.3f", hr, floor)
	}
	if st.Regional.Misses > regions*cycles {
		t.Errorf("regional misses = %d, want ≤ %d", st.Regional.Misses, regions*cycles)
	}
	// Every agent landed on the same final count.
	want := uint64(cycles * 50)
	for i, a := range f.agents {
		r, err := a.Store().Replica("HierCA")
		if err != nil {
			t.Fatal(err)
		}
		if r.Count() != want {
			t.Errorf("agent %d count = %d, want %d", i, r.Count(), want)
		}
	}
}

// BenchmarkHierarchyPull measures one ∆ boundary of the 2×4×32 hierarchy
// and reports the fan-out ledger: origin-pulls/cycle (the acceptance
// bound is ≤ the number of regional edges), per-tier hit rates, and the
// netsim-modeled client latency quantiles those hit rates buy (Fig 5's
// CDF, two-tier edition). The flat 1-edge config and the uncached config
// are the comparison baselines.
func BenchmarkHierarchyPull(b *testing.B) {
	for _, cfg := range []struct {
		name           string
		regions, pops  int
		ras            int
		popTTL, regTTL time.Duration
	}{
		{"regions=2/pops=4/ras=32", 2, 4, 32, time.Hour, time.Hour},
		{"regions=2/pops=4/ras=32/uncached", 2, 4, 32, 0, 0},
		{"regions=1/pops=1/ras=32", 1, 1, 32, time.Hour, time.Hour},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			f := newHierarchyFleet(b, cfg.regions, cfg.pops, cfg.ras, cfg.popTTL, cfg.regTTL)
			f.cycle(b, 1000) // steady-state dictionary before measuring
			baseTopo := f.topo.Stats()
			basePulls := f.dp.Stats().Pulls
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.cycle(b, 100)
			}
			b.StopTimer()

			st := f.topo.Stats()
			pop := statsDelta(st.PoP, baseTopo.PoP)
			regional := statsDelta(st.Regional, baseTopo.Regional)
			originPulls := f.dp.Stats().Pulls - basePulls

			popRate := ritm.EdgeHitRate(pop)
			regRate := ritm.EdgeHitRate(regional)
			b.ReportMetric(popRate, "pop-hit-rate")
			b.ReportMetric(regRate, "regional-hit-rate")
			b.ReportMetric(float64(originPulls)/float64(b.N), "origin-pulls/cycle")
			b.ReportMetric(float64(originPulls)/float64(cfg.ras), "origin-pulls/ra")

			// Client-visible latency: replay the measured hit rates
			// through the netsim two-tier model at the measured mean
			// response size.
			popTotal := pop.Hits + pop.Misses + pop.CollapsedPulls
			if popTotal > 0 {
				bytes := int(pop.BytesServed) / popTotal
				sample := netsim.NewNetwork(1).HierarchySample(bytes, 25, popRate, regRate)
				b.ReportMetric(float64(netsim.Quantile(sample, 0.5).Milliseconds()), "sim-p50-ms")
				b.ReportMetric(float64(netsim.Quantile(sample, 0.99).Milliseconds()), "sim-p99-ms")
			}
		})
	}
}

// statsDelta subtracts a baseline snapshot from a later one, counter by
// counter (gauges like Entries are taken from the later snapshot).
func statsDelta(now, base ritm.EdgeStats) ritm.EdgeStats {
	now.Hits -= base.Hits
	now.Misses -= base.Misses
	now.CollapsedPulls -= base.CollapsedPulls
	now.Evictions -= base.Evictions
	now.Errors -= base.Errors
	now.NegativeHits -= base.NegativeHits
	now.NegativeEvictions -= base.NegativeEvictions
	now.BytesServed -= base.BytesServed
	now.BytesFetched -= base.BytesFetched
	return now
}
