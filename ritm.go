// Package ritm is a complete implementation of RITM ("Revocation in the
// Middle", Szalachowski, Chuat, Lee, Perrig — ICDCS 2016): a certificate-
// revocation framework in which network middleboxes (Revocation Agents)
// store authenticated revocation dictionaries, disseminated by a CDN, and
// piggyback fresh revocation statuses onto TLS connections, so that clients
// and servers store and fetch nothing.
//
// The package is a facade over the subsystem implementations:
//
//   - certification authorities issuing certificates and maintaining
//     append-only authenticated dictionaries (internal/ca, internal/dictionary)
//   - the CDN dissemination network: distribution point, edge servers with
//     TTL caches, and an HTTP transport (internal/cdn)
//   - the Revocation Agent middlebox: dictionary replication, DPI, and the
//     status-injecting TCP proxy (internal/ra)
//   - the RITM-supported client enforcing the 2∆ freshness policy and the
//     mid-connection revocation check (internal/ritmclient)
//   - consistency checking and CA-misbehavior proofs (internal/monitor)
//   - the TLS substrate with a plaintext, middlebox-parsable negotiation
//     (internal/tlssim)
//
// # Quickstart
//
// Wire a CA to a distribution point, replicate it on an RA, and protect a
// connection:
//
//	dp := ritm.NewDistributionPoint(nil)
//	ca, _ := ritm.NewCA(ritm.CAConfig{ID: "MyCA", Delta: 10 * time.Second, Publisher: dp})
//	dp.RegisterCA("MyCA", ca.PublicKey())
//	ca.PublishRoot()
//
//	agent, _ := ritm.NewRA(ritm.RAConfig{
//		Roots:  []*ritm.Certificate{ca.RootCertificate()},
//		Origin: ritm.NewEdgeServer(dp, 0, nil),
//		Delta:  10 * time.Second,
//	})
//	agent.SyncOnce()
//	proxy, _ := agent.NewProxy("127.0.0.1:0", serverAddr)
//
//	conn, err := ritm.Dial("tcp", proxy.Addr().String(), "example.com", &ritm.ClientConfig{
//		Pool:          pool,
//		RequireStatus: true,
//	})
//
// See examples/ for complete programs, and DESIGN.md for the map from the
// paper's sections to packages.
package ritm

import (
	"time"

	"ritm/internal/baseline"
	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/experiments"
	"ritm/internal/interception"
	"ritm/internal/monitor"
	"ritm/internal/ra"
	"ritm/internal/ritmclient"
	"ritm/internal/serial"
	"ritm/internal/storage"
	"ritm/internal/tlssim"
)

// Certification authority (§III).
type (
	// CA issues certificates and maintains the revocation dictionary.
	CA = ca.CA
	// CAConfig configures a CA.
	CAConfig = ca.Config
	// Publisher is the CA's interface to the dissemination network.
	Publisher = ca.Publisher
)

// NewCA creates a certification authority.
func NewCA(cfg CAConfig) (*CA, error) { return ca.New(cfg) }

// Authenticated dictionary artifacts (§III, Fig 2).
type (
	// CAID identifies a CA and its dictionary.
	CAID = dictionary.CAID
	// SignedRoot is Eq (1): {root, n, Hᵐ(v), t} signed by the CA.
	SignedRoot = dictionary.SignedRoot
	// FreshnessStatement is Eq (2): the per-∆ hash-chain heartbeat.
	FreshnessStatement = dictionary.FreshnessStatement
	// Status is Eq (3): proof + signed root + freshness statement.
	Status = dictionary.Status
	// Proof is a presence/absence proof against a signed root.
	Proof = dictionary.Proof
	// MisbehaviorProof is transferable evidence of CA equivocation (§V).
	MisbehaviorProof = dictionary.MisbehaviorProof
	// ShardedAuthority is the §VIII "ever-growing dictionaries" extension:
	// one dictionary per certificate-expiry bucket, pruned after expiry.
	ShardedAuthority = dictionary.ShardedAuthority
	// ShardConfig configures a ShardedAuthority.
	ShardConfig = dictionary.ShardConfig
)

// NewShardedAuthority creates an expiry-sharded dictionary space (§VIII).
func NewShardedAuthority(cfg ShardConfig) (*ShardedAuthority, error) {
	return dictionary.NewShardedAuthority(cfg)
}

// LayoutKind selects the dictionary's commitment structure. The layout is a
// deployment-wide setting: CA, distribution point, and every RA must agree
// (roots and proofs are layout-specific; the issuance log and all wire
// formats are not).
type LayoutKind = dictionary.LayoutKind

// Dictionary layouts.
const (
	// LayoutSorted is the classic flat sorted hash tree (the default):
	// O(k·log n) right-edge inserts, O(n) uniform inserts.
	LayoutSorted = dictionary.LayoutSorted
	// LayoutForest is the bucketed forest: O(k·log n) inserts for any
	// serial distribution, at the cost of a slightly larger proof (an
	// extra spine segment).
	LayoutForest = dictionary.LayoutForest
)

// ParseLayout maps a -layout flag value ("sorted", "forest",
// "forest:<cap>") to its kind.
func ParseLayout(s string) (LayoutKind, error) { return dictionary.ParseLayout(s) }

// LayoutForestWithCap returns the forest layout with buckets of at most
// cap leaves (default 256): the tuning knob for corpora whose batch sizes
// or proof-size budgets differ from the default's sweet spot. The
// capacity is part of the commitment contract — persisted in checkpoints
// and refused on mismatch at restore, so a restart can never silently
// change proof shapes.
func LayoutForestWithCap(cap int) LayoutKind { return dictionary.LayoutForestWithCap(cap) }

// Durable state tier: WAL + checkpoint persistence for CAs, distribution
// points, and RAs. A nil backend anywhere keeps that component purely
// in-memory (the historical behavior).
type (
	// StorageBackend opens durable logs for named dictionaries.
	StorageBackend = storage.Backend
	// FileBackend persists each dictionary under a directory: an
	// append-only CRC-framed WAL of signed update batches plus atomically
	// installed checkpoint snapshots.
	FileBackend = storage.FileBackend
	// MemoryBackend retains logs in process memory — restart semantics
	// without a filesystem, for tests and simulations.
	MemoryBackend = storage.Memory
)

// NewFileBackend returns a file-backed storage backend rooted at dir.
// fsync selects fsync-on-commit for WAL appends (checkpoints always
// sync); see the README's durability table for the tradeoff.
func NewFileBackend(dir string, fsync bool) *FileBackend {
	return storage.NewFileBackend(dir, fsync)
}

// NewMemoryBackend returns an in-process storage backend.
func NewMemoryBackend() *MemoryBackend { return storage.NewMemory() }

// Status check outcomes.
const (
	// CheckValid: the certificate is proven not revoked, freshly.
	CheckValid = dictionary.CheckValid
	// CheckRevoked: the certificate is proven revoked.
	CheckRevoked = dictionary.CheckRevoked
)

// Dissemination network (§III "Dissemination").
type (
	// DistributionPoint is the CDN origin fed by CAs.
	DistributionPoint = cdn.DistributionPoint
	// EdgeServer replicates an origin with a TTL cache.
	EdgeServer = cdn.EdgeServer
	// Origin is the pull API spoken across the network.
	Origin = cdn.Origin
	// PullResponse is one pull's payload: the missing suffix with its
	// signed root, the current freshness statement, and the suffix's
	// batch bounds.
	PullResponse = cdn.PullResponse
	// HTTPClient is an Origin over the HTTP transport.
	HTTPClient = cdn.HTTPClient
	// Topology is the two-tier edge hierarchy (regions × PoPs): PoPs pull
	// from regional edges, regional edges pull from the origin, so origin
	// load is O(regions) regardless of fleet size.
	Topology = cdn.Topology
	// TopologyConfig shapes a Topology (tier TTLs, negative-cache TTL).
	TopologyConfig = cdn.TopologyConfig
	// TopologyStats is the per-tier (and per-region) stats roll-up.
	TopologyStats = cdn.TopologyStats
)

// NewTopology wires a regions × PoPs edge hierarchy over origin.
func NewTopology(origin Origin, cfg TopologyConfig) (*Topology, error) {
	return cdn.NewTopology(origin, cfg)
}

// Multi-origin HA: CA-sharded origins, WAL-shipping replication, and
// failover.
type (
	// Ring is the consistent-hash ring mapping CA ids to origin shards;
	// deterministic across processes, so every edge and RA computes the
	// same placement from the shard count alone.
	Ring = cdn.Ring
	// ShardedOrigin routes pulls across origin shards by CA id, each
	// shard an ordered failover-candidate list with cooldown demotion.
	ShardedOrigin = cdn.ShardedOrigin
	// ShardedOriginOptions tunes failover (cooldown, clock).
	ShardedOriginOptions = cdn.ShardedOriginOptions
	// ShardedOriginStats is the per-shard pulls/failovers roll-up.
	ShardedOriginStats = cdn.ShardedOriginStats
	// Replicator is the replication-stream API: Tail a CA's WAL from an
	// LSN. DistributionPoint and HTTPClient implement it.
	Replicator = cdn.Replicator
	// ReplicationResponse is one replication pull: an optional checkpoint
	// snapshot plus the WAL frames after it.
	ReplicationResponse = cdn.ReplicationResponse
	// Follower tails a leader origin's per-CA WAL and applies it to a
	// local DistributionPoint, verifying every suffix against the CA's
	// signed root before serving it.
	Follower = cdn.Follower
	// FollowerStats counts replication activity (frames applied,
	// snapshots adopted, rejected records, position resets).
	FollowerStats = cdn.FollowerStats
	// FollowerLoop is a running background replication loop.
	FollowerLoop = cdn.FollowerLoop
)

// NewRing returns the consistent-hash ring over n shards.
func NewRing(n int) (*Ring, error) { return cdn.NewRing(n) }

// NewShardedOrigin builds a CA-sharded origin: shards[i] is shard i's
// ordered failover-candidate list (preferred first).
func NewShardedOrigin(shards [][]Origin, opts ShardedOriginOptions) (*ShardedOrigin, error) {
	return cdn.NewShardedOrigin(shards, opts)
}

// NewFailoverOrigin builds a single-shard ShardedOrigin: plain failover
// across candidates without CA-based routing.
func NewFailoverOrigin(candidates []Origin, opts ShardedOriginOptions) (*ShardedOrigin, error) {
	return cdn.NewFailoverOrigin(candidates, opts)
}

// NewShardedTopology wires an edge hierarchy over a sharded origin.
func NewShardedTopology(shards [][]Origin, opts ShardedOriginOptions, cfg TopologyConfig) (*Topology, *ShardedOrigin, error) {
	return cdn.NewShardedTopology(shards, opts, cfg)
}

// NewFollower creates a follower replicating source's WAL streams into dp
// for every CA registered on dp.
func NewFollower(dp *DistributionPoint, source Replicator) *Follower {
	return cdn.NewFollower(dp, source)
}

// Dissemination sentinels (match with errors.Is).
var (
	// ErrUnknownCA reports a pull for a dictionary the origin does not
	// carry; edges can negative-cache it (EdgeServer.SetNegativeTTL).
	ErrUnknownCA = cdn.ErrUnknownCA
	// ErrAhead reports a pull whose from-count exceeds the origin's —
	// the origin-regression signal the fetcher's Resync recovery handles.
	ErrAhead = cdn.ErrAhead
	// ErrNoOrigin reports a sharded pull whose shard has no live
	// candidate left.
	ErrNoOrigin = cdn.ErrNoOrigin
	// ErrNoReplication reports a replication pull against an origin with
	// no WAL to ship (no storage backend).
	ErrNoReplication = cdn.ErrNoReplication
	// ErrReplicationDiverged reports a replicated record the local signed
	// root verification rejected — a compromised or split-brain leader.
	ErrReplicationDiverged = cdn.ErrReplicationDiverged
)

// EdgeHitRate reduces edge stats to the served-without-upstream fraction.
func EdgeHitRate(s EdgeStats) float64 { return cdn.HitRate(s) }

// NewDistributionPoint creates a CDN origin. now is the clock used to
// validate ingested freshness statements (nil = time.Now).
func NewDistributionPoint(now func() time.Time) *DistributionPoint {
	return cdn.NewDistributionPoint(now)
}

// NewDistributionPointWithStorage creates a CDN origin persisting every
// dictionary to backend: a reopened origin recovers its exact signed
// roots (same ETags — edges keep getting 304s) and serves suffixes from
// where it crashed, instead of forcing every RA through the full-resync
// path. checkpointEvery is the WAL-records-per-checkpoint cadence (0 =
// default).
func NewDistributionPointWithStorage(now func() time.Time, backend StorageBackend, checkpointEvery int) *DistributionPoint {
	return cdn.NewDistributionPointWithStorage(now, backend, checkpointEvery)
}

// NewEdgeServer creates an edge server caching upstream responses for ttl
// (zero disables caching — the Fig 5 worst case). now is the cache clock
// (nil = time.Now).
func NewEdgeServer(upstream Origin, ttl time.Duration, now func() time.Time) *EdgeServer {
	return cdn.NewEdgeServer(upstream, ttl, now)
}

// Revocation Agent (§III, §VI).
type (
	// RA is the revocation-agent middlebox.
	RA = ra.RA
	// RAConfig configures an RA.
	RAConfig = ra.Config
	// RAProxy is the RA's status-injecting TCP data path.
	RAProxy = ra.Proxy
	// Fetcher is the RA's background pull loop.
	Fetcher = ra.Fetcher
	// FetcherOptions controls the pull loop's lifecycle: interval, per-CA
	// jitter, ErrAhead recovery, and the §VIII shard-expiry sweep.
	FetcherOptions = ra.FetcherOptions
	// FetcherStats counts fetcher-lifecycle activity.
	FetcherStats = ra.FetcherStats
	// EdgeStats counts edge-server activity (hits, collapsed pulls,
	// evictions); the fleet benchmark reads it.
	EdgeStats = cdn.EdgeStats
)

// NewRA creates a Revocation Agent.
func NewRA(cfg RAConfig) (*RA, error) { return ra.New(cfg) }

// Real-TLS intercepting data plane: a crypto/tls-terminating bump
// middlebox whose handshake decision is driven by the RA's dictionary.
// Start one with (*RA).NewInterceptor.
type (
	// Interceptor is the real-TLS bump middlebox.
	Interceptor = interception.Interceptor
	// InterceptConfig configures an Interceptor.
	InterceptConfig = interception.Config
	// InterceptSession is the per-connection bump outcome.
	InterceptSession = interception.Session
	// InterceptStats counts the interceptor's data-path activity.
	InterceptStats = interception.Stats
	// Minter mints per-site leaves under a local bump root.
	Minter = interception.Minter
	// MintingRoot is the local root bump leaves chain to.
	MintingRoot = interception.MintingRoot
	// BypassList lists hosts the interceptor never bumps.
	BypassList = interception.BypassList
	// KeyAlg selects the minting root's key algorithm.
	KeyAlg = interception.KeyAlg
)

// Minting-root key algorithms.
const (
	KeyECDSA = interception.KeyECDSA
	KeyRSA   = interception.KeyRSA
)

// NewMintingRoot generates a fresh self-signed interception root.
func NewMintingRoot(commonName string, alg KeyAlg) (*MintingRoot, error) {
	return interception.NewMintingRoot(commonName, alg)
}

// LoadOrCreateMintingRoot loads an interception root from a PEM file,
// generating and persisting one if the file does not exist.
func LoadOrCreateMintingRoot(path, commonName string, alg KeyAlg) (*MintingRoot, error) {
	return interception.LoadOrCreateMintingRoot(path, commonName, alg)
}

// NewMinter wraps a minting root with an LRU leaf cache (cacheCap 0 =
// default).
func NewMinter(root *MintingRoot, cacheCap int) *Minter {
	return interception.NewMinter(root, cacheCap)
}

// NewBypassList builds a bypass list from entries ("example.com" exact,
// ".example.com" includes subdomains).
func NewBypassList(entries ...string) *BypassList {
	return interception.NewBypassList(entries...)
}

// LoadBypassFile reads a bypass list from a file (one entry per line,
// '#' comments).
func LoadBypassFile(path string) (*BypassList, error) {
	return interception.LoadBypassFile(path)
}

// RITM-supported client (§III steps 5–7).
type (
	// ClientConfig configures the RITM client policy.
	ClientConfig = ritmclient.Config
	// ClientConn is a RITM-protected connection.
	ClientConn = ritmclient.Conn
	// Verifier checks injected revocation statuses.
	Verifier = ritmclient.Verifier
)

// Dial establishes a RITM-protected connection.
func Dial(network, addr, serverName string, cfg *ClientConfig) (*ClientConn, error) {
	return ritmclient.Dial(network, addr, serverName, cfg)
}

// Certificates and trust anchors.
type (
	// Certificate is the simplified X.509 equivalent RITM operates on.
	Certificate = cert.Certificate
	// Chain is a leaf-first certificate chain.
	Chain = cert.Chain
	// Pool is a set of trusted root CA certificates.
	Pool = cert.Pool
	// SerialNumber is an RFC 5280-style certificate serial number.
	SerialNumber = serial.Number
	// Signer is an Ed25519 signing identity.
	Signer = cryptoutil.Signer
)

// NewPool returns a pool trusting the given self-signed roots.
func NewPool(roots ...*Certificate) (*Pool, error) { return cert.NewPool(roots...) }

// NewSigner generates an Ed25519 identity (nil rng = crypto/rand).
func NewSigner() (*Signer, error) { return cryptoutil.NewSigner(nil) }

// TLS substrate (§III "Validation").
type (
	// TLSConfig configures a TLS-sim endpoint.
	TLSConfig = tlssim.Config
	// TLSConn is a TLS-sim connection.
	TLSConn = tlssim.Conn
)

// Consistency checking (§III, §V).
type (
	// Auditor accumulates signed roots and detects equivocation.
	Auditor = monitor.Auditor
	// MapServer is the registry of parties exchanging dictionary views.
	MapServer = monitor.MapServer
	// RootSource provides latest signed roots for auditing.
	RootSource = monitor.RootSource
)

// NewAuditor creates an auditor trusting the CA keys in pool (sorted-layout
// dictionaries; forest deployments use NewAuditorWithLayout).
func NewAuditor(pool *Pool) *Auditor { return monitor.NewAuditor(pool) }

// NewAuditorWithLayout creates an auditor for a deployment whose CAs sign
// dictionaries of the given layout; append-only checks replay the issuance
// log with it.
func NewAuditorWithLayout(pool *Pool, layout LayoutKind) *Auditor {
	return monitor.NewAuditorWithLayout(pool, layout)
}

// NewMapServer creates an empty source registry.
func NewMapServer() *MapServer { return monitor.NewMapServer() }

// CrossCheck audits every registered source's view of one dictionary.
func CrossCheck(m *MapServer, a *Auditor, caID CAID) *monitor.CrossCheckResult {
	return monitor.CrossCheck(m, a, caID)
}

// Baseline schemes and the Table IV comparison model (§II, §VII-E).
type (
	// BaselineScheme is one Table IV row.
	BaselineScheme = baseline.Scheme
	// BaselineParams instantiates the Table IV symbols.
	BaselineParams = baseline.Params
)

// BaselineSchemes returns every Table IV row.
func BaselineSchemes() []BaselineScheme { return baseline.Schemes() }

// RunExperiment regenerates one of the paper's tables/figures by id (see
// internal/experiments for the registry).
func RunExperiment(id string, quick bool) (*experiments.Table, error) {
	return experiments.Run(id, quick)
}

// ExperimentIDs lists the available experiment identifiers.
func ExperimentIDs() []string { return experiments.IDs() }
