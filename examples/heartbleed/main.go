// Heartbleed: a mass-revocation event propagating through the CDN.
//
// The example replays the peak day of the Heartbleed disclosure (16 April
// 2014, §VII-A) against a live dissemination network: the CA revokes the
// day's certificates in hourly batches, and six RAs — two per "region",
// sharing a regional edge server — pull the updates. A virtual clock
// advances one ∆ per simulated hour, so the edge caches expire exactly as
// they would in production, and the second RA of each region is served
// from cache: the sharing that makes CDN dissemination scale (§III).
//
//	go run ./examples/heartbleed
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"ritm"
	"ritm/internal/serial"
	"ritm/internal/workload"
)

// vclock is a virtual clock the edge caches run on.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *vclock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const delta = 10 * time.Second

	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "HeartbleedCA", Delta: delta, Publisher: dp})
	if err != nil {
		return err
	}
	if err := dp.RegisterCA("HeartbleedCA", authority.PublicKey()); err != nil {
		return err
	}
	if err := authority.PublishRoot(); err != nil {
		return err
	}

	// Three regions, one edge server each (TTL = ∆/2), two RAs per region.
	clock := &vclock{t: time.Now()}
	regions := []string{"us-east", "eu-west", "ap-south"}
	edges := make([]*ritm.EdgeServer, len(regions))
	agents := make(map[string][]*ritm.RA, len(regions))
	for i, region := range regions {
		edges[i] = ritm.NewEdgeServer(dp, delta/2, clock.now)
		for j := 0; j < 2; j++ {
			agent, err := ritm.NewRA(ritm.RAConfig{
				Roots:  []*ritm.Certificate{authority.RootCertificate()},
				Origin: edges[i],
				Delta:  delta,
			})
			if err != nil {
				return err
			}
			if err := agent.SyncOnce(); err != nil {
				return err
			}
			agents[region] = append(agents[region], agent)
		}
	}

	// The peak day's hourly revocation counts, scaled 1:100 so the example
	// finishes in seconds while keeping the burst shape.
	series := workload.NewSeries(2014)
	peak := time.Date(2014, time.April, 16, 0, 0, 0, 0, time.UTC)
	hourly, err := series.Hourly(peak)
	if err != nil {
		return err
	}
	gen := serial.NewGenerator(0xB1EED, nil)

	fmt.Printf("replaying %s hour by hour (scaled 1:100), 6 RAs in 3 regions\n",
		peak.Format("2006-01-02"))
	fmt.Printf("%-6s %12s %12s %12s\n", "hour", "revocations", "dict size", "max RA lag")
	totalRevoked := 0
	for h := 0; h < 24; h++ {
		// One simulated hour = one ∆ tick: caches from the previous tick
		// expire, exactly as a production RA pulling every ∆ would see.
		clock.advance(delta)
		count := hourly[h] / 100
		if count > 0 {
			if _, err := authority.Revoke(gen.NextN(count)...); err != nil {
				return err
			}
			totalRevoked += count
		}

		var maxLag uint64
		for _, regionAgents := range agents {
			for _, agent := range regionAgents {
				if err := agent.SyncOnce(); err != nil {
					return err
				}
				replica, err := agent.Store().Replica("HeartbleedCA")
				if err != nil {
					return err
				}
				if lag := authority.Authority().Count() - replica.Count(); lag > maxLag {
					maxLag = lag
				}
			}
		}
		if count > 0 {
			fmt.Printf("%02d:00  %12d %12d %12d\n", h, count, totalRevoked, maxLag)
		}
	}

	// Every RA converged to the same dictionary: prove it with the
	// consistency-checking machinery (§III).
	pool, err := ritm.NewPool(authority.RootCertificate())
	if err != nil {
		return err
	}
	auditor := ritm.NewAuditor(pool)
	ms := ritm.NewMapServer()
	ms.Register("origin", dp)
	for region, regionAgents := range agents {
		for j, agent := range regionAgents {
			ms.Register(fmt.Sprintf("%s-%d", region, j), agent.Store())
		}
	}
	res := ritm.CrossCheck(ms, auditor, "HeartbleedCA")
	if len(res.Proofs) != 0 || len(res.Errors) != 0 {
		return fmt.Errorf("consistency check failed: %d proofs, %v", len(res.Proofs), res.Errors)
	}
	fmt.Printf("\n%d revocations disseminated; %d parties share one consistent view\n",
		totalRevoked, res.RootsCompared)
	for i, e := range edges {
		st := e.Stats()
		fmt.Printf("edge %-9s: %3d origin fetches, %3d cache hits, %7.1f KB served\n",
			regions[i], st.Misses, st.Hits, float64(st.BytesServed)/1024)
	}
	return nil
}
