// IoT gateway: long-lived connections and the mid-connection revocation
// check (§II "Desired Properties", §V "Race Condition").
//
// Hardware-limited devices cannot store revocation lists and are reluctant
// to re-handshake, so they hold one long-lived TLS connection open. Their
// network gateway runs a Revocation Agent (the close-to-the-clients
// deployment of §IV): every ∆ it piggybacks a fresh revocation status onto
// server traffic. When the broker's certificate is revoked *while the
// connection is up*, the next status is a presence proof and the device
// tears the connection down within 2∆ — the race-condition protection the
// paper claims as a first.
//
//	go run ./examples/iotgateway
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ritm"
	"ritm/internal/tlssim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ∆ = 1 s so the example completes quickly; the protocol is identical
	// at the paper's 10 s.
	const delta = time.Second

	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "IoTCA", Delta: delta, Publisher: dp})
	if err != nil {
		return err
	}
	if err := dp.RegisterCA("IoTCA", authority.PublicKey()); err != nil {
		return err
	}
	if err := authority.PublishRoot(); err != nil {
		return err
	}
	// At ∆ = 1 s the publish → pull → piggyback pipeline can accumulate
	// close to the full 2∆ tolerance; publishing and pulling at ∆/3 (still
	// "at least every ∆") keeps injected statuses comfortably fresh.
	refresher := authority.StartRefresherEvery(delta/3, nil)
	defer refresher.Shutdown()

	gateway, err := ritm.NewRA(ritm.RAConfig{
		Roots:  []*ritm.Certificate{authority.RootCertificate()},
		Origin: ritm.NewEdgeServer(dp, 0, nil),
		Delta:  delta,
	})
	if err != nil {
		return err
	}
	if err := gateway.SyncOnce(); err != nil {
		return err
	}
	fetcher := gateway.StartFetcherEvery(delta/3, nil)
	defer fetcher.Shutdown()

	// The IoT broker: a TLS server streaming telemetry acknowledgements.
	brokerKey, err := ritm.NewSigner()
	if err != nil {
		return err
	}
	brokerCert, err := authority.IssueServerCertificate("broker.iot.example", brokerKey.Public())
	if err != nil {
		return err
	}
	brokerAddr, stopBroker, err := startBroker(&ritm.TLSConfig{
		Chain: ritm.Chain{brokerCert},
		Key:   brokerKey,
	})
	if err != nil {
		return err
	}
	defer stopBroker()

	proxy, err := gateway.NewProxy("127.0.0.1:0", brokerAddr)
	if err != nil {
		return err
	}
	defer proxy.Close()
	fmt.Printf("gateway RA %v in front of broker %v (∆=%v)\n", proxy.Addr(), brokerAddr, delta)

	// The device: zero revocation storage, one long-lived connection.
	pool, err := ritm.NewPool(authority.RootCertificate())
	if err != nil {
		return err
	}
	device, err := ritm.Dial("tcp", proxy.Addr().String(), "broker.iot.example", &ritm.ClientConfig{
		Pool:          pool,
		RequireStatus: true,
	})
	if err != nil {
		return err
	}
	defer device.Close()
	fmt.Printf("device connected; statuses verified so far: %d\n", device.Verifier().ValidCount())

	// Stream telemetry for a few ∆ periods: the gateway keeps piggybacking
	// fresh absence proofs on the broker's acknowledgements.
	connectedAt := time.Now()
	buf := make([]byte, 64)
	for i := 0; i < 3; i++ {
		if _, err := device.Write([]byte("telemetry")); err != nil {
			return err
		}
		if _, err := device.Read(buf); err != nil {
			return err
		}
		time.Sleep(delta)
	}
	before := device.Verifier().ValidCount()
	fmt.Printf("after %.0f s connected: %d statuses verified (≥1 per ∆)\n",
		time.Since(connectedAt).Seconds(), before)
	if before < 2 {
		return fmt.Errorf("expected periodic statuses on the established connection")
	}

	// The broker's key leaks. The CA revokes mid-connection.
	if _, err := authority.RevokeCertificate(brokerCert); err != nil {
		return err
	}
	revokedAt := time.Now()
	fmt.Printf("certificate %v revoked while the connection is up\n", brokerCert.SerialNumber)

	// Keep using the connection; it must die within ~2∆.
	var readErr error
	for time.Since(revokedAt) < 10*delta {
		if _, err := device.Write([]byte("telemetry")); err != nil {
			readErr = err
			break
		}
		if _, err := device.Read(buf); err != nil {
			readErr = err
			break
		}
	}
	if readErr == nil {
		return fmt.Errorf("connection survived revocation")
	}
	if !errors.Is(readErr, tlssim.ErrStatusRejected) && !errors.Is(readErr, net.ErrClosed) {
		fmt.Printf("connection interrupted with: %v\n", readErr)
	}
	fmt.Printf("established connection interrupted %.1f s after revocation (2∆ = %.0f s)\n",
		time.Since(revokedAt).Seconds(), (2 * delta).Seconds())
	if !device.Verifier().Revoked() {
		return fmt.Errorf("device never saw the presence proof")
	}
	fmt.Println("device verified the presence proof itself — no trust in gateway or CDN required")
	return nil
}

// startBroker runs the echo-style broker.
func startBroker(cfg *ritm.TLSConfig) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := tlssim.Server(raw, cfg)
				defer conn.Close()
				buf := make([]byte, 256)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }, nil
}
