// Real-TLS interception: the RITM data plane against genuine crypto/tls.
//
// It wires the usual control plane (CA → distribution point → RA), stands
// up a real TLS server whose x509 leaf maps onto the RITM dictionary
// (issuer CN = RITM CA ID, serial = dictionary serial), and puts the RA's
// intercepting middlebox on the path: handshakes are bumped with leaves
// minted under a local root, every bump checks the upstream leaf's
// revocation status against the live dictionary, and a revocation flips
// the next handshake to a certificate_revoked refusal. A bypassed host is
// spliced verbatim — the client sees the genuine upstream certificate.
//
//	go run ./examples/interception
package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"log"
	"math/big"
	"net"
	"time"

	"ritm"
	"ritm/internal/interception"
	"ritm/internal/serial"
)

const (
	caID = "InterceptCA"
	host = "site.example"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const delta = 10 * time.Second

	// 1. The RITM control plane: CA → distribution point → RA replica.
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: caID, Delta: delta, Publisher: dp})
	if err != nil {
		return err
	}
	if err := dp.RegisterCA(caID, authority.PublicKey()); err != nil {
		return err
	}
	if err := authority.PublishRoot(); err != nil {
		return err
	}
	agent, err := ritm.NewRA(ritm.RAConfig{
		Roots:  []*ritm.Certificate{authority.RootCertificate()},
		Origin: ritm.NewEdgeServer(dp, 0, nil),
		Delta:  delta,
	})
	if err != nil {
		return err
	}
	if err := agent.SyncOnce(); err != nil {
		return err
	}
	fmt.Println("① control plane up: CA dictionary replicated on the RA")

	// 2. A genuine crypto/tls upstream whose x509 leaf maps onto the
	//    dictionary: issuer CN is the RITM CA ID, the serial is revocable.
	leafCert, leafSN, err := issueUpstream()
	if err != nil {
		return err
	}
	upstreamAddr, err := startTLSEcho(leafCert)
	if err != nil {
		return err
	}
	fmt.Printf("② real TLS upstream %s serving leaf (CA %s, serial %v)\n", upstreamAddr, caID, leafSN)

	// 3. The intercepting middlebox: leaves are minted under a local root
	//    that clients must install; site.pinned is never bumped.
	mintRoot, err := ritm.NewMintingRoot("RITM Example Bump Root", ritm.KeyECDSA)
	if err != nil {
		return err
	}
	mintPool := x509.NewCertPool()
	mintPool.AddCert(mintRoot.Certificate())
	it, err := agent.NewInterceptor("127.0.0.1:0", interception.Config{
		Minter: ritm.NewMinter(mintRoot, 0),
		Bypass: ritm.NewBypassList("site.pinned"),
		Target: upstreamAddr,
	})
	if err != nil {
		return err
	}
	defer it.Close()
	fmt.Printf("③ interceptor on %v (bump root %q)\n", it.Addr(), "RITM Example Bump Root")

	// 4. A client trusting the bump root handshakes through the
	//    interceptor: the bump succeeds and carries a fresh status check.
	conn, err := tls.Dial("tcp", it.Addr().String(), &tls.Config{ServerName: host, RootCAs: mintPool})
	if err != nil {
		return err
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		return err
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil {
		return err
	}
	issuer := conn.ConnectionState().PeerCertificates[0].Issuer.CommonName
	fmt.Printf("④ bumped handshake OK (leaf minted by %q); echo: %q\n", issuer, buf[:n])
	conn.Close()

	// 5. Revoke the upstream leaf and disseminate: the very next handshake
	//    is refused with a certificate_revoked alert.
	if _, err := authority.Revoke(leafSN); err != nil {
		return err
	}
	if err := authority.PublishRefresh(); err != nil {
		return err
	}
	if err := agent.SyncOnce(); err != nil {
		return err
	}
	fmt.Printf("⑤ serial %v revoked and disseminated\n", leafSN)
	if _, err := tls.Dial("tcp", it.Addr().String(), &tls.Config{ServerName: host, RootCAs: mintPool}); err == nil {
		return fmt.Errorf("revoked upstream was bumped")
	} else {
		fmt.Printf("⑥ new handshake correctly refused: %v\n", err)
	}

	st := it.Stats()
	fmt.Printf("⑦ interceptor stats: %d connections, %d bumped, %d refused\n",
		st.Connections, st.Bumped, st.Refused)
	return nil
}

// issueUpstream builds the upstream's x509 side: an issuing CA whose CN is
// the RITM CA ID, and a server leaf with a dictionary-mappable serial.
func issueUpstream() (tls.Certificate, ritm.SerialNumber, error) {
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, ritm.SerialNumber{}, err
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: caID},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		return tls.Certificate{}, ritm.SerialNumber{}, err
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return tls.Certificate{}, ritm.SerialNumber{}, err
	}
	leafKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, ritm.SerialNumber{}, err
	}
	const rawSN = 0x4242
	leafTmpl := &x509.Certificate{
		SerialNumber: big.NewInt(rawSN),
		Subject:      pkix.Name{CommonName: host},
		DNSNames:     []string{host},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(12 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	leafDER, err := x509.CreateCertificate(rand.Reader, leafTmpl, caCert, &leafKey.PublicKey, caKey)
	if err != nil {
		return tls.Certificate{}, ritm.SerialNumber{}, err
	}
	sn, err := serial.New(big.NewInt(rawSN).Bytes())
	if err != nil {
		return tls.Certificate{}, ritm.SerialNumber{}, err
	}
	return tls.Certificate{Certificate: [][]byte{leafDER}, PrivateKey: leafKey}, sn, nil
}

// startTLSEcho runs a real crypto/tls echo server.
func startTLSEcho(leaf tls.Certificate) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	cfg := &tls.Config{Certificates: []tls.Certificate{leaf}}
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				conn := tls.Server(raw, cfg)
				defer conn.Close()
				io.Copy(conn, conn) //nolint:errcheck // echo until either side closes
			}()
		}
	}()
	return ln.Addr().String(), nil
}
