// Hierarchy: the two-tier dissemination topology of a production CDN —
// R regions × P PoPs of caching edges between one origin and an RA fleet.
//
// Twelve Revocation Agents spread across 2 regions × 2 PoPs replicate the
// same CA. Each PoP absorbs its RAs' pulls, each regional edge absorbs
// its PoPs' misses, and the origin sees O(regions) pulls per ∆ — the
// arithmetic that lets one distribution point feed a planet-scale fleet.
// A misconfigured agent polling a nonexistent CA demonstrates the
// negative cache: the origin sees one unknown-CA lookup per negative TTL,
// not one per request. The run prints the per-tier ledger.
//
//	go run ./examples/hierarchy
package main

import (
	"errors"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"ritm"
	"ritm/internal/serial"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		delta   = 1 * time.Second
		regions = 2
		pops    = 2 // per region
		ras     = 3 // per PoP → 12 fleet-wide
	)

	// 1. CA → distribution point (the origin).
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "HierCA", Delta: delta, Publisher: dp})
	if err != nil {
		return err
	}
	if err := dp.RegisterCA("HierCA", authority.PublicKey()); err != nil {
		return err
	}
	if err := authority.PublishRoot(); err != nil {
		return err
	}
	refresher := authority.StartRefresherEvery(delta/2, nil)
	defer refresher.Shutdown()
	fmt.Println("① origin online, CA refreshing every ∆/2")

	// 2. The hierarchy: PoPs → regional edges → origin, with negative
	//    caching at every tier.
	topo, err := ritm.NewTopology(dp, ritm.TopologyConfig{
		Regions:       regions,
		PoPsPerRegion: pops,
		PoPTTL:        delta,
		RegionalTTL:   delta,
		NegativeTTL:   2 * delta,
	})
	if err != nil {
		return err
	}
	fmt.Printf("② topology wired: %d regions × %d PoPs, negative TTL 2∆\n", regions, pops)

	// 3. The fleet: each RA pulls from its local PoP with jitter.
	var agents []*ritm.RA
	var fetchers []*ritm.Fetcher
	for r := 0; r < regions; r++ {
		for p := 0; p < pops; p++ {
			for i := 0; i < ras; i++ {
				agent, err := ritm.NewRA(ritm.RAConfig{
					Roots:  []*ritm.Certificate{authority.RootCertificate()},
					Origin: topo.PoP(r, p),
					Delta:  delta,
				})
				if err != nil {
					return err
				}
				agents = append(agents, agent)
				fetchers = append(fetchers, agent.StartFetcherWith(ritm.FetcherOptions{
					Interval: delta / 2,
					Jitter:   delta / 4,
					OnError:  func(err error) { log.Printf("sync: %v", err) },
				}))
			}
		}
	}
	defer func() {
		for _, f := range fetchers {
			f.Shutdown()
		}
	}()
	fmt.Printf("③ %d RAs syncing through their local PoPs\n", len(agents))

	// 4. A misconfigured client hammers a CA the origin does not carry;
	//    the negative cache absorbs the storm at the PoP.
	var ghostTries, ghostAbsorbed atomic.Int64
	stopGhost := make(chan struct{})
	ghostDone := make(chan struct{})
	go func() {
		defer close(ghostDone)
		ticker := time.NewTicker(delta / 20)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				ghostTries.Add(1)
				if _, err := topo.PoP(0, 0).Pull("GhostCA", 0); errors.Is(err, ritm.ErrUnknownCA) {
					ghostAbsorbed.Add(1)
				}
			case <-stopGhost:
				return
			}
		}
	}()

	// 5. The CA keeps revoking while the fleet syncs.
	gen := serial.NewGenerator(0x41E6E, nil)
	var revoked atomic.Int64
	stopRevoker := make(chan struct{})
	revokerDone := make(chan struct{})
	go func() {
		defer close(revokerDone)
		ticker := time.NewTicker(delta / 3)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if _, err := authority.Revoke(gen.NextN(25)...); err != nil {
					log.Printf("revoke: %v", err)
					return
				}
				revoked.Add(25)
			case <-stopRevoker:
				return
			}
		}
	}()

	const runFor = 5 * delta
	fmt.Printf("④ revoking 25 certificates every ∆/3 for %v (plus an unknown-CA storm)…\n", runFor)
	time.Sleep(runFor)
	close(stopRevoker)
	close(stopGhost)
	<-revokerDone
	<-ghostDone
	time.Sleep(delta) // one last interval so the fleet converges

	// 6. The ledger: what each tier absorbed.
	st := topo.Stats()
	origin := dp.Stats().Pulls
	popTotal := st.PoP.Hits + st.PoP.Misses + st.PoP.CollapsedPulls
	fmt.Printf("⑤ fleet converged on %d revocations\n", revoked.Load())
	for r, rs := range st.PerRegion {
		fmt.Printf("   region %d: PoP tier %.1f%% hit, regional %.1f%% hit\n",
			r, 100*ritm.EdgeHitRate(rs.PoP), 100*ritm.EdgeHitRate(rs.Regional))
	}
	fmt.Printf("⑥ PoP tier served %d pulls (%.1f%% without the regional edge)\n",
		popTotal, 100*ritm.EdgeHitRate(st.PoP))
	fmt.Printf("   regional tier absorbed %d of the PoPs' %d misses\n",
		st.PoP.Misses-st.Regional.Misses, st.PoP.Misses)
	fmt.Printf("   origin saw %d pulls for the fleet's %d — load is O(regions), not O(RAs)\n",
		origin, popTotal)
	// PoP-tier Errors counts the storm requests that got PAST the PoP's
	// negative cache (at most one per negative TTL window).
	fmt.Printf("⑦ unknown-CA storm: %d requests, %d answered from the PoP's negative cache, %d escalated upstream\n",
		ghostTries.Load(), st.PoP.NegativeHits, st.PoP.Errors)
	return nil
}
