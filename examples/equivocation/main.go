// Equivocation: a misbehaving CA is caught and the evidence is portable.
//
// A compromised CA tries to hide a revocation from part of the Internet by
// maintaining two versions of its dictionary: one that contains the
// revocation (shown to region A) and one that does not (shown to region
// B). Because dictionaries are append-only with consecutive revocation
// numbers, an honest CA signs exactly one root per size n — so as soon as
// any two parties compare their latest signed roots, the fork is exposed,
// and the pair of roots is a transferable cryptographic proof of
// misbehavior (§III "Consistency Checking", §V "Misbehaving CA").
//
//	go run ./examples/equivocation
package main

import (
	"fmt"
	"log"
	"time"

	"ritm"
	"ritm/internal/cdn"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const delta = 10 * time.Second

	// The CA's honest half publishes to region A's distribution point.
	dpA := cdn.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "ShadyCA", Delta: delta, Publisher: dpA})
	if err != nil {
		return err
	}
	if err := dpA.RegisterCA("ShadyCA", authority.PublicKey()); err != nil {
		return err
	}
	if err := authority.PublishRoot(); err != nil {
		return err
	}

	// The fork: same identity, same key, its own dictionary — fed to
	// region B's distribution point.
	fork, err := authority.Fork()
	if err != nil {
		return err
	}
	dpB := cdn.NewDistributionPoint(nil)
	if err := dpB.RegisterCA("ShadyCA", fork.PublicKey()); err != nil {
		return err
	}
	if err := dpB.PublishIssuance(&dictionary.IssuanceMessage{Root: fork.Authority().SignedRoot()}); err != nil {
		return err
	}

	// One RA per region.
	newAgent := func(origin ritm.Origin) (*ritm.RA, error) {
		agent, err := ritm.NewRA(ritm.RAConfig{
			Roots:  []*ritm.Certificate{authority.RootCertificate()},
			Origin: origin,
			Delta:  delta,
		})
		if err != nil {
			return nil, err
		}
		return agent, agent.SyncOnce()
	}
	raA, err := newAgent(ritm.NewEdgeServer(dpA, 0, nil))
	if err != nil {
		return err
	}
	raB, err := newAgent(ritm.NewEdgeServer(dpB, 0, nil))
	if err != nil {
		return err
	}

	// The attack: a compromised certificate is revoked only in region A's
	// view; region B's fork "revokes" an unrelated serial instead, so both
	// dictionaries reach size 1 — with different contents.
	victim := serial.NewGenerator(0xE71, nil)
	compromised := victim.Next()
	if _, err := authority.Revoke(compromised); err != nil {
		return err
	}
	msg, err := fork.Revoke(victim.Next())
	if err != nil {
		return err
	}
	if err := dpB.PublishIssuance(msg); err != nil {
		return err
	}
	for _, agent := range []*ritm.RA{raA, raB} {
		if err := agent.SyncOnce(); err != nil {
			return err
		}
	}
	replicaB, err := raB.Store().Replica("ShadyCA")
	if err != nil {
		return err
	}
	fmt.Printf("region A believes %v is revoked; region B does not (n=%d in both)\n",
		compromised, replicaB.Count())

	// Detection: the two RAs compare their latest signed roots — directly,
	// or via the map server's membership (§III).
	pool, err := ritm.NewPool(authority.RootCertificate())
	if err != nil {
		return err
	}
	auditor := ritm.NewAuditor(pool)
	ms := ritm.NewMapServer()
	ms.Register("ra-region-a", raA.Store())
	ms.Register("ra-region-b", raB.Store())
	res := ritm.CrossCheck(ms, auditor, "ShadyCA")
	if len(res.Proofs) == 0 {
		return fmt.Errorf("equivocation went undetected")
	}
	proof := res.Proofs[0]
	fmt.Printf("equivocation detected: two signed roots at n=%d with different hashes\n",
		proof.A.N)
	fmt.Printf("  root A: %v\n  root B: %v\n", proof.A.Root, proof.B.Root)

	// The proof travels: any third party verifies it with only the CA's
	// public key, then reports it (e.g. to software vendors, §III).
	wire := proof.Encode()
	received, err := dictionary.DecodeMisbehaviorProof(wire)
	if err != nil {
		return err
	}
	if err := received.Verify(authority.PublicKey()); err != nil {
		return fmt.Errorf("transferred proof did not verify: %w", err)
	}
	fmt.Printf("proof serialized to %d bytes and verified independently — ShadyCA is busted\n",
		len(wire))
	return nil
}
