// Multi-origin HA: a CA-sharded origin fleet with WAL-shipping followers
// and RA failover — the deployment where the distribution point is no
// longer one box.
//
// Two origin shards, each a leader + a follower replicating the leader's
// per-CA WAL. Eight CAs hash onto the shards via the consistent ring; a
// single RA replicates all four through a sharded origin whose per-shard
// candidate list is [leader, follower]. Then the drill: shard 0's leader
// crashes with one batch not yet shipped to its follower. The RA demotes
// the corpse, fails over, resyncs onto the follower's shorter signed
// history — every replicated ("acknowledged") revocation stays provable —
// and when the CA replays the missed batch to the promoted follower, the
// RA converges back to the full history. No operator action, no trust in
// the dissemination tier: every applied suffix is verified against the
// CA-signed root.
//
//	go run ./examples/multiorigin
package main

import (
	"errors"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"ritm"
	"ritm/internal/serial"
)

const (
	shardCount = 2
	caCount    = 8
	delta      = 1 * time.Second
)

// killable lets the drill "crash" an in-process leader.
type killable struct {
	inner ritm.Origin
	dead  atomic.Bool
}

func (k *killable) Pull(ca ritm.CAID, from uint64) (*ritm.PullResponse, error) {
	if k.dead.Load() {
		return nil, errors.New("connection refused")
	}
	return k.inner.Pull(ca, from)
}
func (k *killable) LatestRoot(ca ritm.CAID) (*ritm.SignedRoot, error) {
	if k.dead.Load() {
		return nil, errors.New("connection refused")
	}
	return k.inner.LatestRoot(ca)
}
func (k *killable) CAs() ([]ritm.CAID, error) {
	if k.dead.Load() {
		return nil, errors.New("connection refused")
	}
	return k.inner.CAs()
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Two shards, each leader + WAL-shipping follower. Leaders need a
	//    storage backend: the replication stream is the WAL itself.
	leaders := make([]*ritm.DistributionPoint, shardCount)
	followDPs := make([]*ritm.DistributionPoint, shardCount)
	followers := make([]*ritm.Follower, shardCount)
	taps := make([]*killable, shardCount)
	for s := range leaders {
		leaders[s] = ritm.NewDistributionPointWithStorage(nil, ritm.NewMemoryBackend(), 0)
		defer leaders[s].Close()
		followDPs[s] = ritm.NewDistributionPointWithStorage(nil, ritm.NewMemoryBackend(), 0)
		defer followDPs[s].Close()
		followers[s] = ritm.NewFollower(followDPs[s], leaders[s])
		taps[s] = &killable{inner: leaders[s]}
	}
	fmt.Printf("① %d shards online: leader + follower each\n", shardCount)

	// 2. Four CAs, ring-sharded. Every process computes the same CA→shard
	//    map from the shard count alone.
	ring, err := ritm.NewRing(shardCount)
	if err != nil {
		return err
	}
	cas := make([]ritm.CAID, caCount)
	auths := make([]*ritm.CA, caCount)
	roots := make([]*ritm.Certificate, caCount)
	gens := make([]*serial.Generator, caCount)
	for i := range cas {
		cas[i] = ritm.CAID(fmt.Sprintf("CA-%02d", i))
		shard := ring.ShardFor(cas[i])
		authority, err := ritm.NewCA(ritm.CAConfig{ID: cas[i], Delta: delta, Publisher: leaders[shard]})
		if err != nil {
			return err
		}
		for _, dp := range []*ritm.DistributionPoint{leaders[shard], followDPs[shard]} {
			if err := dp.RegisterCA(cas[i], authority.PublicKey()); err != nil {
				return err
			}
		}
		if err := authority.PublishRoot(); err != nil {
			return err
		}
		if err := authority.PublishRefresh(); err != nil {
			return err
		}
		auths[i], roots[i] = authority, authority.RootCertificate()
		gens[i] = serial.NewGenerator(uint64(100+i), nil)
		fmt.Printf("   %s → shard %d\n", cas[i], shard)
	}

	// 3. One RA over the sharded origin: per-shard candidates
	//    [leader, follower], preferred first.
	lists := make([][]ritm.Origin, shardCount)
	for s := range lists {
		lists[s] = []ritm.Origin{taps[s], followDPs[s]}
	}
	so, err := ritm.NewShardedOrigin(lists, ritm.ShardedOriginOptions{Cooldown: 200 * time.Millisecond})
	if err != nil {
		return err
	}
	agent, err := ritm.NewRA(ritm.RAConfig{Roots: roots, Origin: so, Delta: delta})
	if err != nil {
		return err
	}

	// 4. Normal operation: every CA revokes a batch, followers ship the
	//    WAL, the RA pulls each suffix from its CA's shard leader.
	acked := make([][]serial.Number, caCount)
	for i, authority := range auths {
		acked[i] = gens[i].NextN(5)
		if _, err := authority.Revoke(acked[i]...); err != nil {
			return err
		}
		if err := authority.PublishRefresh(); err != nil {
			return err
		}
	}
	for s, f := range followers {
		if err := f.SyncOnce(); err != nil {
			return err
		}
		fmt.Printf("② shard %d follower replicated, lag now 0 (stats: %+v)\n", s, f.Stats())
	}
	if err := agent.SyncOnce(); err != nil {
		return err
	}
	fmt.Println("③ RA synced all CAs through the ring; per-shard origin pulls:")
	for s, st := range so.Stats().PerShard {
		fmt.Printf("   shard %d: pulls=%d failovers=%d preferred=candidate %d\n",
			s, st.Pulls, st.Failovers, st.Preferred)
	}

	// 5. The crash drill. One shard-0 CA revokes a batch; the leader
	//    accepts it and the RA sees it — but the leader dies before the
	//    follower's next replication tick.
	var victim int
	for i := range cas {
		if ring.ShardFor(cas[i]) == 0 {
			victim = i
			break
		}
	}
	lateMsg, err := auths[victim].Revoke(gens[victim].NextN(3)...)
	if err != nil {
		return err
	}
	if err := auths[victim].PublishRefresh(); err != nil {
		return err
	}
	if err := agent.SyncOnce(); err != nil {
		return err
	}
	preCrash, err := leaders[0].LatestRoot(cas[victim])
	if err != nil {
		return err
	}
	taps[0].dead.Store(true)
	fmt.Printf("④ shard 0 leader crashed with %d revocations of %s not yet shipped\n",
		len(lateMsg.Serials), cas[victim])

	// 6. Failover: the next sync demotes the corpse and reaches the
	//    follower, which answers ErrAhead (the RA's history is longer).
	//    Resync adopts the follower's shorter signed history — exactly the
	//    acknowledged prefix.
	if err := agent.SyncOnce(); err != nil {
		if !errors.Is(err, ritm.ErrAhead) {
			return err
		}
		if err := agent.Resync(cas[victim]); err != nil {
			return err
		}
	}
	for _, sn := range acked[victim] {
		st, err := agent.Status(cas[victim], sn)
		if err != nil {
			return err
		}
		if ok, err := st.Proof.Verify(sn, st.Root.Root, st.Root.N); err != nil || !ok {
			return fmt.Errorf("acknowledged revocation lost in failover: %v", err)
		}
	}
	fmt.Printf("⑤ RA failed over to shard 0 follower; all %d acknowledged revocations still provable\n",
		len(acked[victim]))

	// 7. Promotion: the follower serves the same signed roots it
	//    replicated — byte-identical, so edge caches keep answering 304 —
	//    and the CA replays the signed batch the dead leader never
	//    shipped. An ordinary publish: the follower verifies it against
	//    the same trust anchor.
	fRoot, err := followDPs[0].LatestRoot(cas[victim])
	if err != nil {
		return err
	}
	fmt.Printf("⑥ follower root covers n=%d (leader died at n=%d): ETag contract intact for the replicated prefix\n",
		fRoot.N, preCrash.N)
	auths[victim].SetPublisher(followDPs[0])
	if err := followDPs[0].PublishIssuance(lateMsg); err != nil {
		return err
	}
	if err := auths[victim].PublishRefresh(); err != nil {
		return err
	}
	if err := agent.SyncOnce(); err != nil {
		return err
	}
	sn := lateMsg.Serials[0]
	st, err := agent.Status(cas[victim], sn)
	if err != nil {
		return err
	}
	if ok, err := st.Proof.Verify(sn, st.Root.Root, st.Root.N); err != nil || !ok {
		return fmt.Errorf("replayed revocation not provable: %v", err)
	}
	fmt.Printf("⑦ CA replayed the missed batch to the promoted follower; RA back at n=%d — nothing lost\n",
		st.Root.N)

	// 8. The untouched shard never noticed.
	for s, st := range so.Stats().PerShard {
		fmt.Printf("   shard %d final: pulls=%d failovers=%d preferred=candidate %d\n",
			s, st.Pulls, st.Failovers, st.Preferred)
	}
	return nil
}
