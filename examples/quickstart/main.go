// Quickstart: the complete RITM pipeline in one process.
//
// It wires a CA to a CDN distribution point, replicates the dictionary on
// a Revocation Agent, proxies a TLS server through the RA, and connects
// with a RITM-supported client — first to a valid certificate, then to the
// same server after its certificate is revoked.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ritm"
	"ritm/internal/tlssim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const delta = 10 * time.Second

	// 1. A CA publishing to a CDN distribution point (§III).
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "QuickCA", Delta: delta, Publisher: dp})
	if err != nil {
		return err
	}
	if err := dp.RegisterCA("QuickCA", authority.PublicKey()); err != nil {
		return err
	}
	if err := authority.PublishRoot(); err != nil {
		return err
	}
	fmt.Println("① CA online, empty dictionary published to the distribution point")

	// 2. A Revocation Agent pulling through an edge server.
	agent, err := ritm.NewRA(ritm.RAConfig{
		Roots:  []*ritm.Certificate{authority.RootCertificate()},
		Origin: ritm.NewEdgeServer(dp, 0, nil),
		Delta:  delta,
	})
	if err != nil {
		return err
	}
	if err := agent.SyncOnce(); err != nil {
		return err
	}
	fmt.Println("② RA synchronized with the dissemination network")

	// 3. A TLS server with a CA-issued certificate. The server knows
	//    nothing about RITM (§III: no server changes required).
	serverKey, err := ritm.NewSigner()
	if err != nil {
		return err
	}
	leaf, err := authority.IssueServerCertificate("quick.example", serverKey.Public())
	if err != nil {
		return err
	}
	serverAddr, cleanup, err := startEchoServer(&ritm.TLSConfig{
		Chain: ritm.Chain{leaf},
		Key:   serverKey,
	})
	if err != nil {
		return err
	}
	defer cleanup()

	// 4. The RA's proxy on the client-server path (§IV, client-side model).
	proxy, err := agent.NewProxy("127.0.0.1:0", serverAddr)
	if err != nil {
		return err
	}
	defer proxy.Close()
	fmt.Printf("③ server %v behind RA proxy %v\n", serverAddr, proxy.Addr())

	// 5. A RITM-supported client connects: the on-path RA injects a fresh
	//    absence proof, which the client verifies against the CA key.
	pool, err := ritm.NewPool(authority.RootCertificate())
	if err != nil {
		return err
	}
	clientCfg := &ritm.ClientConfig{Pool: pool, Delta: delta, RequireStatus: true}
	conn, err := ritm.Dial("tcp", proxy.Addr().String(), "quick.example", clientCfg)
	if err != nil {
		return err
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		return err
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil {
		return err
	}
	fmt.Printf("④ connected with %d verified revocation status(es); echo: %q\n",
		conn.Verifier().ValidCount(), buf[:n])
	conn.Close()

	// 6. The certificate is revoked; the CA inserts it into its dictionary
	//    and the CDN carries it to the RA within ∆.
	if _, err := authority.RevokeCertificate(leaf); err != nil {
		return err
	}
	if err := agent.SyncOnce(); err != nil {
		return err
	}
	fmt.Printf("⑤ certificate %v revoked and disseminated\n", leaf.SerialNumber)

	// 7. The next handshake receives a presence proof and is refused.
	if _, err := ritm.Dial("tcp", proxy.Addr().String(), "quick.example", clientCfg); err != nil {
		fmt.Printf("⑥ new connection correctly refused: %v\n", err)
		return nil
	}
	return fmt.Errorf("revoked certificate was accepted")
}

// startEchoServer runs a TLS-sim echo server and returns its address and a
// shutdown function.
func startEchoServer(cfg *ritm.TLSConfig) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := tlssim.Server(raw, cfg)
				defer conn.Close()
				buf := make([]byte, 1024)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }, nil
}
