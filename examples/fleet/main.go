// Fleet: a multi-RA deployment sharing one edge server and one origin —
// the scaling story of RITM's dissemination tier (§II–III).
//
// Eight Revocation Agents replicate the same CA through a single
// TTL-caching edge server. Their fetchers start with an immediate first
// sync (no ∆ of ErrDesynchronized statuses after boot), pull with per-CA
// jitter (no fleet-wide stampede at ∆ boundaries), and concurrent misses
// for the same (ca, from) collapse into one origin fetch. The run prints
// how much of the fleet's pull traffic the edge absorbed.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"ritm"
	"ritm/internal/serial"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		delta = 1 * time.Second
		ras   = 8
	)

	// 1. CA → distribution point (the origin).
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "FleetCA", Delta: delta, Publisher: dp})
	if err != nil {
		return err
	}
	if err := dp.RegisterCA("FleetCA", authority.PublicKey()); err != nil {
		return err
	}
	if err := authority.PublishRoot(); err != nil {
		return err
	}
	refresher := authority.StartRefresherEvery(delta/2, nil)
	defer refresher.Shutdown()
	fmt.Println("① origin online, CA refreshing every ∆/2")

	// 2. One edge server shields the origin; its cache key is (ca, from),
	//    its TTL one ∆ — stale entries and superseded counts are swept.
	edge := ritm.NewEdgeServer(dp, delta, nil)

	// 3. A fleet of RAs pulls through the edge. Jitter smears each RA's
	//    pull inside the interval so the fleet does not stampede the edge
	//    at every ∆ boundary; the first sync runs immediately.
	agents := make([]*ritm.RA, ras)
	fetchers := make([]*ritm.Fetcher, ras)
	for i := range agents {
		agents[i], err = ritm.NewRA(ritm.RAConfig{
			Roots:  []*ritm.Certificate{authority.RootCertificate()},
			Origin: edge,
			Delta:  delta,
		})
		if err != nil {
			return err
		}
		fetchers[i] = agents[i].StartFetcherWith(ritm.FetcherOptions{
			Interval: delta / 2,
			Jitter:   delta / 4,
			OnError:  func(err error) { log.Printf("sync: %v", err) },
		})
	}
	defer func() {
		for _, f := range fetchers {
			f.Shutdown()
		}
	}()
	fmt.Printf("② %d RAs syncing through one edge (interval ∆/2, jitter ∆/4)\n", ras)

	// 4. The CA keeps revoking while the fleet syncs.
	gen := serial.NewGenerator(0xF1EE7, nil)
	var revoked atomic.Int64
	stopRevoker := make(chan struct{})
	revokerDone := make(chan struct{})
	go func() {
		defer close(revokerDone)
		ticker := time.NewTicker(delta / 3)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if _, err := authority.Revoke(gen.NextN(25)...); err != nil {
					log.Printf("revoke: %v", err)
					return
				}
				revoked.Add(25)
			case <-stopRevoker:
				return
			}
		}
	}()

	const runFor = 5 * delta
	fmt.Printf("③ revoking 25 certificates every ∆/3 for %v…\n", runFor)
	time.Sleep(runFor)
	close(stopRevoker)
	<-revokerDone
	time.Sleep(delta) // one last interval so the fleet converges

	// 5. The ledger: how much fleet load the dissemination tier absorbed.
	st := edge.Stats()
	origin := dp.Stats().Pulls
	total := st.Hits + st.Misses + st.CollapsedPulls
	fmt.Printf("④ fleet converged on %d revocations\n", revoked.Load())
	for i, a := range agents {
		r, err := a.Store().Replica("FleetCA")
		if err != nil {
			return err
		}
		fstats := fetchers[i].Stats()
		fmt.Printf("   RA%-2d count=%-4d syncs=%-3d errors=%d\n", i, r.Count(), fstats.Syncs, fstats.Errors)
	}
	fmt.Printf("⑤ edge: %d pulls served — %d hits, %d collapsed onto in-flight fetches, %d misses\n",
		total, st.Hits, st.CollapsedPulls, st.Misses)
	fmt.Printf("   cache: %d live entries, %d evicted (TTL + superseded counts)\n", st.Entries, st.Evictions)
	if total > 0 {
		fmt.Printf("   origin saw %d pulls for the fleet's %d — %.1f%% absorbed by the edge\n",
			origin, total, 100*float64(total-st.Misses)/float64(total))
	}
	return nil
}
