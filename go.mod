module ritm

go 1.22
