// Real-TLS interception benchmarks: what does the bump cost, and what
// does the RITM status check add on top of it? Three rungs:
//
//	direct       client → upstream, no middlebox (the floor)
//	bump         client → interceptor → upstream, no-op status source
//	bump+status  client → interceptor → upstream, live RA dictionary store
//
// bump+status − bump is the revocation check's data-plane overhead; CI
// emits the results to BENCH_8.ci.json and compares report-only against
// the committed BENCH_8.json.
package ritm_test

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"io"
	"math/big"
	"net"
	"testing"
	"time"

	"ritm"
	"ritm/internal/dictionary"
	"ritm/internal/interception"
	"ritm/internal/serial"
)

// nullStatusSource satisfies the status check without consulting any
// dictionary: the plain-bump baseline.
type nullStatusSource struct{}

func (nullStatusSource) Status(dictionary.CAID, serial.Number) (*dictionary.Status, []byte, error) {
	return &dictionary.Status{}, nil, nil
}

// benchPKI is a minimal real-x509 issuing CA whose CN doubles as the RITM
// CA identifier.
func benchPKI(b *testing.B, caID, host string, rawSN int64) (leaf tls.Certificate, pool *x509.CertPool, sn serial.Number) {
	b.Helper()
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: caID},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		b.Fatal(err)
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		b.Fatal(err)
	}
	leafKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	leafTmpl := &x509.Certificate{
		SerialNumber: big.NewInt(rawSN),
		Subject:      pkix.Name{CommonName: host},
		DNSNames:     []string{host},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(12 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	leafDER, err := x509.CreateCertificate(rand.Reader, leafTmpl, caCert, &leafKey.PublicKey, caKey)
	if err != nil {
		b.Fatal(err)
	}
	parsed, err := x509.ParseCertificate(leafDER)
	if err != nil {
		b.Fatal(err)
	}
	pool = x509.NewCertPool()
	pool.AddCert(caCert)
	sn, err = serial.New(big.NewInt(rawSN).Bytes())
	if err != nil {
		b.Fatal(err)
	}
	return tls.Certificate{Certificate: [][]byte{leafDER}, PrivateKey: leafKey, Leaf: parsed}, pool, sn
}

func benchTLSEcho(b *testing.B, leaf tls.Certificate) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	cfg := &tls.Config{Certificates: []tls.Certificate{leaf}}
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				conn := tls.Server(raw, cfg)
				defer conn.Close()
				io.Copy(conn, conn) //nolint:errcheck // echo until either side closes
			}()
		}
	}()
	return ln.Addr().String()
}

// handshakeLoop measures full TCP connect + TLS handshake + close against
// addr, trusting pool for serverName.
func handshakeLoop(b *testing.B, addr, serverName string, pool *x509.CertPool) {
	b.Helper()
	cfg := &tls.Config{ServerName: serverName, RootCAs: pool}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := tls.Dial("tcp", addr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

func BenchmarkInterceptHandshake(b *testing.B) {
	const host = "bench.example.com"
	leaf, upstreamPool, sn := benchPKI(b, "CA1", host, 0x5151)
	upstreamAddr := benchTLSEcho(b, leaf)

	mintRoot, err := interception.NewMintingRoot("Bench Bump Root", interception.KeyECDSA)
	if err != nil {
		b.Fatal(err)
	}
	mintPool := x509.NewCertPool()
	mintPool.AddCert(mintRoot.Certificate())

	b.Run("direct", func(b *testing.B) {
		handshakeLoop(b, upstreamAddr, host, upstreamPool)
	})

	b.Run("bump", func(b *testing.B) {
		it, err := interception.Listen("127.0.0.1:0", interception.Config{
			Status: nullStatusSource{},
			Minter: interception.NewMinter(mintRoot, 0),
			Target: upstreamAddr,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer it.Close()
		handshakeLoop(b, it.Addr().String(), host, mintPool)
	})

	b.Run("bump+status", func(b *testing.B) {
		// A live control plane: CA → distribution point → edge → RA, with
		// the upstream leaf's (CA, serial) resolvable in the dictionary.
		dp := ritm.NewDistributionPoint(nil)
		authority, err := ritm.NewCA(ritm.CAConfig{ID: "CA1", Delta: time.Hour, Publisher: dp})
		if err != nil {
			b.Fatal(err)
		}
		if err := dp.RegisterCA("CA1", authority.PublicKey()); err != nil {
			b.Fatal(err)
		}
		agent, err := ritm.NewRA(ritm.RAConfig{
			Roots:  []*ritm.Certificate{authority.RootCertificate()},
			Origin: ritm.NewEdgeServer(dp, 0, nil),
			Delta:  time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := authority.PublishRoot(); err != nil {
			b.Fatal(err)
		}
		// Churn the dictionary so the status check proves against a
		// non-trivial tree, then sync the replica.
		var victims []ritm.SerialNumber
		for i := int64(1); i <= 512; i++ {
			victims = append(victims, serial.FromUint64(uint64(0x10000+i)))
		}
		if _, err := authority.Revoke(victims...); err != nil {
			b.Fatal(err)
		}
		if err := authority.PublishRefresh(); err != nil {
			b.Fatal(err)
		}
		if err := agent.SyncOnce(); err != nil {
			b.Fatal(err)
		}
		if authority.IsRevoked(sn) {
			b.Fatal("benchmark leaf must not be revoked")
		}

		it, err := agent.NewInterceptor("127.0.0.1:0", interception.Config{
			Minter: interception.NewMinter(mintRoot, 0),
			Target: upstreamAddr,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer it.Close()
		handshakeLoop(b, it.Addr().String(), host, mintPool)
	})
}
