// Ablation benchmarks for the design choices DESIGN.md calls out: proof
// size and construction cost as the dictionary grows, batch size of
// dictionary inserts, edge-cache TTL, and the chain-proof extension's
// handshake cost.
package ritm_test

import (
	"fmt"
	"testing"
	"time"

	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/ra"
	"ritm/internal/serial"
)

// buildDict creates a replica holding n revocations.
func buildDict(b *testing.B, n int) (*dictionary.Replica, *serial.Generator) {
	b.Helper()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now().Unix()
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "ablate-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, now)
	if err != nil {
		b.Fatal(err)
	}
	gen := serial.NewGenerator(uint64(n), nil)
	if _, err := auth.Insert(gen.NextN(n), now); err != nil {
		b.Fatal(err)
	}
	replica := dictionary.NewReplica(auth.CA(), auth.PublicKey())
	log, err := auth.LogSuffix(0, auth.Count())
	if err != nil {
		b.Fatal(err)
	}
	if err := replica.Update(&dictionary.IssuanceMessage{Serials: log, Root: auth.SignedRoot()}); err != nil {
		b.Fatal(err)
	}
	return replica, gen
}

// BenchmarkAblationProofByDictionarySize measures absence-proof
// construction and reports the encoded status size as the dictionary
// grows: both must scale logarithmically (§VII-D: 500–900 bytes at the
// largest CRL).
func BenchmarkAblationProofByDictionarySize(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 339_557} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			replica, gen := buildDict(b, n)
			absent := make([]serial.Number, 256)
			for i := range absent {
				absent[i] = gen.Next()
			}
			status, err := replica.Prove(absent[0])
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(status.Encode())), "status-bytes")
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := replica.Prove(absent[i%len(absent)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInsertBatchSize measures the per-revocation cost of
// dictionary inserts at different batch sizes: batching amortizes the
// rebuild, chain rotation, and signature (Fig 2: "insert and update can be
// performed in batch").
func BenchmarkAblationInsertBatchSize(b *testing.B) {
	for _, batch := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			signer, err := cryptoutil.NewSigner(nil)
			if err != nil {
				b.Fatal(err)
			}
			now := time.Now().Unix()
			auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
				CA:     "ablate-ca",
				Signer: signer,
				Delta:  10 * time.Second,
			}, now)
			if err != nil {
				b.Fatal(err)
			}
			gen := serial.NewGenerator(uint64(batch), nil)
			if _, err := auth.Insert(gen.NextN(50_000), now); err != nil {
				b.Fatal(err)
			}
			batches := make([][]serial.Number, b.N)
			for i := range batches {
				batches[i] = gen.NextN(batch)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := auth.Insert(batches[i], now); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perRev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*batch)
			b.ReportMetric(perRev, "ns/revocation")
		})
	}
}

// BenchmarkAblationEdgeTTL measures a pull through an edge server with
// caching disabled (TTL=0, the Fig 5 worst case) versus enabled: the
// cache turns repeated pulls into hash-free memory reads and shields the
// origin.
func BenchmarkAblationEdgeTTL(b *testing.B) {
	for _, ttl := range []time.Duration{0, time.Hour} {
		b.Run(fmt.Sprintf("ttl=%v", ttl), func(b *testing.B) {
			signer, err := cryptoutil.NewSigner(nil)
			if err != nil {
				b.Fatal(err)
			}
			now := time.Now().Unix()
			auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
				CA:     "ablate-ca",
				Signer: signer,
				Delta:  10 * time.Second,
			}, now)
			if err != nil {
				b.Fatal(err)
			}
			dp := cdn.NewDistributionPoint(nil)
			if err := dp.RegisterCA("ablate-ca", auth.PublicKey()); err != nil {
				b.Fatal(err)
			}
			gen := serial.NewGenerator(9, nil)
			msg, err := auth.Insert(gen.NextN(10_000), now)
			if err != nil {
				b.Fatal(err)
			}
			if err := dp.PublishIssuance(msg); err != nil {
				b.Fatal(err)
			}
			edge := cdn.NewEdgeServer(dp, ttl, nil)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := edge.Pull("ablate-ca", 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := edge.Stats()
			if total := st.Hits + st.Misses; total > 0 {
				b.ReportMetric(float64(st.Hits)/float64(total), "cache-hit-ratio")
			}
		})
	}
}

// BenchmarkAblationStatusCache isolates the per-∆ status cache: the same
// Zipf-free repeated-serial stream against one RA store, once through the
// uncached Prove path (O(log n) proof construction + encoding per call)
// and once through the cached Status path (a sharded map read while the
// snapshot generation is unchanged). The reported cache-hit-rate makes
// the memoization visible next to the time/op delta.
func BenchmarkAblationStatusCache(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 339_557} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			signer, err := cryptoutil.NewSigner(nil)
			if err != nil {
				b.Fatal(err)
			}
			now := time.Now().Unix()
			caID := dictionary.CAID("ablate-cache-ca")
			auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
				CA:     caID,
				Signer: signer,
				Delta:  10 * time.Second,
			}, now)
			if err != nil {
				b.Fatal(err)
			}
			gen := serial.NewGenerator(uint64(n)^0xCACE, nil)
			if _, err := auth.Insert(gen.NextN(n), now); err != nil {
				b.Fatal(err)
			}
			root, err := cert.Issue(caID, signer, cert.Template{
				SerialNumber: serial.FromUint64(1),
				Subject:      string(caID),
				NotBefore:    now - 1,
				NotAfter:     now + 1<<30,
				PublicKey:    signer.Public(),
				IsCA:         true,
			})
			if err != nil {
				b.Fatal(err)
			}
			store, err := ra.NewStore(root)
			if err != nil {
				b.Fatal(err)
			}
			replica, err := store.Replica(caID)
			if err != nil {
				b.Fatal(err)
			}
			log, err := auth.LogSuffix(0, auth.Count())
			if err != nil {
				b.Fatal(err)
			}
			if err := replica.Update(&dictionary.IssuanceMessage{Serials: log, Root: auth.SignedRoot()}); err != nil {
				b.Fatal(err)
			}
			queries := gen.NextN(256) // absent: the deeper (two-leaf) proofs

			b.Run("prove", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					st, err := store.Prove(caID, queries[i%len(queries)])
					if err != nil {
						b.Fatal(err)
					}
					if len(st.Encode()) == 0 {
						b.Fatal("empty status")
					}
				}
			})
			b.Run("cached", func(b *testing.B) {
				before := store.CacheStats()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := store.Status(caID, queries[i%len(queries)]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				after := store.CacheStats()
				d := ra.CacheStats{Hits: after.Hits - before.Hits, Misses: after.Misses - before.Misses}
				b.ReportMetric(d.HitRate(), "cache-hit-rate")
				b.ReportMetric(float64(store.SnapshotSwaps()), "snapshot-swaps")
			})
		})
	}
}

// BenchmarkAblationShardedPrune measures the full §VIII expiry-shard
// cycle: filling four quarterly shards (one 100-revocation batch each)
// and pruning the two expired ones. Setup and prune are timed together —
// the interesting quantity is the whole lifecycle cost, and keeping the
// timed section macroscopic keeps the benchmark calibration bounded.
func BenchmarkAblationShardedPrune(b *testing.B) {
	const quarter = 90 * 24 * time.Hour
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	now := int64(1_400_000_000)
	gen := serial.NewGenerator(11, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := dictionary.NewShardedAuthority(dictionary.ShardConfig{
			Base:  dictionary.AuthorityConfig{CA: "ablate-ca", Signer: signer, Delta: 10 * time.Second, ChainLength: 16},
			Width: quarter,
		})
		if err != nil {
			b.Fatal(err)
		}
		for q := 0; q < 4; q++ {
			exp := now + int64(q)*int64(quarter/time.Second) + 1
			batch := gen.NextN(100)
			for _, sn := range batch {
				if _, err := s.Insert(sn, exp, now); err != nil {
					b.Fatal(err)
				}
			}
		}
		// Two quarters elapse: the first two shards are reclaimed.
		dropped, _ := s.PruneExpired(now + 2*int64(quarter/time.Second))
		if dropped != 2 {
			b.Fatalf("dropped %d shards", dropped)
		}
	}
}
