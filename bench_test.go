// Benchmark harness: one target per table and figure of the paper's
// evaluation (§VII), plus micro-benchmarks for the Table III operations.
// Run everything with
//
//	go test -bench=. -benchmem
//
// The experiment benches execute the quick-mode runners (full-fidelity
// tables are produced by `ritm-bench`); the Tab III micro-benches measure
// the production code paths directly against the largest-CRL dictionary.
package ritm_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"ritm"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/experiments"
	"ritm/internal/ra"
	"ritm/internal/serial"
	"ritm/internal/tlssim"
	"ritm/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4RevocationSeries regenerates Fig 4 (revocation series).
func BenchmarkFig4RevocationSeries(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5DownloadCDF regenerates Fig 5 (download-time CDFs).
func BenchmarkFig5DownloadCDF(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6MonthlyBills regenerates Fig 6 (monthly CA bills).
func BenchmarkFig6MonthlyBills(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7CommOverhead regenerates Fig 7 (per-∆ bandwidth).
func BenchmarkFig7CommOverhead(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTab1MessageSequence regenerates Tab I (dissemination sequence).
func BenchmarkTab1MessageSequence(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTab2CostPerRA regenerates Tab II (cost vs ∆ × clients/RA).
func BenchmarkTab2CostPerRA(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkTab4Comparison regenerates Tab IV (scheme comparison).
func BenchmarkTab4Comparison(b *testing.B) { benchExperiment(b, "tab4") }

// BenchmarkStorageOverhead regenerates the §VII-D storage table.
func BenchmarkStorageOverhead(b *testing.B) { benchExperiment(b, "storage") }

// BenchmarkThroughputDerived regenerates the §VII-D throughput table.
func BenchmarkThroughputDerived(b *testing.B) { benchExperiment(b, "throughput") }

// tab3Fixture holds the Table III measurement environment, built once.
type tab3Fixture struct {
	replica   *dictionary.Replica
	pub       []byte
	absent    []serial.Number
	status    *dictionary.Status
	statusSN  serial.Number
	chainBody []byte
	recordHdr []byte
}

var (
	tab3Once sync.Once
	tab3Fix  *tab3Fixture
	tab3Err  error
)

func getTab3Fixture(b *testing.B) *tab3Fixture {
	b.Helper()
	tab3Once.Do(func() { tab3Fix, tab3Err = buildTab3Fixture() })
	if tab3Err != nil {
		b.Fatal(tab3Err)
	}
	return tab3Fix
}

func buildTab3Fixture() (*tab3Fixture, error) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	now := time.Now().Unix()
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "bench-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, now)
	if err != nil {
		return nil, err
	}
	gen := serial.NewGenerator(1, nil)
	if _, err := auth.Insert(gen.NextN(workload.LargestCRLEntries), now); err != nil {
		return nil, err
	}
	replica := dictionary.NewReplica(auth.CA(), auth.PublicKey())
	log, err := auth.LogSuffix(0, auth.Count())
	if err != nil {
		return nil, err
	}
	if err := replica.Update(&dictionary.IssuanceMessage{Serials: log, Root: auth.SignedRoot()}); err != nil {
		return nil, err
	}

	absent := make([]serial.Number, 1024)
	for i := range absent {
		absent[i] = gen.Next()
	}
	status, err := replica.Prove(absent[0])
	if err != nil {
		return nil, err
	}

	// A 3-certificate chain body for the parsing bench.
	rootKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	rootCert, err := benchCert("bench-root", rootKey, rootKey.Public(), true, 1)
	if err != nil {
		return nil, err
	}
	interKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	interCert, err := benchCert("bench-root", rootKey, interKey.Public(), true, 2)
	if err != nil {
		return nil, err
	}
	leafKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	leafCert, err := benchCert("bench-root", interKey, leafKey.Public(), false, 3)
	if err != nil {
		return nil, err
	}
	chainBody := (&tlssim.CertificateMsg{Chain: ritm.Chain{leafCert, interCert, rootCert}}).Marshal().Body

	return &tab3Fixture{
		replica:   replica,
		pub:       auth.PublicKey(),
		absent:    absent,
		status:    status,
		statusSN:  absent[0],
		chainBody: chainBody,
		recordHdr: []byte{22, 3, 3, 0x01, 0x40},
	}, nil
}

func benchCert(issuer string, issuerKey *cryptoutil.Signer, pub []byte, isCA bool, sn uint64) (*ritm.Certificate, error) {
	now := time.Now().Unix()
	return cert.Issue(dictionary.CAID(issuer), issuerKey, cert.Template{
		SerialNumber: serial.FromUint64(sn),
		Subject:      issuer + "-subject",
		NotBefore:    now - 1,
		NotAfter:     now + 1<<20,
		PublicKey:    pub,
		IsCA:         isCA,
	})
}

// BenchmarkTab3TLSDetection measures the per-record DPI classification
// ("TLS detection" row of Tab III).
func BenchmarkTab3TLSDetection(b *testing.B) {
	f := getTab3Fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ra.DetectRecord(f.recordHdr); !ok {
			b.Fatal("detection failed")
		}
	}
}

// BenchmarkTab3CertParsing measures parsing a 3-certificate chain from a
// handshake body ("Certificates parsing" row of Tab III).
func BenchmarkTab3CertParsing(b *testing.B) {
	f := getTab3Fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ra.ParseCertificates(f.chainBody); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab3ProofConstruction measures absence-proof construction
// against the largest-CRL dictionary ("Proof construction" row).
func BenchmarkTab3ProofConstruction(b *testing.B) {
	f := getTab3Fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.replica.Prove(f.absent[i%len(f.absent)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab3ProofValidation measures client-side proof verification
// ("Proof validation" row).
func BenchmarkTab3ProofValidation(b *testing.B) {
	f := getTab3Fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.status.Proof.Verify(f.statusSN, f.status.Root.Root, f.status.Root.N); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab3SigFreshnessValidation measures root-signature plus
// freshness-chain verification ("Sig. and freshness valid." row).
func BenchmarkTab3SigFreshnessValidation(b *testing.B) {
	f := getTab3Fixture(b)
	now := time.Now().Unix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.status.Root.VerifySignature(f.pub); err != nil {
			b.Fatal(err)
		}
		p := f.status.Root.Period(now)
		if err := cryptoutil.VerifyChainValue(f.status.Root.Anchor, f.status.Freshness, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDictInsert1000 measures a CA inserting 1,000-revocation batches
// into a largest-CRL-sized dictionary (§VII-D).
func BenchmarkDictInsert1000(b *testing.B) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now().Unix()
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "bench-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, now)
	if err != nil {
		b.Fatal(err)
	}
	gen := serial.NewGenerator(2, nil)
	if _, err := auth.Insert(gen.NextN(workload.LargestCRLEntries), now); err != nil {
		b.Fatal(err)
	}
	batches := make([][]serial.Number, b.N)
	for i := range batches {
		batches[i] = gen.NextN(1000)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := auth.Insert(batches[i], now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDictUpdate1000 measures an RA replaying 1,000-revocation
// issuance messages (§VII-D).
func BenchmarkDictUpdate1000(b *testing.B) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now().Unix()
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "bench-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, now)
	if err != nil {
		b.Fatal(err)
	}
	gen := serial.NewGenerator(3, nil)
	if _, err := auth.Insert(gen.NextN(workload.LargestCRLEntries), now); err != nil {
		b.Fatal(err)
	}
	replica := dictionary.NewReplica(auth.CA(), auth.PublicKey())
	log, err := auth.LogSuffix(0, auth.Count())
	if err != nil {
		b.Fatal(err)
	}
	if err := replica.Update(&dictionary.IssuanceMessage{Serials: log, Root: auth.SignedRoot()}); err != nil {
		b.Fatal(err)
	}
	msgs := make([]*dictionary.IssuanceMessage, b.N)
	for i := range msgs {
		msg, err := auth.Insert(gen.NextN(1000), now)
		if err != nil {
			b.Fatal(err)
		}
		msgs[i] = msg
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := replica.Update(msgs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandshakeOverhead measures a full RITM-protected handshake
// through a live RA proxy on loopback, the §VII-D latency experiment.
func BenchmarkHandshakeOverhead(b *testing.B) {
	env := newBenchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := ritm.Dial("tcp", env.proxyAddr, "bench.example", &ritm.ClientConfig{
			Pool:          env.pool,
			Delta:         10 * time.Second,
			RequireStatus: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkHandshakeDirect is the no-RA baseline for
// BenchmarkHandshakeOverhead.
func BenchmarkHandshakeDirect(b *testing.B) {
	env := newBenchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := tlssim.Dial("tcp", env.serverAddr, &ritm.TLSConfig{
			Pool:       env.pool,
			ServerName: "bench.example",
		})
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

type benchDeployment struct {
	pool       *ritm.Pool
	serverAddr string
	proxyAddr  string
}

func newBenchDeployment(b *testing.B) *benchDeployment {
	b.Helper()
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "BenchCA", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		b.Fatal(err)
	}
	if err := dp.RegisterCA("BenchCA", authority.PublicKey()); err != nil {
		b.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		b.Fatal(err)
	}
	agent, err := ritm.NewRA(ritm.RAConfig{
		Roots:  []*ritm.Certificate{authority.RootCertificate()},
		Origin: ritm.NewEdgeServer(dp, 0, nil),
		Delta:  10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		b.Fatal(err)
	}
	key, err := ritm.NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	leaf, err := authority.IssueServerCertificate("bench.example", key.Public())
	if err != nil {
		b.Fatal(err)
	}
	pool, err := ritm.NewPool(authority.RootCertificate())
	if err != nil {
		b.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serverCfg := &ritm.TLSConfig{Chain: ritm.Chain{leaf}, Key: key}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := tlssim.Server(raw, serverCfg)
				defer conn.Close()
				buf := make([]byte, 256)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	proxy, err := agent.NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		proxy.Close()
		ln.Close()
		wg.Wait()
	})
	return &benchDeployment{
		pool:       pool,
		serverAddr: ln.Addr().String(),
		proxyAddr:  proxy.Addr().String(),
	}
}
