// Benchmark harness: one target per table and figure of the paper's
// evaluation (§VII), plus micro-benchmarks for the Table III operations.
// Run everything with
//
//	go test -bench=. -benchmem
//
// The experiment benches execute the quick-mode runners (full-fidelity
// tables are produced by `ritm-bench`); the Tab III micro-benches measure
// the production code paths directly against the largest-CRL dictionary.
package ritm_test

import (
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ritm"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/experiments"
	"ritm/internal/ra"
	"ritm/internal/serial"
	"ritm/internal/tlssim"
	"ritm/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4RevocationSeries regenerates Fig 4 (revocation series).
func BenchmarkFig4RevocationSeries(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5DownloadCDF regenerates Fig 5 (download-time CDFs).
func BenchmarkFig5DownloadCDF(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6MonthlyBills regenerates Fig 6 (monthly CA bills).
func BenchmarkFig6MonthlyBills(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7CommOverhead regenerates Fig 7 (per-∆ bandwidth).
func BenchmarkFig7CommOverhead(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTab1MessageSequence regenerates Tab I (dissemination sequence).
func BenchmarkTab1MessageSequence(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTab2CostPerRA regenerates Tab II (cost vs ∆ × clients/RA).
func BenchmarkTab2CostPerRA(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkTab4Comparison regenerates Tab IV (scheme comparison).
func BenchmarkTab4Comparison(b *testing.B) { benchExperiment(b, "tab4") }

// BenchmarkStorageOverhead regenerates the §VII-D storage table.
func BenchmarkStorageOverhead(b *testing.B) { benchExperiment(b, "storage") }

// BenchmarkThroughputDerived regenerates the §VII-D throughput table.
func BenchmarkThroughputDerived(b *testing.B) { benchExperiment(b, "throughput") }

// tab3Fixture holds the Table III measurement environment, built once.
type tab3Fixture struct {
	replica   *dictionary.Replica
	pub       []byte
	absent    []serial.Number
	status    *dictionary.Status
	statusSN  serial.Number
	chainBody []byte
	recordHdr []byte
}

var (
	tab3Once sync.Once
	tab3Fix  *tab3Fixture
	tab3Err  error
)

func getTab3Fixture(b *testing.B) *tab3Fixture {
	b.Helper()
	tab3Once.Do(func() { tab3Fix, tab3Err = buildTab3Fixture() })
	if tab3Err != nil {
		b.Fatal(tab3Err)
	}
	return tab3Fix
}

func buildTab3Fixture() (*tab3Fixture, error) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	now := time.Now().Unix()
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "bench-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, now)
	if err != nil {
		return nil, err
	}
	gen := serial.NewGenerator(1, nil)
	if _, err := auth.Insert(gen.NextN(workload.LargestCRLEntries), now); err != nil {
		return nil, err
	}
	replica := dictionary.NewReplica(auth.CA(), auth.PublicKey())
	log, err := auth.LogSuffix(0, auth.Count())
	if err != nil {
		return nil, err
	}
	if err := replica.Update(&dictionary.IssuanceMessage{Serials: log, Root: auth.SignedRoot()}); err != nil {
		return nil, err
	}

	absent := make([]serial.Number, 1024)
	for i := range absent {
		absent[i] = gen.Next()
	}
	status, err := replica.Prove(absent[0])
	if err != nil {
		return nil, err
	}

	// A 3-certificate chain body for the parsing bench.
	rootKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	rootCert, err := benchCert("bench-root", rootKey, rootKey.Public(), true, 1)
	if err != nil {
		return nil, err
	}
	interKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	interCert, err := benchCert("bench-root", rootKey, interKey.Public(), true, 2)
	if err != nil {
		return nil, err
	}
	leafKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	leafCert, err := benchCert("bench-root", interKey, leafKey.Public(), false, 3)
	if err != nil {
		return nil, err
	}
	chainBody := (&tlssim.CertificateMsg{Chain: ritm.Chain{leafCert, interCert, rootCert}}).Marshal().Body

	return &tab3Fixture{
		replica:   replica,
		pub:       auth.PublicKey(),
		absent:    absent,
		status:    status,
		statusSN:  absent[0],
		chainBody: chainBody,
		recordHdr: []byte{22, 3, 3, 0x01, 0x40},
	}, nil
}

func benchCert(issuer string, issuerKey *cryptoutil.Signer, pub []byte, isCA bool, sn uint64) (*ritm.Certificate, error) {
	now := time.Now().Unix()
	return cert.Issue(dictionary.CAID(issuer), issuerKey, cert.Template{
		SerialNumber: serial.FromUint64(sn),
		Subject:      issuer + "-subject",
		NotBefore:    now - 1,
		NotAfter:     now + 1<<20,
		PublicKey:    pub,
		IsCA:         isCA,
	})
}

// BenchmarkTab3TLSDetection measures the per-record DPI classification
// ("TLS detection" row of Tab III).
func BenchmarkTab3TLSDetection(b *testing.B) {
	f := getTab3Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ra.DetectRecord(f.recordHdr); !ok {
			b.Fatal("detection failed")
		}
	}
}

// BenchmarkTab3CertParsing measures parsing a 3-certificate chain from a
// handshake body ("Certificates parsing" row of Tab III).
func BenchmarkTab3CertParsing(b *testing.B) {
	f := getTab3Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ra.ParseCertificates(f.chainBody); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab3ProofConstruction measures absence-proof construction
// against the largest-CRL dictionary ("Proof construction" row).
func BenchmarkTab3ProofConstruction(b *testing.B) {
	f := getTab3Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.replica.Prove(f.absent[i%len(f.absent)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab3ProofValidation measures client-side proof verification
// ("Proof validation" row).
func BenchmarkTab3ProofValidation(b *testing.B) {
	f := getTab3Fixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.status.Proof.Verify(f.statusSN, f.status.Root.Root, f.status.Root.N); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab3SigFreshnessValidation measures root-signature plus
// freshness-chain verification ("Sig. and freshness valid." row).
func BenchmarkTab3SigFreshnessValidation(b *testing.B) {
	f := getTab3Fixture(b)
	now := time.Now().Unix()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.status.Root.VerifySignature(f.pub); err != nil {
			b.Fatal(err)
		}
		p := f.status.Root.Period(now)
		if err := cryptoutil.VerifyChainValue(f.status.Root.Anchor, f.status.Freshness, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDictInsert1000 measures a CA inserting 1,000-revocation batches
// into a largest-CRL-sized dictionary (§VII-D).
func BenchmarkDictInsert1000(b *testing.B) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now().Unix()
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "bench-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, now)
	if err != nil {
		b.Fatal(err)
	}
	gen := serial.NewGenerator(2, nil)
	if _, err := auth.Insert(gen.NextN(workload.LargestCRLEntries), now); err != nil {
		b.Fatal(err)
	}
	batches := make([][]serial.Number, b.N)
	for i := range batches {
		batches[i] = gen.NextN(1000)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := auth.Insert(batches[i], now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDictUpdate1000 measures an RA replaying 1,000-revocation
// issuance messages (§VII-D).
func BenchmarkDictUpdate1000(b *testing.B) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now().Unix()
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "bench-ca",
		Signer: signer,
		Delta:  10 * time.Second,
	}, now)
	if err != nil {
		b.Fatal(err)
	}
	gen := serial.NewGenerator(3, nil)
	if _, err := auth.Insert(gen.NextN(workload.LargestCRLEntries), now); err != nil {
		b.Fatal(err)
	}
	replica := dictionary.NewReplica(auth.CA(), auth.PublicKey())
	log, err := auth.LogSuffix(0, auth.Count())
	if err != nil {
		b.Fatal(err)
	}
	if err := replica.Update(&dictionary.IssuanceMessage{Serials: log, Root: auth.SignedRoot()}); err != nil {
		b.Fatal(err)
	}
	msgs := make([]*dictionary.IssuanceMessage, b.N)
	for i := range msgs {
		msg, err := auth.Insert(gen.NextN(1000), now)
		if err != nil {
			b.Fatal(err)
		}
		msgs[i] = msg
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := replica.Update(msgs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// hotpathEnv is the fixture for the parallel hot-path benchmarks: an RA
// store replicating a largest-CRL-sized dictionary, the authority feeding
// it, and a Zipf-ranked query pool mixing revoked and absent serials (the
// internal/workload popularity model: a few certificates carry most of
// the traffic).
type hotpathEnv struct {
	store   *ra.Store
	auth    *dictionary.Authority
	replica *dictionary.Replica
	gen     *serial.Generator // the dictionary's serial space; reused for sync batches
	queries []serial.Number
	caID    dictionary.CAID
	syncMu  sync.Mutex // serializes concurrent-sync writers across benchmarks
}

var (
	// Fixtures are built once per layout and shared across benchmarks; the
	// sync variant keeps inserting into its dictionary, so it gets fixtures
	// of its own: the read-only benchmarks (prove, hot, cold) must measure
	// an identical corpus on every run, including -count reruns.
	hotpathMu      sync.Mutex
	hotpathFix     = map[dictionary.LayoutKind]*hotpathEnv{}
	hotpathSyncFix = map[dictionary.LayoutKind]*hotpathEnv{}
)

func getHotpathEnv(b *testing.B, layout dictionary.LayoutKind) *hotpathEnv {
	return cachedHotpathEnv(b, hotpathFix, layout)
}

func getHotpathSyncEnv(b *testing.B, layout dictionary.LayoutKind) *hotpathEnv {
	return cachedHotpathEnv(b, hotpathSyncFix, layout)
}

func cachedHotpathEnv(b *testing.B, cache map[dictionary.LayoutKind]*hotpathEnv, layout dictionary.LayoutKind) *hotpathEnv {
	b.Helper()
	hotpathMu.Lock()
	defer hotpathMu.Unlock()
	env, ok := cache[layout]
	if !ok {
		var err error
		if env, err = buildHotpathEnv(layout); err != nil {
			b.Fatal(err)
		}
		cache[layout] = env
	}
	return env
}

func buildHotpathEnv(layout dictionary.LayoutKind) (*hotpathEnv, error) {
	const caID = dictionary.CAID("hotpath-ca")
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		return nil, err
	}
	now := time.Now().Unix()
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     caID,
		Signer: signer,
		Delta:  10 * time.Second,
		Layout: layout,
	}, now)
	if err != nil {
		return nil, err
	}
	gen := serial.NewGenerator(0x407, nil)
	revoked := gen.NextN(workload.LargestCRLEntries)
	if _, err := auth.Insert(revoked, now); err != nil {
		return nil, err
	}
	root, err := cert.Issue(caID, signer, cert.Template{
		SerialNumber: serial.FromUint64(1),
		Subject:      string(caID),
		NotBefore:    now - 1,
		NotAfter:     now + 1<<30,
		PublicKey:    signer.Public(),
		IsCA:         true,
	})
	if err != nil {
		return nil, err
	}
	store, err := ra.NewStoreWithLayout(layout, root)
	if err != nil {
		return nil, err
	}
	replica, err := store.Replica(caID)
	if err != nil {
		return nil, err
	}
	log, err := auth.LogSuffix(0, auth.Count())
	if err != nil {
		return nil, err
	}
	if err := replica.Update(&dictionary.IssuanceMessage{Serials: log, Root: auth.SignedRoot()}); err != nil {
		return nil, err
	}

	// Query pool: half revoked (presence proofs), half absent (absence
	// proofs), shuffled so Zipf rank does not correlate with kind.
	const poolSize = 8192
	absentGen := serial.NewGenerator(0xA85E27, nil)
	queries := make([]serial.Number, 0, poolSize)
	for i := 0; i < poolSize/2; i++ {
		queries = append(queries, revoked[(i*977)%len(revoked)])
		queries = append(queries, absentGen.Next())
	}
	rng := mrand.New(mrand.NewSource(42))
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })

	return &hotpathEnv{
		store:   store,
		auth:    auth,
		replica: replica,
		gen:     gen,
		queries: queries,
		caID:    caID,
	}, nil
}

// zipfQueries returns a per-goroutine Zipf rank source over the pool.
func (env *hotpathEnv) zipfQueries(seed int64) func() serial.Number {
	r := mrand.New(mrand.NewSource(seed))
	z := mrand.NewZipf(r, 1.2, 1, uint64(len(env.queries)-1))
	return func() serial.Number { return env.queries[z.Uint64()] }
}

// reportHotpathMetrics attaches the cache-effectiveness metrics to a
// parallel benchmark run: hit rate over the run and the number of
// snapshot swaps absorbed, so BENCH_*.json entries can track the
// hot-path trajectory across PRs.
func reportHotpathMetrics(b *testing.B, store *ra.Store, before ra.CacheStats, swapsBefore uint64) {
	b.Helper()
	after := store.CacheStats()
	d := ra.CacheStats{
		Hits:   after.Hits - before.Hits,
		Misses: after.Misses - before.Misses,
	}
	b.ReportMetric(d.HitRate(), "cache-hit-rate")
	b.ReportMetric(float64(store.SnapshotSwaps()-swapsBefore), "snapshot-swaps")
}

// BenchmarkProveParallel is the cold path: every operation constructs and
// encodes a fresh proof from the current snapshot (the seed recomputed
// this under a global RWMutex on every proxied connection; now it is
// lock-free but still O(log n) hashing + encoding). Compare with
// BenchmarkStatusParallel/hot for the per-∆ cache win.
func BenchmarkProveParallel(b *testing.B) {
	for _, layout := range dictionary.Layouts() {
		b.Run(layout.String(), func(b *testing.B) {
			env := getHotpathEnv(b, layout)
			var seeds atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				next := env.zipfQueries(seeds.Add(1))
				for pb.Next() {
					st, err := env.store.Prove(env.caID, next())
					if err != nil {
						b.Error(err) // Fatal must not be called off the benchmark goroutine
						return
					}
					if enc := st.Encode(); len(enc) == 0 {
						b.Error("empty status")
						return
					}
				}
			})
		})
	}
}

// BenchmarkStatusParallel measures the data-path Status call under
// parallel load:
//
//   - hot: Zipf-repeated serials against a quiescent dictionary — the
//     per-∆ cache serves almost everything as one sharded map read;
//   - cold: near-unique serials — every lookup misses and fills;
//   - sync: the hot stream while a writer applies an issuance batch every
//     millisecond, forcing snapshot swaps and cache re-fills (the
//     reads-during-sync contention the seed serialized on Store.mu).
//
// Both dictionary layouts run every mode: the status cache sits in front
// of Prove, so the layout only shows on misses — the per-layout sub-runs
// let the dictionary-bench CI artifact compare the two side by side.
func BenchmarkStatusParallel(b *testing.B) {
	for _, layout := range dictionary.Layouts() {
		b.Run(layout.String(), func(b *testing.B) {
			b.Run("hot", func(b *testing.B) {
				env := getHotpathEnv(b, layout)
				var seeds atomic.Int64
				before, swaps := env.store.CacheStats(), env.store.SnapshotSwaps()
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					next := env.zipfQueries(seeds.Add(1))
					for pb.Next() {
						if _, _, err := env.store.Status(env.caID, next()); err != nil {
							b.Error(err)
							return
						}
					}
				})
				reportHotpathMetrics(b, env.store, before, swaps)
			})

			b.Run("cold", func(b *testing.B) {
				env := getHotpathEnv(b, layout)
				// A dedicated absent stream, cycled by atomic index: the pool
				// is large enough that re-touching a key usually happens after
				// its generation-mates were already evicted entry by entry.
				coldGen := serial.NewGenerator(0xC01D, nil)
				pool := coldGen.NextN(1 << 18)
				var idx atomic.Int64
				before, swaps := env.store.CacheStats(), env.store.SnapshotSwaps()
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						sn := pool[int(idx.Add(1))%len(pool)]
						if _, _, err := env.store.Status(env.caID, sn); err != nil {
							b.Error(err)
							return
						}
					}
				})
				reportHotpathMetrics(b, env.store, before, swaps)
			})

			b.Run("sync", func(b *testing.B) {
				env := getHotpathSyncEnv(b, layout)
				env.syncMu.Lock()
				defer env.syncMu.Unlock()
				stop := make(chan struct{})
				var writerWG sync.WaitGroup
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					ticker := time.NewTicker(time.Millisecond)
					defer ticker.Stop()
					for {
						select {
						case <-stop:
							return
						case <-ticker.C:
							msg, err := env.auth.Insert(env.gen.NextN(100), time.Now().Unix())
							if err != nil {
								b.Error(err)
								return
							}
							if err := env.replica.Update(msg); err != nil {
								b.Error(err)
								return
							}
						}
					}
				}()
				var seeds atomic.Int64
				before, swaps := env.store.CacheStats(), env.store.SnapshotSwaps()
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					next := env.zipfQueries(seeds.Add(1))
					for pb.Next() {
						if _, _, err := env.store.Status(env.caID, next()); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				close(stop)
				writerWG.Wait()
				reportHotpathMetrics(b, env.store, before, swaps)
			})
		})
	}
}

// BenchmarkHandshakeOverhead measures a full RITM-protected handshake
// through a live RA proxy on loopback, the §VII-D latency experiment.
func BenchmarkHandshakeOverhead(b *testing.B) {
	env := newBenchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := ritm.Dial("tcp", env.proxyAddr, "bench.example", &ritm.ClientConfig{
			Pool:          env.pool,
			Delta:         10 * time.Second,
			RequireStatus: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
	b.StopTimer()
	b.ReportMetric(env.agent.CacheStats().HitRate(), "cache-hit-rate")
	b.ReportMetric(float64(env.agent.Store().SnapshotSwaps()), "snapshot-swaps")
}

// BenchmarkHandshakeDirect is the no-RA baseline for
// BenchmarkHandshakeOverhead.
func BenchmarkHandshakeDirect(b *testing.B) {
	env := newBenchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := tlssim.Dial("tcp", env.serverAddr, &ritm.TLSConfig{
			Pool:       env.pool,
			ServerName: "bench.example",
		})
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

type benchDeployment struct {
	pool       *ritm.Pool
	agent      *ritm.RA
	serverAddr string
	proxyAddr  string
}

func newBenchDeployment(b *testing.B) *benchDeployment {
	b.Helper()
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "BenchCA", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		b.Fatal(err)
	}
	if err := dp.RegisterCA("BenchCA", authority.PublicKey()); err != nil {
		b.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		b.Fatal(err)
	}
	agent, err := ritm.NewRA(ritm.RAConfig{
		Roots:  []*ritm.Certificate{authority.RootCertificate()},
		Origin: ritm.NewEdgeServer(dp, 0, nil),
		Delta:  10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		b.Fatal(err)
	}
	key, err := ritm.NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	leaf, err := authority.IssueServerCertificate("bench.example", key.Public())
	if err != nil {
		b.Fatal(err)
	}
	pool, err := ritm.NewPool(authority.RootCertificate())
	if err != nil {
		b.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serverCfg := &ritm.TLSConfig{Chain: ritm.Chain{leaf}, Key: key}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := tlssim.Server(raw, serverCfg)
				defer conn.Close()
				buf := make([]byte, 256)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	proxy, err := agent.NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		proxy.Close()
		ln.Close()
		wg.Wait()
	})
	return &benchDeployment{
		pool:       pool,
		agent:      agent,
		serverAddr: ln.Addr().String(),
		proxyAddr:  proxy.Addr().String(),
	}
}
