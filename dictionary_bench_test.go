// Dictionary-layout benchmarks: the per-∆-cycle insert cost of the sorted
// and forest commitment structures across corpus sizes, for the two serial
// distributions that matter — uniform (random serials, the realistic CA
// workload) and right-edge (monotonically increasing serials, the sorted
// layout's best case). The reported hashed-nodes/cycle metric counts actual
// hash computations, isolating the algorithmic cost from allocator noise;
// ns/op measures the wall-clock per cycle.
//
// The tentpole claim: at the paper's largest-CRL size (339,557 entries) and
// beyond, the forest layout's uniform-insert cost is ≥10× below the sorted
// layout's (which rehashes O(n) per uniform batch), and roughly flat in n,
// while right-edge inserts stay within noise of the sorted layout's
// incremental O(k·log n) path.
package ritm_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/workload"
)

// uniformInsertBatch is the per-∆ batch size: k new revocations per cycle,
// small relative to the corpus (a CA revokes a handful of certificates per
// dissemination interval, §VII-A).
const uniformInsertBatch = 64

// rightEdgeGen produces strictly increasing serials beyond any serial the
// workload generator can plausibly draw: a 12-byte 0xff prefix followed by
// a big-endian counter.
type rightEdgeGen struct{ next uint64 }

func (g *rightEdgeGen) batch(k int) []serial.Number {
	out := make([]serial.Number, k)
	for i := range out {
		g.next++
		b := make([]byte, serial.MaxLen)
		for j := 0; j < 12; j++ {
			b[j] = 0xff
		}
		binary.BigEndian.PutUint64(b[12:], g.next)
		s, err := serial.New(b)
		if err != nil {
			panic(err)
		}
		out[i] = s
	}
	return out
}

// BenchmarkUniformInsert measures one ∆ cycle (one k-insert batch) against
// a pre-built dictionary of n entries, per layout and serial distribution.
func BenchmarkUniformInsert(b *testing.B) {
	for _, n := range []int{10_000, 100_000, workload.LargestCRLEntries, 1_000_000} {
		for _, layout := range dictionary.Layouts() {
			for _, mode := range []string{"uniform", "rightedge"} {
				b.Run(fmt.Sprintf("n=%d/%s/%s", n, layout, mode), func(b *testing.B) {
					gen := serial.NewGenerator(uint64(n)^0x10_5E27, nil)
					tree := dictionary.NewTreeWithLayout(layout)
					if err := tree.InsertBatch(gen.NextN(n)); err != nil {
						b.Fatal(err)
					}
					edge := &rightEdgeGen{}
					batches := make([][]serial.Number, b.N)
					for i := range batches {
						if mode == "uniform" {
							batches[i] = gen.NextN(uniformInsertBatch)
						} else {
							batches[i] = edge.batch(uniformInsertBatch)
						}
					}
					start := tree.HashedNodes()
					b.ResetTimer()
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := tree.InsertBatch(batches[i]); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(tree.HashedNodes()-start)/float64(b.N), "hashed-nodes/cycle")
				})
			}
		}
	}
}

// BenchmarkLayoutProve compares proof construction and size across layouts
// at the largest-CRL size: the forest pays one extra bucket-header hash and
// a short spine path, so both cost and encoded bytes must stay in the same
// ballpark as the sorted layout's single audit path.
func BenchmarkLayoutProve(b *testing.B) {
	for _, layout := range dictionary.Layouts() {
		b.Run(layout.String(), func(b *testing.B) {
			gen := serial.NewGenerator(0x9201, nil)
			tree := dictionary.NewTreeWithLayout(layout)
			if err := tree.InsertBatch(gen.NextN(workload.LargestCRLEntries)); err != nil {
				b.Fatal(err)
			}
			absent := gen.NextN(256)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if tree.Prove(absent[i%len(absent)]) == nil {
					b.Fatal("nil proof")
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(tree.Prove(absent[0]).Encode())), "proof-bytes")
		})
		// The encode half of the hot path, isolated: with the pooled
		// encoder a steady-state Encode costs exactly one allocation
		// (the right-sized output copy) — allocs/op pins it.
		b.Run(layout.String()+"/encode", func(b *testing.B) {
			gen := serial.NewGenerator(0x9201, nil)
			tree := dictionary.NewTreeWithLayout(layout)
			if err := tree.InsertBatch(gen.NextN(workload.LargestCRLEntries)); err != nil {
				b.Fatal(err)
			}
			absent := gen.NextN(256)
			proofs := make([]*dictionary.Proof, len(absent))
			for i, s := range absent {
				proofs[i] = tree.Prove(s)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(proofs[i%len(proofs)].Encode()) == 0 {
					b.Fatal("empty encoding")
				}
			}
		})
	}
}
