// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_<issue>.json trajectory file, and compares a
// fresh run against a committed baseline. No external tooling
// (benchstat) is required; the comparison is report-only and never fails
// the build — perf numbers from shared CI runners are signals, not
// gates.
//
// Emit:    go test -bench ... | go run ./tools/benchjson -out BENCH_6.json
// Compare: go test -bench ... | go run ./tools/benchjson -baseline BENCH_6.json
// Enforce: go test -bench ... | go run ./tools/benchjson -strict "allocs/op<=40"
//
// -strict takes comma-separated "metric<=threshold" constraints and exits
// non-zero when the current run violates any of them. A constraint may be
// scoped to one benchmark with "name:metric<=threshold"; unscoped it
// applies to every benchmark carrying the metric. Unlike the timing
// comparison, which stays report-only, deterministic metrics (allocation
// counts) are reproducible on any runner and ARE gated in CI. -strict
// combines with -out, so one invocation can record the trajectory file and
// enforce the floor.
//
// Besides `go test -bench` lines, stdin may carry aggregate records as
// JSON lines in the Benchmark shape —
// {"name":"LoadgenStatus/poisson","iterations":51234,"metrics":{...}} —
// which is how cmd/ritm-loadgen feeds whole-run results (quantiles,
// achieved QPS, allocs/op per tier) into the same trajectory file. The
// two formats can be freely interleaved in one stream.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the on-disk shape of BENCH_<issue>.json.
type File struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write parsed benchmarks as JSON to this file")
	baseline := flag.String("baseline", "", "compare parsed benchmarks against this committed JSON baseline (report-only)")
	strict := flag.String("strict", "", `comma-separated "[name:]metric<=threshold" constraints; exit non-zero if the current run violates any`)
	flag.Parse()
	if *out != "" && *baseline != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out and -baseline are mutually exclusive")
		os.Exit(2)
	}
	if *out == "" && *baseline == "" && *strict == "" {
		fmt.Fprintln(os.Stderr, "benchjson: one of -out, -baseline, or -strict is required")
		os.Exit(2)
	}
	constraints, err := parseConstraints(*strict)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	parsed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(parsed.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(parsed, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(parsed.Benchmarks), *out)
	}

	if *baseline != "" {
		base, err := load(*baseline)
		if err != nil {
			// Report-only: a missing or unreadable baseline is a note, not a
			// failure (first run on a new branch, for example).
			fmt.Printf("benchjson: no usable baseline (%v); nothing to compare\n", err)
		} else {
			compare(base, parsed)
		}
	}

	if len(constraints) > 0 && !enforce(constraints, parsed) {
		os.Exit(1)
	}
}

// constraint is one parsed -strict bound: metric must stay ≤ threshold,
// optionally scoped to a single benchmark name.
type constraint struct {
	bench     string // empty = every benchmark carrying the metric
	metric    string
	threshold float64
}

func parseConstraints(spec string) ([]constraint, error) {
	if spec == "" {
		return nil, nil
	}
	var out []constraint
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(part, "<=")
		if !ok {
			return nil, fmt.Errorf("strict constraint %q: want [name:]metric<=threshold", part)
		}
		threshold, err := strconv.ParseFloat(strings.TrimSpace(rhs), 64)
		if err != nil {
			return nil, fmt.Errorf("strict constraint %q: bad threshold: %v", part, err)
		}
		c := constraint{metric: strings.TrimSpace(lhs), threshold: threshold}
		if name, metric, scoped := strings.Cut(c.metric, ":"); scoped {
			c.bench, c.metric = strings.TrimSpace(name), strings.TrimSpace(metric)
		}
		if c.metric == "" {
			return nil, fmt.Errorf("strict constraint %q: empty metric", part)
		}
		out = append(out, c)
	}
	return out, nil
}

// enforce checks every constraint against the current run and reports
// pass/fail per match. A constraint that matches nothing fails too — a
// typo'd metric must not gate vacuously.
func enforce(constraints []constraint, cur *File) bool {
	ok := true
	for _, c := range constraints {
		matched := 0
		for _, b := range cur.Benchmarks {
			if c.bench != "" && b.Name != c.bench {
				continue
			}
			v, has := b.Metrics[c.metric]
			if !has {
				continue
			}
			matched++
			if v > c.threshold {
				fmt.Printf("benchjson: STRICT FAIL %s %s = %.3f > %.3f\n", b.Name, c.metric, v, c.threshold)
				ok = false
			} else {
				fmt.Printf("benchjson: strict ok   %s %s = %.3f <= %.3f\n", b.Name, c.metric, v, c.threshold)
			}
		}
		if matched == 0 {
			fmt.Printf("benchjson: STRICT FAIL no benchmark matched constraint %q (metric %s)\n", c.bench, c.metric)
			ok = false
		}
	}
	return ok
}

// parse extracts benchmark result lines. The format is the fixed shape
// the testing package prints: name, iteration count, then value/unit
// pairs ("123.4 ns/op", "55 B/op", "7 custom-metric").
func parse(f *os.File) (*File, error) {
	out := &File{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "{"):
			// Aggregate record (e.g. from ritm-loadgen): one Benchmark
			// as a JSON line. Malformed lines are skipped like any other
			// non-benchmark output.
			var b Benchmark
			if err := json.Unmarshal([]byte(line), &b); err != nil || b.Name == "" || len(b.Metrics) == 0 {
				continue
			}
			b.Name = trimProcs(b.Name)
			out.Benchmarks = append(out.Benchmarks, b)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			// Strip the -<GOMAXPROCS> suffix so runs from differently
			// sized machines compare by benchmark identity.
			Name:       trimProcs(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	return out, sc.Err()
}

func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func load(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// compare prints an old/new/delta table for every metric present in both
// runs. It never exits non-zero: CI runner variance makes perf numbers a
// trend to read, not an assertion to fail on.
func compare(base, cur *File) {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	fmt.Printf("%-72s %-12s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "delta")
	matched := 0
	for _, b := range cur.Benchmarks {
		old, ok := baseBy[b.Name]
		if !ok {
			fmt.Printf("%-72s (new benchmark, no baseline)\n", b.Name)
			continue
		}
		matched++
		units := make([]string, 0, len(b.Metrics))
		for u := range b.Metrics {
			if _, ok := old.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			ov, nv := old.Metrics[u], b.Metrics[u]
			delta := "n/a"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			fmt.Printf("%-72s %-12s %14.1f %14.1f %8s\n", b.Name, u, ov, nv, delta)
		}
	}
	fmt.Printf("benchjson: compared %d/%d benchmarks against baseline (report only)\n", matched, len(cur.Benchmarks))
}
